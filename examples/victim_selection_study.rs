//! The paper in miniature: compare the three victim-selection
//! strategies and the two steal granularities on one tree and one scale,
//! reporting the metrics the paper reports (speedup, failed steals,
//! average session duration, search time).
//!
//! ```text
//! cargo run --release --example victim_selection_study            # 128 ranks
//! cargo run --release --example victim_selection_study -- 512     # bigger
//! ```

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::render_table;
use dws::uts::presets;

fn main() {
    let ranks: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let workload = presets::t3wl();
    println!(
        "tree {} ({} realized nodes), {ranks} ranks, 1 rank per node\n",
        workload.name, 24_578_855u64
    );
    let strategies: [(&str, VictimPolicy, StealAmount); 6] = [
        ("Reference", VictimPolicy::RoundRobin, StealAmount::OneChunk),
        ("Rand", VictimPolicy::Uniform, StealAmount::OneChunk),
        (
            "Tofu",
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
            StealAmount::OneChunk,
        ),
        (
            "Reference Half",
            VictimPolicy::RoundRobin,
            StealAmount::Half,
        ),
        ("Rand Half", VictimPolicy::Uniform, StealAmount::Half),
        (
            "Tofu Half",
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
            StealAmount::Half,
        ),
    ];
    let mut rows = Vec::new();
    let mut reference_ns = None;
    for (name, victim, steal) in strategies {
        let mut cfg = ExperimentConfig::new(workload.clone(), ranks)
            .with_victim(victim)
            .with_steal(steal);
        cfg.collect_trace = false;
        let r = run_experiment(&cfg);
        let base = *reference_ns.get_or_insert(r.makespan.ns());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", r.perf.speedup()),
            format!("{:.3}", r.perf.efficiency()),
            format!(
                "{:+.1}%",
                100.0 * (base as f64 - r.makespan.ns() as f64) / base as f64
            ),
            r.stats.failed_steals().to_string(),
            format!("{:.0}", r.stats.avg_session_ns() / 1000.0),
            format!("{:.1}", r.stats.avg_search_ns() / 1e6),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "speedup",
                "efficiency",
                "vs Reference",
                "failed steals",
                "session(us)",
                "search(ms)"
            ],
            &rows
        )
    );
    println!("(the paper's ordering: Reference trails, Tofu Half leads, and the");
    println!(" gap widens with rank count — try 256 or 512 ranks)");
}
