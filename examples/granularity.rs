//! Work granularity vs victim selection (§V-B): as each tree node costs
//! more compute (more SHA rounds per node creation), a steal delivers
//! more work relative to its latency, and the advantage of
//! latency-aware victim selection shrinks.
//!
//! ```text
//! cargo run --release --example granularity
//! ```

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::render_table;
use dws::uts::presets;

fn main() {
    let ranks = 128u32;
    let mut rows = Vec::new();
    for rounds in [1u32, 4, 16] {
        let workload = presets::t3sim_l().with_gen_rounds(rounds);
        let run = |victim: VictimPolicy| {
            let mut cfg = ExperimentConfig::new(workload.clone(), ranks)
                .with_victim(victim)
                .with_steal(StealAmount::Half);
            cfg.collect_trace = false;
            run_experiment(&cfg)
        };
        let reference = run(VictimPolicy::RoundRobin);
        let tofu = run(VictimPolicy::DistanceSkewed { alpha: 1.0 });
        let improvement = 100.0 * (reference.makespan.ns() as f64 - tofu.makespan.ns() as f64)
            / reference.makespan.ns() as f64;
        rows.push(vec![
            rounds.to_string(),
            format!("{}", reference.makespan),
            format!("{}", tofu.makespan),
            format!("{improvement:+.2}%"),
        ]);
    }
    println!("Tofu-Half improvement over Reference-Half, {ranks} ranks:\n");
    println!(
        "{}",
        render_table(
            &["sha_rounds", "reference_half", "tofu_half", "improvement"],
            &rows
        )
    );
    println!("more compute per node -> steals amortize -> victim selection matters less");
}
