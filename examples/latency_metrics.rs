//! The paper's measurement contribution, §III: from a per-rank activity
//! trace, compute the occupancy curve and the starting/ending latency
//! metrics, then render the Figure-4-style chart in the terminal —
//! including the clock-skew correction step the paper mentions.
//!
//! ```text
//! cargo run --release --example latency_metrics
//! ```

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::ascii_chart;
use dws::uts::presets;

fn main() {
    // Give the ranks skewed clocks to exercise the correction path the
    // paper describes ("the trace modified to account for clock skew").
    let mut cfg = ExperimentConfig::new(presets::t3xxl(), 128)
        .with_victim(VictimPolicy::RoundRobin)
        .with_steal(StealAmount::OneChunk);
    cfg.clock_skew_max_ns = 50_000;
    let r = run_experiment(&cfg);
    let occ = r.occupancy().expect("trace collection is on by default");

    println!("run: {} on {} ranks", r.label, r.n_ranks);
    println!("makespan {}   speedup {:.1}", r.makespan, r.perf.speedup());
    println!(
        "Wmax = {} ranks ({:.0}%)   average occupancy {:.1}%",
        occ.w_max(),
        100.0 * occ.w_max() as f64 / occ.n_ranks() as f64,
        100.0 * occ.average_occupancy()
    );
    for pct in [10u32, 25, 50, 75, 90] {
        let x = pct as f64 / 100.0;
        match (occ.starting_latency(x), occ.ending_latency(x)) {
            (Some(sl), Some(el)) => println!(
                "occupancy {pct:3}%:  SL = {:6.2}% of runtime   EL = {:6.2}%",
                sl * 100.0,
                el * 100.0
            ),
            _ => println!("occupancy {pct:3}%:  never reached"),
        }
    }

    let mut sl_pts = Vec::new();
    let mut el_pts = Vec::new();
    for (pct, sl, el) in occ.latency_series(95) {
        if let (Some(sl), Some(el)) = (sl, el) {
            sl_pts.push((pct as f64, sl * 100.0));
            el_pts.push((pct as f64, el * 100.0));
        }
    }
    println!(
        "\n{}",
        ascii_chart(
            "starting/ending latency (% of runtime) vs occupancy (%)",
            &[("SL", sl_pts), ("EL", el_pts)],
            64,
            14
        )
    );
}
