//! Lifeline-based load balancing (extension): compare pure work
//! stealing against the lifeline scheme of Saraswat et al., which the
//! paper's related-work section positions as the other answer to
//! steal-request contention — "idle workers wait for their lifelines to
//! provide work, thus limiting the lock and network contention".
//!
//! ```text
//! cargo run --release --example lifelines
//! ```

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::render_table;
use dws::uts::presets;

fn main() {
    let ranks = 256u32;
    let workload = presets::t3wl();
    println!(
        "tree {} on {ranks} ranks (1/N), Rand-Half stealing\n",
        workload.name
    );
    let mut rows = Vec::new();
    for threshold in [None, Some(4u32), Some(16), Some(64)] {
        let mut cfg = ExperimentConfig::new(workload.clone(), ranks)
            .with_victim(VictimPolicy::Uniform)
            .with_steal(StealAmount::Half);
        cfg.lifeline_threshold = threshold;
        cfg.collect_trace = false;
        let r = run_experiment(&cfg);
        let t = r.stats.total();
        rows.push(vec![
            threshold.map_or("off (paper)".into(), |t| format!("{t} fails")),
            format!("{:.1}", r.perf.speedup()),
            t.steals_failed.to_string(),
            t.lifeline_dormancies.to_string(),
            t.lifeline_pushes.to_string(),
            format!("{}", r.report.messages),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "dormancy threshold",
                "speedup",
                "failed steals",
                "dormancies",
                "pushed chunks",
                "total messages"
            ],
            &rows
        )
    );
    println!("lifelines trade steal spam (failed steals, messages) against");
    println!("push latency; a moderate threshold keeps both in check");
}
