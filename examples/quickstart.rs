//! Quickstart: search one unbalanced tree three ways and check that
//! every execution style counts exactly the same tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::shmem::parallel_search;
use dws::uts::{presets, search};

fn main() {
    let workload = presets::t3sim_l();
    println!(
        "workload: {} (binomial, seed {})",
        workload.name, workload.seed
    );

    // 1. Sequential ground truth.
    let seq = search::search(&workload);
    println!(
        "sequential:  {} nodes, {} leaves, depth {}",
        seq.nodes, seq.leaves, seq.max_depth
    );

    // 2. Shared-memory work stealing on real threads (Chase–Lev deques).
    let par = parallel_search(&workload, 4);
    println!(
        "threads(4):  {} nodes in {:?}, {} steals",
        par.stats.nodes,
        par.elapsed,
        par.workers.iter().map(|w| w.steals).sum::<u64>()
    );
    assert_eq!(par.stats, seq, "parallel search must count the same tree");

    // 3. Distributed work stealing on 32 simulated K Computer nodes,
    //    with the paper's best configuration: distance-skewed victim
    //    selection and steal-half.
    let mut cfg = ExperimentConfig::new(workload, 32)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.expect_nodes = Some(seq.nodes);
    let dist = run_experiment(&cfg);
    println!(
        "simulated(32 ranks): {} nodes, makespan {}, speedup {:.1}, efficiency {:.2}",
        dist.total_nodes,
        dist.makespan,
        dist.perf.speedup(),
        dist.perf.efficiency()
    );
    let occ = dist.occupancy().expect("trace collected by default");
    println!(
        "             peak occupancy {}/{} ranks, SL(50%) = {:.1}% of runtime",
        occ.w_max(),
        occ.n_ranks(),
        occ.starting_latency(0.5).map_or(f64::NAN, |v| v * 100.0)
    );
}
