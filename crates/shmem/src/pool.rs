//! A threaded shared-memory UTS executor on Chase–Lev deques.
//!
//! This is the intra-node counterpart of the distributed scheduler: one
//! OS thread per worker, each owning a deque of tree nodes, stealing
//! uniformly at random when dry — the classic Cilk-style configuration
//! the paper's related work builds on. It serves two purposes:
//!
//! 1. **Cross-validation**: a genuinely parallel traversal must count
//!    exactly the same tree as the sequential searcher and the
//!    simulated distributed runs.
//! 2. **Intra-node modelling context**: the paper's 8-ranks-per-node
//!    configurations effectively run something like this inside every
//!    node, over MPI instead of shared memory.
//!
//! Termination uses an outstanding-work counter: it starts at 1 (the
//! root); expanding a node adds `children − 1`. When it hits zero the
//! tree is exhausted and all workers quit. The counter also guarantees
//! no node is lost or double-counted: the final per-worker tallies must
//! sum to the tree size.

use crate::deque::{deque, Steal, Stealer, Worker};
use dws_uts::{Node, SearchStats, Workload};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Statistics from one worker thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Nodes this worker expanded.
    pub nodes: u64,
    /// Leaves this worker observed.
    pub leaves: u64,
    /// Maximum depth this worker reached.
    pub max_depth: u32,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts (empty or lost race).
    pub failed_steals: u64,
}

/// Result of a parallel search.
#[derive(Debug, Clone)]
pub struct ParallelSearch {
    /// Aggregated tree statistics (comparable to sequential search).
    pub stats: SearchStats,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock duration of the parallel section.
    pub elapsed: std::time::Duration,
}

/// Search the workload's tree with `n_workers` threads.
///
/// # Panics
/// Panics if `n_workers == 0`, or on any internal accounting violation.
pub fn parallel_search(workload: &Workload, n_workers: usize) -> ParallelSearch {
    assert!(n_workers > 0, "need at least one worker");
    let mut owners: Vec<Worker<Node>> = Vec::with_capacity(n_workers);
    let mut stealers: Vec<Stealer<Node>> = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (w, s) = deque::<Node>(1024);
        owners.push(w);
        stealers.push(s);
    }
    // Outstanding-node counter: root seeds it with 1.
    let outstanding = Arc::new(AtomicI64::new(1));
    let seed_mix = Arc::new(AtomicU64::new(0x9E37_79B9));
    owners[0].push(workload.spec.root(workload.seed));

    let start = std::time::Instant::now();
    let results: Vec<WorkerStats> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for (id, owner) in owners.into_iter().enumerate() {
            let stealers = stealers.clone();
            let outstanding = Arc::clone(&outstanding);
            let seed_mix = Arc::clone(&seed_mix);
            let workload = workload.clone();
            handles.push(scope.spawn(move || {
                run_worker(id, owner, stealers, &workload, &outstanding, &seed_mix)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    assert_eq!(
        outstanding.load(Ordering::SeqCst),
        0,
        "outstanding-work counter must end at zero"
    );
    let stats = results.iter().fold(SearchStats::default(), |acc, w| {
        acc.merge(&SearchStats {
            nodes: w.nodes,
            leaves: w.leaves,
            max_depth: w.max_depth,
        })
    });
    ParallelSearch {
        stats,
        workers: results,
        elapsed,
    }
}

fn run_worker(
    id: usize,
    owner: Worker<Node>,
    stealers: Vec<Stealer<Node>>,
    workload: &Workload,
    outstanding: &AtomicI64,
    seed_mix: &AtomicU64,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut children: Vec<Node> = Vec::new();
    // Cheap xorshift per worker, seeded distinctly.
    let mut rng_state = (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ seed_mix.fetch_add(1, Ordering::Relaxed);
    let mut next_rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let n = stealers.len();
    loop {
        // Drain local work depth-first.
        while let Some(node) = owner.pop() {
            let count = workload
                .spec
                .children_into(&node, workload.gen_rounds, &mut children);
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(node.height);
            if count == 0 {
                stats.leaves += 1;
            }
            for child in children.drain(..) {
                owner.push(child);
            }
            // The node is done; its children are now outstanding.
            outstanding.fetch_add(count as i64 - 1, Ordering::SeqCst);
        }
        // Out of local work: steal or quit.
        loop {
            if outstanding.load(Ordering::SeqCst) == 0 {
                return stats;
            }
            if n == 1 {
                // Single worker with work outstanding but an empty
                // deque would be a logic error; the outer loop re-polls.
                std::hint::spin_loop();
                break;
            }
            let victim = (next_rand() % n as u64) as usize;
            if victim == id {
                continue;
            }
            match stealers[victim].steal() {
                Steal::Success(node) => {
                    stats.steals += 1;
                    owner.push(node);
                    break;
                }
                Steal::Retry => {
                    stats.failed_steals += 1;
                }
                Steal::Empty => {
                    stats.failed_steals += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_uts::presets;

    #[test]
    fn parallel_count_matches_sequential() {
        let w = presets::t3sim_xs();
        let seq = dws_uts::search(&w);
        for workers in [1usize, 2, 4, 8] {
            let par = parallel_search(&w, workers);
            assert_eq!(
                par.stats.nodes, seq.nodes,
                "{workers} workers: node count diverged"
            );
            assert_eq!(par.stats.leaves, seq.leaves);
            assert_eq!(par.stats.max_depth, seq.max_depth);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        let w = presets::t3sim_s();
        let par = parallel_search(&w, 4);
        let active = par.workers.iter().filter(|s| s.nodes > 0).count();
        assert!(active >= 2, "only {active} workers did anything");
        let total_steals: u64 = par.workers.iter().map(|s| s.steals).sum();
        assert!(total_steals > 0, "no steals in an unbalanced tree?");
    }

    #[test]
    fn repeated_runs_count_identically() {
        let w = presets::t3sim_xs();
        let a = parallel_search(&w, 4);
        let b = parallel_search(&w, 4);
        assert_eq!(a.stats.nodes, b.stats.nodes);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        parallel_search(&presets::t3sim_xs(), 0);
    }
}
