//! A Chase–Lev work-stealing deque, from scratch.
//!
//! The paper's related-work section anchors on shared-memory work
//! stealing (Cilk, the Chase–Lev "dynamic circular work-stealing
//! deque"); this module provides that primitive so the crate can run
//! UTS *inside* a node with real threads, cross-validating the
//! simulator's distributed results against a genuinely parallel
//! execution.
//!
//! Design, after Chase & Lev (SPAA 2005) and the memory-ordering
//! corrections of Lê et al. (PPoPP 2013):
//!
//! - the owner pushes and pops at the *bottom*; thieves steal at the
//!   *top* with a CAS;
//! - the buffer is a power-of-two ring; on overflow the owner swaps in
//!   a buffer twice the size. Retired buffers are kept alive until the
//!   deque is dropped, because a concurrent thief may still be reading
//!   a stale buffer pointer — the classic, simple reclamation scheme;
//! - `T: Copy` keeps racy speculative reads sound: a thief may read an
//!   element and then lose the CAS, in which case the value is simply
//!   discarded. No element is ever *returned* by two callers.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Power-of-two ring buffer.
struct Buffer<T> {
    mask: usize,
    slots: Box<[UnsafeCell<T>]>,
}

unsafe impl<T: Send> Send for Buffer<T> {}
unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T: Copy + Default> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two(), "buffer capacity must be 2^k");
        let slots: Vec<UnsafeCell<T>> = (0..cap).map(|_| UnsafeCell::new(T::default())).collect();
        Box::new(Self {
            mask: cap - 1,
            slots: slots.into_boxed_slice(),
        })
    }

    #[inline]
    unsafe fn read(&self, index: isize) -> T {
        *self.slots[(index as usize) & self.mask].get()
    }

    #[inline]
    unsafe fn write(&self, index: isize, value: T) {
        *self.slots[(index as usize) & self.mask].get() = value;
    }
}

/// The shared state of one deque.
pub struct Deque<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, freed on drop (thieves may still
    /// hold stale pointers until then).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Deque<T> {}
unsafe impl<T: Send> Sync for Deque<T> {}

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// Got an element.
    Success(T),
    /// The deque looked empty.
    Empty,
    /// Lost a race; worth retrying immediately.
    Retry,
}

impl<T: Copy + Default + Send> Deque<T> {
    /// Create a deque with an initial capacity (rounded up to 2^k).
    pub fn new(initial_cap: usize) -> Self {
        let cap = initial_cap.next_power_of_two().max(2);
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Approximate number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner side: push an element at the bottom. Grows when full.
    ///
    /// # Safety contract (enforced by [`Worker`]): only one thread may
    /// ever call `push`/`pop`.
    fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        let size = b - t;
        unsafe {
            if size as usize >= (*buf).mask {
                buf = self.grow(buf, t, b);
            }
            (*buf).write(b, value);
        }
        // Publish the element before publishing the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner side: pop from the bottom (LIFO).
    fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The fence orders the bottom store against the top load: a
        // concurrent thief must see the reservation or we must see its
        // top increment.
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        let size = b - t;
        if size < 0 {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = unsafe { (*buf).read(b) };
        if size > 0 {
            return Some(value);
        }
        // Last element: race against thieves via CAS on top.
        let won = self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.bottom.store(b + 1, Ordering::Relaxed);
        won.then_some(value)
    }

    /// Thief side: try to steal from the top (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if b - t <= 0 {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // Speculative read; only valid if the CAS below wins.
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(value)
        } else {
            Steal::Retry
        }
    }

    /// Owner side: replace the buffer with one of twice the capacity.
    unsafe fn grow(&self, old: *mut Buffer<T>, t: isize, b: isize) -> *mut Buffer<T> {
        let new = Box::into_raw(Buffer::new(((*old).mask + 1) * 2));
        for i in t..b {
            (*new).write(i, (*old).read(i));
        }
        self.buffer.store(new, Ordering::Release);
        self.retired
            .lock()
            .expect("retired-buffer lock poisoned")
            .push(old);
        new
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for p in self
                .retired
                .lock()
                .expect("retired-buffer lock poisoned")
                .drain(..)
            {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// Owner handle: the only handle allowed to push and pop.
///
/// `Worker` is `Send` but deliberately **not** `Sync` (the marker field
/// below): the single-owner discipline the Chase–Lev algorithm requires
/// is thereby enforced by the type system — a `&Worker` cannot be
/// shared across threads.
pub struct Worker<T> {
    deque: std::sync::Arc<Deque<T>>,
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

/// Thief handle: clonable, steal-only.
#[derive(Clone)]
pub struct Stealer<T> {
    deque: std::sync::Arc<Deque<T>>,
}

/// Create a deque, returning the owner and a thief handle.
pub fn deque<T: Copy + Default + Send>(initial_cap: usize) -> (Worker<T>, Stealer<T>) {
    let d = std::sync::Arc::new(Deque::new(initial_cap));
    (
        Worker {
            deque: std::sync::Arc::clone(&d),
            _not_sync: std::marker::PhantomData,
        },
        Stealer { deque: d },
    )
}

impl<T: Copy + Default + Send> Worker<T> {
    /// Push an element (owner only).
    pub fn push(&self, value: T) {
        self.deque.push(value);
    }

    /// Pop the most recently pushed element (owner only).
    pub fn pop(&self) -> Option<T> {
        self.deque.pop()
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

impl<T: Copy + Default + Send> Stealer<T> {
    /// Attempt one steal.
    pub fn steal(&self) -> Steal<T> {
        self.deque.steal()
    }

    /// Elements currently queued (approximate).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True when the deque looks empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let (w, s) = deque::<u64>(4);
        for i in 0..6 {
            w.push(i);
        }
        assert_eq!(w.len(), 6);
        // Thief takes the oldest.
        assert_eq!(s.steal(), Steal::Success(0));
        // Owner takes the newest.
        assert_eq!(w.pop(), Some(5));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(4));
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, _s) = deque::<u64>(2);
        for i in 0..1000 {
            w.push(i);
        }
        for i in (0..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn empty_pop_and_steal() {
        let (w, s) = deque::<u64>(4);
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(7);
        assert_eq!(w.pop(), Some(7));
        assert_eq!(s.steal(), Steal::Empty);
    }

    /// The crucial test: hammer one deque with an owner and many
    /// thieves; every pushed element must be claimed exactly once.
    #[test]
    fn concurrent_owner_and_thieves_claim_each_element_once() {
        const N: u64 = 200_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<u64>(16);
        let sum_stolen = Arc::new(AtomicU64::new(0));
        let count_stolen = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = s.clone();
                let sum = Arc::clone(&sum_stolen);
                let cnt = Arc::clone(&count_stolen);
                let done = Arc::clone(&done);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, AOrd::Relaxed);
                            cnt.fetch_add(1, AOrd::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(AOrd::Acquire) == 1 && s.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner interleaves pushes and pops.
            let mut sum_own = 0u64;
            let mut cnt_own = 0u64;
            for i in 1..=N {
                w.push(i);
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        sum_own += v;
                        cnt_own += 1;
                    }
                }
            }
            // Drain whatever remains.
            while let Some(v) = w.pop() {
                sum_own += v;
                cnt_own += 1;
            }
            done.store(1, AOrd::Release);
            // Wait for thieves via scope join, then check totals.
            scope.spawn(move || {
                let _ = (sum_own, cnt_own);
            });
            // Totals checked after the scope ends via captured atomics;
            // stash the owner's share in atomics too.
            sum_stolen.fetch_add(sum_own, AOrd::Relaxed);
            count_stolen.fetch_add(cnt_own, AOrd::Relaxed);
        });
        let expected_sum = N * (N + 1) / 2;
        assert_eq!(
            count_stolen.load(AOrd::Relaxed),
            N,
            "every element claimed exactly once"
        );
        assert_eq!(sum_stolen.load(AOrd::Relaxed), expected_sum);
    }

    #[test]
    fn stress_last_element_race() {
        // Repeatedly race one thief against the owner for a single
        // element; exactly one side must win each round.
        let (w, s) = deque::<u64>(4);
        for round in 0..20_000u64 {
            w.push(round);
            let winner = std::thread::scope(|scope| {
                let thief = scope.spawn(|| matches!(s.steal(), Steal::Success(_)));
                let owner = w.pop().is_some();
                let thief = thief.join().expect("thief panicked");
                (owner, thief)
            });
            assert!(
                winner.0 ^ winner.1,
                "round {round}: owner={} thief={} (exactly one must win)",
                winner.0,
                winner.1
            );
        }
    }
}
