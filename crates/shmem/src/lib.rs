//! # dws-shmem
//!
//! Shared-memory work stealing: a from-scratch Chase–Lev deque and a
//! threaded UTS executor.
//!
//! The paper situates its distributed study against the shared-memory
//! work-stealing tradition (Cilk, Chase–Lev, TBB). This crate provides
//! that intra-node counterpart: real threads, real atomics, stealing
//! from real deques — used to cross-validate the simulator (every
//! execution style must count the same tree) and as the building block
//! a hierarchical intra/inter-node scheduler would use.
//!
//! - [`deque`] — the Chase–Lev work-stealing deque (owner LIFO, thief
//!   FIFO, CAS-arbitrated last element);
//! - [`pool`] — a thread pool searching a UTS tree with uniform random
//!   stealing and counter-based termination.
//!
//! ## Example
//!
//! ```
//! use dws_shmem::pool::parallel_search;
//! use dws_uts::presets;
//!
//! let workload = presets::t3sim_xs();
//! let result = parallel_search(&workload, 4);
//! assert_eq!(result.stats, dws_uts::search(&workload));
//! ```

#![warn(missing_docs)]

pub mod deque;
pub mod pool;

pub use deque::{deque as new_deque, Steal, Stealer, Worker};
pub use pool::{parallel_search, ParallelSearch, WorkerStats};
