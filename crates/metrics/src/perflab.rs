//! Perf-lab: benchmark trajectory records and cross-run regression
//! diffing.
//!
//! The paper's whole argument rests on comparing runs, and the
//! harness's own trustworthiness rests on noticing when *it* gets
//! slower. This module gives both comparisons one vocabulary:
//!
//! - [`BenchRecord`] — one entry of the benchmark trajectory: what was
//!   measured (named metrics with repeated-trial mean + 95% CI), under
//!   which code (`git_rev`) and configuration (`fingerprint`), when;
//! - the **trajectory store** — an append-only JSON-lines file
//!   (`BENCH_trajectory.json`) written by [`append_record`] and read
//!   back by [`read_trajectory`], so the performance history of the
//!   repository survives across sessions and CI runs;
//! - [`verdict`] / [`compare`] — noise-aware per-metric diffing: a
//!   delta is significant only when it exceeds both the combined 95%
//!   confidence half-widths of the two samples and a relative
//!   tolerance floor, and its direction is interpreted through the
//!   metric's [`Polarity`] (a *larger* makespan is a regression, a
//!   *larger* events/sec is an improvement);
//! - [`metrics_from_run_report`] — the bridge from a `dws run --json`
//!   run report to comparable metric samples, so `dws diff` can set
//!   two simulator runs side by side as easily as two bench records.
//!
//! Following Khatiri et al. (arXiv:1910.02803), a reproduction
//! simulator is only trustworthy if its own cost and variance are
//! measured; following Gast et al. (arXiv:1805.00857), distributions
//! are reported with confidence bounds, never as bare points.

use crate::export::{parse, JsonValue};
use crate::summary::Summary;

/// Schema version stamped into every [`BenchRecord`]; bump on
/// incompatible layout changes. Version 2 added the adaptive
/// victim-selection counters (quarantines, probe steals, overlay
/// rejections) to the run-report bridge. Version 3 marks the
/// streaming-telemetry era: run reports may now derive their
/// occupancy section from online (barrier-folded) aggregates instead
/// of a retained trace — the values are element-identical, so
/// version-1 and -2 records stay comparable and readable.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Oldest schema version [`BenchRecord::from_json`] still accepts.
pub const BENCH_SCHEMA_MIN_VERSION: u64 = 1;

/// Two-sided 95% critical value of Student's t for `df` degrees of
/// freedom (exact table for 1–30, the normal 1.96 beyond).
pub fn t_crit95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        _ => 1.960,
    }
}

/// Mean and 95% confidence half-width of `samples` (t-distribution,
/// unbiased sample deviation). Fewer than two samples yield a zero
/// half-width: a point estimate carries no internal noise evidence.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let s = Summary::of(samples.iter().copied());
    if s.count() < 2 {
        return (s.mean(), 0.0);
    }
    (s.mean(), t_crit95(s.count() - 1) * s.stderr())
}

/// Which direction of change is *good* for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Smaller is better (latencies, makespans, allocation counts).
    LowerIsBetter,
    /// Larger is better (speedup, efficiency, events per second).
    HigherIsBetter,
    /// Informational only; a change is never a regression.
    Neutral,
}

impl Polarity {
    /// Short wire name (`"lower"` / `"higher"` / `"neutral"`).
    pub fn label(&self) -> &'static str {
        match self {
            Polarity::LowerIsBetter => "lower",
            Polarity::HigherIsBetter => "higher",
            Polarity::Neutral => "neutral",
        }
    }

    /// Parse a wire name back.
    pub fn from_label(s: &str) -> Option<Polarity> {
        match s {
            "lower" => Some(Polarity::LowerIsBetter),
            "higher" => Some(Polarity::HigherIsBetter),
            "neutral" => Some(Polarity::Neutral),
            _ => None,
        }
    }

    /// Infer a polarity from a conventional metric name. Latency-,
    /// time-, and footprint-shaped names are lower-is-better;
    /// throughput- and speedup-shaped names are higher-is-better;
    /// anything unrecognized is neutral.
    pub fn infer(name: &str) -> Polarity {
        const LOWER: [&str; 10] = [
            "makespan", "_ns", "rtt", "latency", "sl", "el", "rss", "alloc", "wall", "timeout",
        ];
        const HIGHER: [&str; 4] = ["speedup", "efficiency", "per_sec", "throughput"];
        let lower_name = name.to_ascii_lowercase();
        if HIGHER.iter().any(|p| lower_name.contains(p)) {
            return Polarity::HigherIsBetter;
        }
        if LOWER
            .iter()
            .any(|p| lower_name.contains(p) || lower_name == p.trim_start_matches('_'))
        {
            return Polarity::LowerIsBetter;
        }
        Polarity::Neutral
    }
}

/// One named measurement of a [`BenchRecord`]: the mean of `n`
/// repeated trials with its 95% confidence half-width.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Metric name (e.g. `"makespan_ns"`, `"sha1/digest_64B"`).
    pub name: String,
    /// Unit label (e.g. `"ns"`, `"ns_per_iter"`, `"events_per_sec"`).
    pub unit: String,
    /// Number of trials aggregated.
    pub n: u64,
    /// Trial mean.
    pub mean: f64,
    /// 95% confidence half-width (0 for a point estimate).
    pub ci95: f64,
    /// Which direction of change is good.
    pub better: Polarity,
}

impl BenchMetric {
    /// Build from raw trial samples: records the trial count, mean and
    /// 95% CI in one step.
    pub fn from_samples(name: &str, unit: &str, better: Polarity, samples: &[f64]) -> Self {
        let (mean, ci95) = mean_ci95(samples);
        Self {
            name: name.to_string(),
            unit: unit.to_string(),
            n: samples.len() as u64,
            mean,
            ci95,
            better,
        }
    }

    /// A single-trial point estimate (zero CI).
    pub fn point(name: &str, unit: &str, better: Polarity, value: f64) -> Self {
        Self {
            name: name.to_string(),
            unit: unit.to_string(),
            n: 1,
            mean: value,
            ci95: 0.0,
            better,
        }
    }
}

/// One entry of the benchmark trajectory: everything needed to compare
/// this measurement against any other entry, now or years later.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Benchmark identifier (`"micro"`, `"fig03"`, ...).
    pub bench: String,
    /// Git revision the benchmark ran under (`"unknown"` outside a
    /// repository).
    pub git_rev: String,
    /// Configuration fingerprint: two records with equal fingerprints
    /// measured the same thing and may be diffed without caveats.
    pub fingerprint: String,
    /// Per-trial RNG seed offset (trials within one record share it;
    /// distinct trajectory entries of the same config vary it).
    pub trial_seed: u64,
    /// Unix timestamp (seconds) of the measurement.
    pub unix_time_s: u64,
    /// Number of repeated trials behind the confidence intervals.
    pub trials: u64,
    /// Simulation worker threads the benchmark ran with. Thread count
    /// never changes simulated metrics (the engine's schedule is
    /// shard-count invariant) but does change wall-clock ones, so
    /// records carry it without folding it into the fingerprint.
    pub threads: u32,
    /// The measurements.
    pub metrics: Vec<BenchMetric>,
}

impl BenchRecord {
    /// Serialize to a single-line JSON object (the trajectory-store
    /// line format).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", self.schema.into()),
            ("bench", self.bench.as_str().into()),
            ("git_rev", self.git_rev.as_str().into()),
            ("fingerprint", self.fingerprint.as_str().into()),
            ("trial_seed", self.trial_seed.into()),
            ("unix_time_s", self.unix_time_s.into()),
            ("trials", self.trials.into()),
            ("threads", self.threads.into()),
            (
                "metrics",
                JsonValue::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            JsonValue::obj(vec![
                                ("name", m.name.as_str().into()),
                                ("unit", m.unit.as_str().into()),
                                ("n", m.n.into()),
                                ("mean", m.mean.into()),
                                ("ci95", m.ci95.into()),
                                ("better", m.better.label().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize and validate a record. Rejects unknown schema
    /// versions, missing fields, and empty metric lists.
    pub fn from_json(doc: &JsonValue) -> Result<BenchRecord, String> {
        let get_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("bench record missing string field {key:?}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("bench record missing numeric field {key:?}"))
        };
        let schema = get_u64("schema")?;
        if !(BENCH_SCHEMA_MIN_VERSION..=BENCH_SCHEMA_VERSION).contains(&schema) {
            return Err(format!(
                "unsupported bench record schema {schema} \
                 (supported: {BENCH_SCHEMA_MIN_VERSION}..={BENCH_SCHEMA_VERSION})"
            ));
        }
        let metrics_json = doc
            .get("metrics")
            .and_then(|v| v.as_arr())
            .ok_or("bench record missing metrics array")?;
        if metrics_json.is_empty() {
            return Err("bench record carries no metrics".into());
        }
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for m in metrics_json {
            let name = m
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or("metric missing name")?;
            let unit = m.get("unit").and_then(|v| v.as_str()).unwrap_or("");
            let mean = m
                .get("mean")
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("metric {name:?} missing mean"))?;
            let better = m
                .get("better")
                .and_then(|v| v.as_str())
                .and_then(Polarity::from_label)
                .unwrap_or_else(|| Polarity::infer(name));
            metrics.push(BenchMetric {
                name: name.to_string(),
                unit: unit.to_string(),
                n: m.get("n").and_then(|v| v.as_u64()).unwrap_or(1),
                mean,
                ci95: m.get("ci95").and_then(|v| v.as_num()).unwrap_or(0.0),
                better,
            });
        }
        Ok(BenchRecord {
            schema,
            bench: get_str("bench")?,
            git_rev: get_str("git_rev")?,
            fingerprint: get_str("fingerprint")?,
            trial_seed: doc.get("trial_seed").and_then(|v| v.as_u64()).unwrap_or(0),
            unix_time_s: get_u64("unix_time_s")?,
            trials: get_u64("trials")?,
            // Records predating the parallel engine were all serial.
            threads: doc.get("threads").and_then(|v| v.as_u64()).unwrap_or(1) as u32,
            metrics,
        })
    }
}

/// Append one record to an append-only trajectory file (JSON lines:
/// one single-line record object per line). Creates the file and any
/// parent directories on first use.
pub fn append_record(path: &str, record: &BenchRecord) -> Result<(), String> {
    use std::io::Write as _;
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{path}: {e}"))?;
    writeln!(file, "{}", record.to_json()).map_err(|e| format!("{path}: {e}"))
}

/// Read a trajectory file back: every non-empty line must parse as a
/// schema-valid [`BenchRecord`]. A whole-file JSON array of records is
/// also accepted (the hand-edited form).
pub fn read_trajectory(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trajectory(&text).map_err(|e| format!("{path}: {e}"))
}

/// [`read_trajectory`] on in-memory text.
pub fn parse_trajectory(text: &str) -> Result<Vec<BenchRecord>, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('[') {
        let doc = parse(trimmed)?;
        let arr = doc.as_arr().ok_or("trajectory array expected")?;
        return arr.iter().map(BenchRecord::from_json).collect();
    }
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(BenchRecord::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// The outcome of comparing one metric across two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The change exceeds the noise threshold in the *bad* direction.
    Regression,
    /// The change exceeds the noise threshold in the *good* direction.
    Improvement,
    /// The change does not exceed the noise threshold.
    WithinNoise,
}

impl Verdict {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::WithinNoise => "within-noise",
        }
    }
}

/// One metric's delta between two runs, with its noise threshold and
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Unit label.
    pub unit: String,
    /// Baseline mean (run A).
    pub a: f64,
    /// Candidate mean (run B).
    pub b: f64,
    /// Relative change `(b - a) / |a|` (0 when `a == 0`).
    pub rel: f64,
    /// Noise threshold the absolute delta was held against.
    pub threshold: f64,
    /// The call.
    pub verdict: Verdict,
}

/// Compare one metric across two runs.
///
/// The absolute delta is significant only if it **strictly exceeds**
/// the noise threshold `max(ci95_a + ci95_b, tol · |mean_a|)`: the
/// confidence intervals must not overlap *and* the change must clear
/// the relative-tolerance floor. A delta exactly at the threshold is
/// within noise — ties go to "no news". [`Polarity::Neutral`] metrics
/// report their delta but never regress.
pub fn verdict(a: &BenchMetric, b: &BenchMetric, tol: f64) -> MetricDelta {
    let delta = b.mean - a.mean;
    let threshold = (a.ci95 + b.ci95).max(tol * a.mean.abs());
    let significant = delta.abs() > threshold;
    let v = if !significant {
        Verdict::WithinNoise
    } else {
        match (a.better, delta > 0.0) {
            (Polarity::Neutral, _) => Verdict::WithinNoise,
            (Polarity::LowerIsBetter, true) | (Polarity::HigherIsBetter, false) => {
                Verdict::Regression
            }
            (Polarity::LowerIsBetter, false) | (Polarity::HigherIsBetter, true) => {
                Verdict::Improvement
            }
        }
    };
    MetricDelta {
        name: a.name.clone(),
        unit: a.unit.clone(),
        a: a.mean,
        b: b.mean,
        rel: if a.mean != 0.0 {
            delta / a.mean.abs()
        } else {
            0.0
        },
        threshold,
        verdict: v,
    }
}

/// Compare two metric sets by name (order follows `a`; metrics present
/// on only one side are skipped — they carry no comparison).
pub fn compare(a: &[BenchMetric], b: &[BenchMetric], tol: f64) -> Vec<MetricDelta> {
    a.iter()
        .filter_map(|ma| {
            b.iter()
                .find(|mb| mb.name == ma.name)
                .map(|mb| verdict(ma, mb, tol))
        })
        .collect()
}

/// True if any delta in `deltas` is a regression.
pub fn any_regression(deltas: &[MetricDelta]) -> bool {
    deltas.iter().any(|d| d.verdict == Verdict::Regression)
}

/// True if `doc` looks like a `dws run --json` run report (as opposed
/// to a [`BenchRecord`]).
pub fn is_run_report(doc: &JsonValue) -> bool {
    doc.get("makespan_ns").is_some() && doc.get("n_ranks").is_some()
}

/// Extract the comparable metrics of a machine-readable run report:
/// the headline simulated metrics (makespan, speedup, efficiency),
/// the occupancy latencies (SL/EL) when present, the steal-RTT
/// percentiles when histograms were collected, and the self-profile's
/// wall metrics when the run was profiled.
pub fn metrics_from_run_report(doc: &JsonValue) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    let mut push = |name: &str, unit: &str, better: Polarity, v: Option<f64>| {
        if let Some(v) = v {
            out.push(BenchMetric::point(name, unit, better, v));
        }
    };
    let num = |path: &[&str]| -> Option<f64> {
        let mut v = doc;
        for key in path {
            v = v.get(key)?;
        }
        v.as_num()
    };
    push(
        "makespan_ns",
        "ns",
        Polarity::LowerIsBetter,
        num(&["makespan_ns"]),
    );
    push("speedup", "x", Polarity::HigherIsBetter, num(&["speedup"]));
    push(
        "efficiency",
        "frac",
        Polarity::HigherIsBetter,
        num(&["efficiency"]),
    );
    push(
        "steals_failed",
        "count",
        Polarity::Neutral,
        num(&["totals", "steals_failed"]),
    );
    for pct in ["25", "50", "90"] {
        push(
            &format!("sl{pct}"),
            "frac",
            Polarity::LowerIsBetter,
            num(&["occupancy", "sl", pct]),
        );
        push(
            &format!("el{pct}"),
            "frac",
            Polarity::LowerIsBetter,
            num(&["occupancy", "el", pct]),
        );
    }
    for p in ["p50", "p90", "p99"] {
        push(
            &format!("steal_rtt_{p}_ns"),
            "ns",
            Polarity::LowerIsBetter,
            num(&["histograms", "steal_rtt_ns", p]),
        );
    }
    push(
        "events_per_sec",
        "events/s",
        Polarity::HigherIsBetter,
        num(&["profile", "events_per_sec"]),
    );
    push(
        "allocs_per_event",
        "allocs",
        Polarity::LowerIsBetter,
        num(&["profile", "allocs_per_event"]),
    );
    push(
        "peak_rss_bytes",
        "bytes",
        Polarity::LowerIsBetter,
        num(&["profile", "peak_rss_bytes"]),
    );
    out
}

/// The configuration fingerprint of either artifact kind (run report
/// or bench record), if it carries one.
pub fn fingerprint_of_doc(doc: &JsonValue) -> Option<String> {
    if let Some(f) = doc.get("fingerprint").and_then(|v| v.as_str()) {
        return Some(f.to_string());
    }
    doc.get("config")
        .and_then(|c| c.get("fingerprint"))
        .and_then(|v| v.as_str())
        .map(str::to_string)
}

/// Deterministic 64-bit FNV-1a fingerprint of a canonical
/// configuration string, rendered as 16 hex digits. One shared
/// implementation so run reports, bench records, and trajectory
/// entries are fingerprint-compatible.
pub fn fingerprint(canonical: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// Best-effort current git revision (short hash, `-dirty` suffixed
/// when the work tree has local modifications); `"unknown"` when git
/// or the repository is unavailable.
pub fn git_rev() -> String {
    let run = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git").args(args).output().ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    match run(&["rev-parse", "--short", "HEAD"]) {
        Some(rev) if !rev.is_empty() => {
            let dirty = run(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
            if dirty {
                format!("{rev}-dirty")
            } else {
                rev
            }
        }
        _ => "unknown".to_string(),
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`;
/// `None` elsewhere or when procfs is unavailable).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Wall-clock phase accounting of one profiled run, as carried in the
/// run report's `profile` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Host wall-clock time of the simulation loop, in nanoseconds.
    pub wall_ns: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Heap allocations during the run (0 when the counting allocator
    /// is not installed in this binary).
    pub allocs: u64,
    /// Peak resident set size in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
    /// Per-phase timing: `(name, calls, total_ns)`.
    pub phases: Vec<(String, u64, u64)>,
    /// Per-shard execution profile of a windowed (parallel) run:
    /// `(shard, ranks, events, windows, busy_ns, wait_ns)`, where
    /// `busy_ns` is time spent advancing the shard's events and
    /// `wait_ns` time parked at window barriers.
    pub shards: Vec<(u32, u32, u64, u64, u64, u64)>,
}

impl ProfileReport {
    /// Engine throughput in events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Heap allocations per processed event (0 when allocation
    /// counting is unavailable).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.allocs as f64 / self.events as f64
    }

    /// Serialize for the run report's `profile` section.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("wall_ns", self.wall_ns.into()),
            ("events", self.events.into()),
            ("events_per_sec", self.events_per_sec().into()),
            ("allocs", self.allocs.into()),
            ("allocs_per_event", self.allocs_per_event().into()),
            ("peak_rss_bytes", self.peak_rss_bytes.into()),
            (
                "phases",
                JsonValue::Arr(
                    self.phases
                        .iter()
                        .map(|(name, calls, total_ns)| {
                            JsonValue::obj(vec![
                                ("name", name.as_str().into()),
                                ("calls", (*calls).into()),
                                ("total_ns", (*total_ns).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards",
                JsonValue::Arr(
                    self.shards
                        .iter()
                        .map(|&(shard, ranks, events, windows, busy_ns, wait_ns)| {
                            JsonValue::obj(vec![
                                ("shard", shard.into()),
                                ("ranks", ranks.into()),
                                ("events", events.into()),
                                ("windows", windows.into()),
                                ("busy_ns", busy_ns.into()),
                                ("wait_ns", wait_ns.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_brackets_the_normal() {
        assert!((t_crit95(1) - 12.706).abs() < 1e-9);
        assert!((t_crit95(9) - 2.262).abs() < 1e-9);
        assert!((t_crit95(30) - 2.042).abs() < 1e-9);
        assert!((t_crit95(1000) - 1.960).abs() < 1e-9);
        assert!(t_crit95(0).is_infinite());
        // Monotonically shrinking toward the normal.
        for df in 1..60 {
            assert!(t_crit95(df) >= t_crit95(df + 1));
        }
    }

    #[test]
    fn ci_math_known_values() {
        // Two samples: mean 10, sd = sqrt(2)·? — sd of {9, 11} is
        // sqrt(((9-10)² + (11-10)²)/1) = sqrt(2)... no: = sqrt(2/1) ≈ 1.4142.
        // stderr = 1.4142/sqrt(2) = 1.0; ci = t(1)·1.0 = 12.706.
        let (mean, ci) = mean_ci95(&[9.0, 11.0]);
        assert!((mean - 10.0).abs() < 1e-12);
        assert!((ci - 12.706).abs() < 1e-9, "got {ci}");
        // Identical samples: zero CI.
        let (_, ci) = mean_ci95(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(ci, 0.0);
        // Point estimates carry no noise evidence.
        let (mean, ci) = mean_ci95(&[42.0]);
        assert_eq!((mean, ci), (42.0, 0.0));
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
    }

    #[test]
    fn polarity_inference() {
        assert_eq!(Polarity::infer("makespan_ns"), Polarity::LowerIsBetter);
        assert_eq!(Polarity::infer("steal_rtt_p99_ns"), Polarity::LowerIsBetter);
        assert_eq!(Polarity::infer("events_per_sec"), Polarity::HigherIsBetter);
        assert_eq!(Polarity::infer("speedup"), Polarity::HigherIsBetter);
        assert_eq!(Polarity::infer("mystery_widgets"), Polarity::Neutral);
    }

    fn metric(name: &str, mean: f64, ci: f64, better: Polarity) -> BenchMetric {
        BenchMetric {
            name: name.into(),
            unit: "u".into(),
            n: 5,
            mean,
            ci95: ci,
            better,
        }
    }

    #[test]
    fn verdict_boundary_exactly_at_ci_threshold_is_noise() {
        // CIs: 2 + 3 = 5; delta exactly 5 → within noise (strict >).
        let a = metric("m", 100.0, 2.0, Polarity::LowerIsBetter);
        let b = metric("m", 105.0, 3.0, Polarity::LowerIsBetter);
        assert_eq!(verdict(&a, &b, 0.0).verdict, Verdict::WithinNoise);
        // One ulp beyond → regression.
        let b2 = metric("m", 105.0 + 1e-9, 3.0, Polarity::LowerIsBetter);
        assert_eq!(verdict(&a, &b2, 0.0).verdict, Verdict::Regression);
    }

    #[test]
    fn verdict_boundary_exactly_at_tolerance_floor_is_noise() {
        // Point estimates, tol 2%: threshold = 2.0; delta exactly 2.0
        // → within noise, just beyond → significant.
        let a = metric("m", 100.0, 0.0, Polarity::LowerIsBetter);
        let at = metric("m", 102.0, 0.0, Polarity::LowerIsBetter);
        let beyond = metric("m", 102.000001, 0.0, Polarity::LowerIsBetter);
        assert_eq!(verdict(&a, &at, 0.02).verdict, Verdict::WithinNoise);
        assert_eq!(verdict(&a, &beyond, 0.02).verdict, Verdict::Regression);
    }

    #[test]
    fn verdict_respects_polarity() {
        let a = metric("m", 100.0, 0.0, Polarity::HigherIsBetter);
        let worse = metric("m", 50.0, 0.0, Polarity::HigherIsBetter);
        let better = metric("m", 200.0, 0.0, Polarity::HigherIsBetter);
        assert_eq!(verdict(&a, &worse, 0.01).verdict, Verdict::Regression);
        assert_eq!(verdict(&a, &better, 0.01).verdict, Verdict::Improvement);
        // Neutral metrics never regress, no matter the delta.
        let n = metric("m", 100.0, 0.0, Polarity::Neutral);
        let n2 = metric("m", 1e9, 0.0, Polarity::Neutral);
        assert_eq!(verdict(&n, &n2, 0.01).verdict, Verdict::WithinNoise);
    }

    #[test]
    fn verdict_uses_wider_of_ci_and_tolerance() {
        // CI sum (1.0) below the tolerance floor (5.0): the floor wins.
        let a = metric("m", 100.0, 0.5, Polarity::LowerIsBetter);
        let b = metric("m", 104.0, 0.5, Polarity::LowerIsBetter);
        assert_eq!(verdict(&a, &b, 0.05).verdict, Verdict::WithinNoise);
        // CI sum (10.0) above the floor (1.0): the CIs win.
        let a = metric("m", 100.0, 5.0, Polarity::LowerIsBetter);
        let b = metric("m", 108.0, 5.0, Polarity::LowerIsBetter);
        assert_eq!(verdict(&a, &b, 0.01).verdict, Verdict::WithinNoise);
    }

    #[test]
    fn compare_matches_by_name_and_flags_regressions() {
        let a = vec![
            metric("x", 100.0, 0.0, Polarity::LowerIsBetter),
            metric("y", 10.0, 0.0, Polarity::HigherIsBetter),
            metric("only_in_a", 1.0, 0.0, Polarity::Neutral),
        ];
        let b = vec![
            metric("y", 10.0, 0.0, Polarity::HigherIsBetter),
            metric("x", 150.0, 0.0, Polarity::LowerIsBetter),
        ];
        let deltas = compare(&a, &b, 0.02);
        assert_eq!(deltas.len(), 2);
        assert!(any_regression(&deltas));
        assert_eq!(deltas[0].name, "x");
        assert_eq!(deltas[0].verdict, Verdict::Regression);
        assert_eq!(deltas[1].verdict, Verdict::WithinNoise);
    }

    #[test]
    fn record_roundtrip_and_validation() {
        let rec = BenchRecord {
            schema: BENCH_SCHEMA_VERSION,
            bench: "micro".into(),
            git_rev: "abc1234".into(),
            fingerprint: fingerprint("micro-v1"),
            trial_seed: 1,
            unix_time_s: 1_700_000_000,
            trials: 7,
            threads: 1,
            metrics: vec![BenchMetric::from_samples(
                "sha1/digest_64B",
                "ns_per_iter",
                Polarity::LowerIsBetter,
                &[100.0, 101.0, 99.0],
            )],
        };
        let text = rec.to_json().to_string();
        assert!(!text.contains('\n'), "records must be single-line");
        let back = BenchRecord::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);
        // Wrong schema and empty metrics are rejected.
        let mut bad = rec.clone();
        bad.schema = 99;
        assert!(BenchRecord::from_json(&bad.to_json()).is_err());
        // Records from every still-supported schema version parse.
        for v in BENCH_SCHEMA_MIN_VERSION..=BENCH_SCHEMA_VERSION {
            let mut old = rec.clone();
            old.schema = v;
            let back = BenchRecord::from_json(&old.to_json()).unwrap();
            assert_eq!(back.schema, v);
        }
        let mut empty = rec;
        empty.metrics.clear();
        assert!(BenchRecord::from_json(&empty.to_json()).is_err());
    }

    #[test]
    fn trajectory_parses_jsonl_and_array_forms() {
        let rec = BenchRecord {
            schema: BENCH_SCHEMA_VERSION,
            bench: "micro".into(),
            git_rev: "r".into(),
            fingerprint: "f".into(),
            trial_seed: 0,
            unix_time_s: 1,
            trials: 1,
            threads: 1,
            metrics: vec![BenchMetric::point("m", "ns", Polarity::LowerIsBetter, 5.0)],
        };
        let line = rec.to_json().to_string();
        let jsonl = format!("{line}\n\n{line}\n");
        let recs = parse_trajectory(&jsonl).unwrap();
        assert_eq!(recs.len(), 2);
        let array = format!("[{line},{line},{line}]");
        assert_eq!(parse_trajectory(&array).unwrap().len(), 3);
        assert!(parse_trajectory("not json\n").is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("a"), fingerprint("a"));
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_eq!(fingerprint("").len(), 16);
    }

    #[test]
    fn run_report_metric_extraction() {
        let doc = parse(
            r#"{"makespan_ns": 1000, "n_ranks": 4, "speedup": 3.5, "efficiency": 0.875,
                "totals": {"steals_failed": 7},
                "occupancy": {"sl": {"50": 0.1}, "el": {"50": 0.2}},
                "histograms": {"steal_rtt_ns": {"p50": 10, "p90": 20, "p99": 30}},
                "profile": {"events_per_sec": 1e6, "allocs_per_event": 0.5,
                            "peak_rss_bytes": 1048576}}"#,
        )
        .unwrap();
        assert!(is_run_report(&doc));
        let metrics = metrics_from_run_report(&doc);
        let find = |n: &str| metrics.iter().find(|m| m.name == n).unwrap();
        assert_eq!(find("makespan_ns").mean, 1000.0);
        assert_eq!(find("makespan_ns").better, Polarity::LowerIsBetter);
        assert_eq!(find("speedup").better, Polarity::HigherIsBetter);
        assert_eq!(find("sl50").mean, 0.1);
        assert_eq!(find("steal_rtt_p99_ns").mean, 30.0);
        assert_eq!(find("events_per_sec").mean, 1e6);
        assert_eq!(find("steals_failed").better, Polarity::Neutral);
        // Sections absent → metrics absent, not zero.
        let bare = parse(r#"{"makespan_ns": 1, "n_ranks": 2, "speedup": 1.0}"#).unwrap();
        let m = metrics_from_run_report(&bare);
        assert!(m.iter().all(|x| x.name != "sl50"));
    }

    #[test]
    fn profile_report_json_and_rates() {
        let p = ProfileReport {
            wall_ns: 2_000_000_000,
            events: 4_000_000,
            allocs: 1_000_000,
            peak_rss_bytes: 1 << 20,
            phases: vec![("dispatch".into(), 4_000_000, 1_500_000_000)],
            shards: vec![(0, 8, 2_000_000, 300, 900_000_000, 100_000_000)],
        };
        assert!((p.events_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((p.allocs_per_event() - 0.25).abs() < 1e-12);
        let j = p.to_json();
        assert_eq!(j.get("events").unwrap().as_u64(), Some(4_000_000));
        let phases = j.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(
            phases[0].get("name").and_then(|v| v.as_str()),
            Some("dispatch")
        );
        let shards = j.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards[0].get("ranks").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(
            shards[0].get("busy_ns").and_then(|v| v.as_u64()),
            Some(900_000_000)
        );
    }
}
