//! Machine-readable exporters: a dependency-free JSON tree, a Chrome
//! trace-event writer, and histogram/link-matrix serializers.
//!
//! The workspace carries no external crates, so JSON is hand-rolled: a
//! small [`JsonValue`] tree with an escaping writer and a
//! recursive-descent [`parse`] — the parser exists so tests (and
//! downstream tools) can validate what the writer produced without a
//! serde dependency.
//!
//! The Chrome exporter targets the [trace-event format] consumed by
//! `chrome://tracing` and Perfetto: one thread track per rank carrying
//! `B`/`E` "working" phases from the activity trace, async `b`/`e`
//! pairs per steal attempt keyed by trace ID, and `i` instants for
//! protocol recovery events (timeouts, retransmits, token
//! regenerations).
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::critpath::CriticalPath;
use crate::histogram::{Histogram, LatencyHistograms};
use crate::span::{SpanKind, SpanTrace};
use crate::trace::ActivityTrace;
use std::fmt;

/// A JSON document tree. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a member of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_num().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document. Returns the root value or a positioned error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at offset {}", c as char, self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair if one follows;
                            // otherwise accept the BMP code point.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.b[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("bad unicode escape near offset {}", self.i)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.b[self.i..self.i + 4]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at offset {}", self.i))?;
        self.i += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

/// Serialize one histogram: summary statistics plus non-empty buckets.
pub fn histogram_json(h: &Histogram) -> JsonValue {
    JsonValue::obj(vec![
        ("count", h.count().into()),
        ("sum", JsonValue::Num(h.sum() as f64)),
        ("min", h.min().into()),
        ("max", h.max().into()),
        ("mean", h.mean().into()),
        ("p50", h.p50().into()),
        ("p90", h.p90().into()),
        ("p95", h.p95().into()),
        ("p99", h.p99().into()),
        (
            "buckets",
            JsonValue::Arr(
                h.buckets()
                    .into_iter()
                    .map(|(lo, hi, c)| JsonValue::Arr(vec![lo.into(), hi.into(), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize the full set of run histograms, keyed by metric name.
pub fn histograms_json(h: &LatencyHistograms) -> JsonValue {
    JsonValue::Obj(
        h.named()
            .iter()
            .map(|(name, hist)| (name.to_string(), histogram_json(hist)))
            .collect(),
    )
}

/// Serialize a per-link load matrix: `links` maps a printable link
/// label (e.g. `"(1,0,0,0,0,0)+x"`) to traffic units routed over it.
pub fn link_matrix_json(links: &[(String, u64)], hotspot_factor: f64) -> JsonValue {
    let total: u64 = links.iter().map(|(_, u)| u).sum();
    JsonValue::obj(vec![
        ("links_used", links.len().into()),
        ("total_link_units", total.into()),
        ("hotspot_factor", hotspot_factor.into()),
        (
            "links",
            JsonValue::Arr(
                links
                    .iter()
                    .map(|(label, units)| {
                        JsonValue::obj(vec![
                            ("link", label.as_str().into()),
                            ("units", (*units).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Predicate selecting one span kind.
type KindPred = fn(&SpanKind) -> bool;

/// Span counts per kind — the machine-readable reconciliation surface.
pub fn span_counts_json(spans: &SpanTrace) -> JsonValue {
    let kinds: [(&str, KindPred); 15] = [
        ("steal_request_sent", |k| {
            matches!(k, SpanKind::StealRequestSent { .. })
        }),
        ("steal_request_recv", |k| {
            matches!(k, SpanKind::StealRequestRecv { .. })
        }),
        ("steal_reply_sent", |k| {
            matches!(k, SpanKind::StealReplySent { .. })
        }),
        ("steal_serviced", |k| {
            matches!(k, SpanKind::StealServiced { .. })
        }),
        ("steal_ok", |k| matches!(k, SpanKind::StealOk { .. })),
        ("steal_empty", |k| matches!(k, SpanKind::StealEmpty { .. })),
        ("steal_timeout", |k| {
            matches!(k, SpanKind::StealTimeout { .. })
        }),
        ("steal_abandoned", |k| {
            matches!(k, SpanKind::StealAbandoned { .. })
        }),
        ("transfer_acked", |k| {
            matches!(k, SpanKind::TransferAcked { .. })
        }),
        ("retransmit", |k| matches!(k, SpanKind::Retransmit { .. })),
        ("token_hop", |k| matches!(k, SpanKind::TokenHop { .. })),
        ("token_regenerated", |k| {
            matches!(k, SpanKind::TokenRegenerated { .. })
        }),
        ("quarantined", |k| matches!(k, SpanKind::Quarantined { .. })),
        ("session_end", |k| matches!(k, SpanKind::SessionEnd { .. })),
        ("done", |k| matches!(k, SpanKind::Done)),
    ];
    JsonValue::Obj(
        kinds
            .iter()
            .map(|(name, pred)| (name.to_string(), spans.count(pred).into()))
            .collect(),
    )
}

/// Microseconds for a Chrome trace `ts` field.
fn us(ns: u64) -> JsonValue {
    JsonValue::Num(ns as f64 / 1000.0)
}

fn event(
    name: &str,
    cat: &str,
    ph: &str,
    ts_ns: u64,
    rank: usize,
    extra: Vec<(&str, JsonValue)>,
) -> JsonValue {
    let mut pairs = vec![
        ("name", JsonValue::from(name)),
        ("cat", JsonValue::from(cat)),
        ("ph", JsonValue::from(ph)),
        ("ts", us(ts_ns)),
        ("pid", JsonValue::from(0u64)),
        ("tid", JsonValue::from(rank)),
    ];
    pairs.extend(extra);
    JsonValue::obj(pairs)
}

fn async_extra(trace: u64) -> (&'static str, JsonValue) {
    // Chrome matches async b/e events on (cat, id); a hex string id
    // sidesteps f64 precision limits on wide trace IDs.
    ("id", JsonValue::Str(format!("{trace:x}")))
}

fn outcome_args(outcome: &str) -> (&'static str, JsonValue) {
    ("args", JsonValue::obj(vec![("outcome", outcome.into())]))
}

/// A flow event (`ph` ∈ {`s`, `t`, `f`}) on the steal chain keyed by
/// the attempt's trace ID, so Perfetto draws arrows request → service
/// → reply → outcome across rank tracks.
fn flow_event(ph: &str, ts_ns: u64, rank: usize, trace: u64) -> JsonValue {
    let mut extra = vec![async_extra(trace)];
    if ph == "f" {
        // Bind the arrowhead to the enclosing slice rather than the
        // next one on the track.
        extra.push(("bp", "e".into()));
    }
    event("steal chain", "steal-flow", ph, ts_ns, rank, extra)
}

/// Export a run as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or Perfetto.
///
/// One thread track per rank: `B`/`E` "working" phases come from the
/// (skew-corrected) `activity` trace, with any phase still open at
/// `makespan_ns` closed there; steal attempts appear as async `b`/`e`
/// pairs matched on the attempt's trace ID (attempts left open by a
/// crash close at `makespan_ns` with outcome `"unresolved"`); protocol
/// recovery shows up as `i` instants.
pub fn chrome_trace(
    spans: &SpanTrace,
    activity: Option<&ActivityTrace>,
    makespan_ns: u64,
) -> JsonValue {
    chrome_trace_with_critpath(spans, activity, makespan_ns, None)
}

/// [`chrome_trace`] with the run's critical path overlaid: a dedicated
/// "critical path" track of `X` slices (one per attributed segment)
/// plus flow arrows hopping rank tracks wherever the path changes
/// rank, so the chain that bounds the makespan is visually traceable.
pub fn chrome_trace_with_critpath(
    spans: &SpanTrace,
    activity: Option<&ActivityTrace>,
    makespan_ns: u64,
    critpath: Option<&CriticalPath>,
) -> JsonValue {
    let mut events: Vec<(u64, JsonValue)> = Vec::new();
    let n_ranks = activity
        .map(|a| a.n_ranks() as usize)
        .unwrap_or(0)
        .max(spans.n_ranks());

    // Track-naming metadata so the viewer shows "rank N", not "tid N".
    for rank in 0..n_ranks {
        events.push((
            0,
            event(
                "thread_name",
                "__metadata",
                "M",
                0,
                rank,
                vec![(
                    "args",
                    JsonValue::obj(vec![("name", format!("rank {rank}").into())]),
                )],
            ),
        ));
    }

    // Working phases from the activity trace.
    if let Some(trace) = activity {
        let sorted = trace.sorted();
        let mut open: Vec<bool> = vec![false; trace.n_ranks() as usize];
        for t in sorted.iter() {
            let rank = t.rank as usize;
            if t.active && !open[rank] {
                events.push((
                    t.at_ns,
                    event("working", "activity", "B", t.at_ns, rank, vec![]),
                ));
                open[rank] = true;
            } else if !t.active && open[rank] {
                events.push((
                    t.at_ns,
                    event("working", "activity", "E", t.at_ns, rank, vec![]),
                ));
                open[rank] = false;
            }
        }
        for (rank, is_open) in open.iter().enumerate() {
            if *is_open {
                events.push((
                    makespan_ns,
                    event("working", "activity", "E", makespan_ns, rank, vec![]),
                ));
            }
        }
    }

    // Steal attempts as async pairs; recovery machinery as instants.
    let mut open_attempts: Vec<(usize, u64)> = Vec::new();
    for r in spans.records() {
        match r.kind {
            SpanKind::StealRequestSent { victim } => {
                open_attempts.push((r.rank, r.trace));
                events.push((
                    r.at_ns,
                    event(
                        "steal",
                        "steal",
                        "b",
                        r.at_ns,
                        r.rank,
                        vec![
                            async_extra(r.trace),
                            ("args", JsonValue::obj(vec![("victim", victim.into())])),
                        ],
                    ),
                ));
                events.push((r.at_ns, flow_event("s", r.at_ns, r.rank, r.trace)));
            }
            SpanKind::StealOk { nodes, .. } => {
                open_attempts.retain(|&(rk, tr)| !(rk == r.rank && tr == r.trace));
                events.push((
                    r.at_ns,
                    event(
                        "steal",
                        "steal",
                        "e",
                        r.at_ns,
                        r.rank,
                        vec![
                            async_extra(r.trace),
                            (
                                "args",
                                JsonValue::obj(vec![
                                    ("outcome", "ok".into()),
                                    ("nodes", nodes.into()),
                                ]),
                            ),
                        ],
                    ),
                ));
                events.push((r.at_ns, flow_event("f", r.at_ns, r.rank, r.trace)));
            }
            SpanKind::StealEmpty { .. } => {
                open_attempts.retain(|&(rk, tr)| !(rk == r.rank && tr == r.trace));
                events.push((
                    r.at_ns,
                    event(
                        "steal",
                        "steal",
                        "e",
                        r.at_ns,
                        r.rank,
                        vec![async_extra(r.trace), outcome_args("empty")],
                    ),
                ));
                events.push((r.at_ns, flow_event("f", r.at_ns, r.rank, r.trace)));
            }
            SpanKind::StealTimeout { .. } => {
                open_attempts.retain(|&(rk, tr)| !(rk == r.rank && tr == r.trace));
                events.push((
                    r.at_ns,
                    event(
                        "steal",
                        "steal",
                        "e",
                        r.at_ns,
                        r.rank,
                        vec![async_extra(r.trace), outcome_args("timeout")],
                    ),
                ));
                events.push((r.at_ns, flow_event("f", r.at_ns, r.rank, r.trace)));
                events.push((
                    r.at_ns,
                    event(
                        "steal timeout",
                        "recovery",
                        "i",
                        r.at_ns,
                        r.rank,
                        vec![("s", "t".into())],
                    ),
                ));
            }
            SpanKind::StealAbandoned { .. } => {
                open_attempts.retain(|&(rk, tr)| !(rk == r.rank && tr == r.trace));
                events.push((
                    r.at_ns,
                    event(
                        "steal",
                        "steal",
                        "e",
                        r.at_ns,
                        r.rank,
                        vec![async_extra(r.trace), outcome_args("abandoned")],
                    ),
                ));
                events.push((r.at_ns, flow_event("f", r.at_ns, r.rank, r.trace)));
            }
            SpanKind::StealRequestRecv { .. } | SpanKind::StealReplySent { .. } => {
                events.push((
                    r.at_ns,
                    event(
                        "service",
                        "steal",
                        "n",
                        r.at_ns,
                        r.rank,
                        vec![async_extra(r.trace)],
                    ),
                ));
                events.push((r.at_ns, flow_event("t", r.at_ns, r.rank, r.trace)));
            }
            SpanKind::StealServiced {
                queue_ns,
                depart_delay_ns,
                ..
            } => {
                events.push((
                    r.at_ns,
                    event(
                        "serviced",
                        "steal",
                        "n",
                        r.at_ns,
                        r.rank,
                        vec![
                            async_extra(r.trace),
                            (
                                "args",
                                JsonValue::obj(vec![
                                    ("queue_ns", queue_ns.into()),
                                    ("depart_delay_ns", depart_delay_ns.into()),
                                ]),
                            ),
                        ],
                    ),
                ));
            }
            SpanKind::Quarantined { victim } => {
                events.push((
                    r.at_ns,
                    event(
                        "quarantined",
                        "recovery",
                        "i",
                        r.at_ns,
                        r.rank,
                        vec![
                            ("s", "t".into()),
                            ("args", JsonValue::obj(vec![("victim", victim.into())])),
                        ],
                    ),
                ));
            }
            SpanKind::Retransmit { .. } => {
                events.push((
                    r.at_ns,
                    event(
                        "retransmit",
                        "recovery",
                        "i",
                        r.at_ns,
                        r.rank,
                        vec![("s", "t".into())],
                    ),
                ));
            }
            SpanKind::TokenRegenerated { .. } => {
                events.push((
                    r.at_ns,
                    event(
                        "token regenerated",
                        "recovery",
                        "i",
                        r.at_ns,
                        r.rank,
                        vec![("s", "t".into())],
                    ),
                ));
            }
            SpanKind::TransferAcked { .. }
            | SpanKind::TokenHop { .. }
            | SpanKind::SessionEnd { .. }
            | SpanKind::Done => {}
        }
    }
    // Attempts a crash left open: close them so every b has an e.
    for (rank, trace) in open_attempts {
        events.push((
            makespan_ns,
            event(
                "steal",
                "steal",
                "e",
                makespan_ns,
                rank,
                vec![async_extra(trace), outcome_args("unresolved")],
            ),
        ));
    }

    // The critical path as its own track: one `X` slice per attributed
    // segment, plus flow arrows hopping between rank tracks wherever
    // the path changes rank.
    if let Some(cp) = critpath {
        let cp_tid = n_ranks;
        events.push((
            0,
            event(
                "thread_name",
                "__metadata",
                "M",
                0,
                cp_tid,
                vec![(
                    "args",
                    JsonValue::obj(vec![("name", "critical path".into())]),
                )],
            ),
        ));
        let segs = cp.segments();
        for (i, seg) in segs.iter().enumerate() {
            events.push((
                seg.from_ns,
                event(
                    seg.component.label(),
                    "critpath",
                    "X",
                    seg.from_ns,
                    cp_tid,
                    vec![
                        ("dur", us(seg.dur_ns())),
                        (
                            "args",
                            JsonValue::obj(vec![("rank", (seg.rank as usize).into())]),
                        ),
                    ],
                ),
            ));
            if let Some(next) = segs.get(i + 1) {
                if next.rank != seg.rank {
                    let id = ("id", JsonValue::Str(format!("cp{i}")));
                    events.push((
                        seg.to_ns,
                        event(
                            "critical path",
                            "critpath-flow",
                            "s",
                            seg.to_ns,
                            seg.rank as usize,
                            vec![id.clone()],
                        ),
                    ));
                    events.push((
                        next.from_ns,
                        event(
                            "critical path",
                            "critpath-flow",
                            "f",
                            next.from_ns,
                            next.rank as usize,
                            vec![id, ("bp", "e".into())],
                        ),
                    ));
                }
            }
        }
    }

    events.sort_by_key(|&(ts, _)| ts);
    JsonValue::obj(vec![
        (
            "traceEvents",
            JsonValue::Arr(events.into_iter().map(|(_, e)| e).collect()),
        ),
        ("displayTimeUnit", "ns".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{trace_id, SpanRecord};

    #[test]
    fn json_roundtrip() {
        let doc = JsonValue::obj(vec![
            ("name", "he said \"hi\"\n".into()),
            ("n", JsonValue::Num(42.5)),
            ("neg", JsonValue::Num(-3.0)),
            ("flag", true.into()),
            ("nothing", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![1u64.into(), "two".into(), JsonValue::Arr(vec![])]),
            ),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("n").unwrap().as_num(), Some(42.5));
        assert_eq!(back.get("name").unwrap().as_str(), Some("he said \"hi\"\n"));
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn histogram_json_totals_match() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let j = histogram_json(&h);
        assert_eq!(j.get("count").unwrap().as_u64(), Some(4));
        let buckets = j.get("buckets").unwrap().as_arr().unwrap();
        let total: u64 = buckets
            .iter()
            .map(|b| b.as_arr().unwrap()[2].as_u64().unwrap())
            .sum();
        assert_eq!(total, 4);
        // And it survives a writer→parser round trip.
        parse(&j.to_string()).unwrap();
    }

    fn sample_spans() -> SpanTrace {
        let id = trace_id(0, 0);
        SpanTrace::from_per_rank(vec![
            vec![
                SpanRecord {
                    at_ns: 100,
                    rank: 0,
                    trace: id,
                    kind: SpanKind::StealRequestSent { victim: 1 },
                },
                SpanRecord {
                    at_ns: 900,
                    rank: 0,
                    trace: id,
                    kind: SpanKind::StealOk {
                        victim: 1,
                        rtt_ns: 800,
                        nodes: 4,
                    },
                },
            ],
            vec![SpanRecord {
                at_ns: 500,
                rank: 1,
                trace: id,
                kind: SpanKind::StealRequestRecv { thief: 0 },
            }],
        ])
    }

    #[test]
    fn chrome_trace_pairs_async_events() {
        let mut activity = ActivityTrace::new(2);
        activity.record(0, 0, true);
        activity.record(1, 200, true);
        activity.record(0, 1000, false);
        // rank 1 still active at makespan: must be closed by exporter.
        let doc = chrome_trace(&sample_spans(), Some(&activity), 1500);
        let text = doc.to_string();
        let parsed = parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let count_ph = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .count()
        };
        assert_eq!(count_ph("B"), 2);
        assert_eq!(count_ph("E"), 2);
        assert_eq!(count_ph("b"), 1);
        assert_eq!(count_ph("e"), 1);
        assert_eq!(count_ph("n"), 1);
        assert_eq!(count_ph("M"), 2);
    }

    #[test]
    fn chrome_trace_closes_attempts_left_open() {
        let spans = SpanTrace::from_per_rank(vec![vec![SpanRecord {
            at_ns: 100,
            rank: 0,
            trace: trace_id(0, 0),
            kind: SpanKind::StealRequestSent { victim: 1 },
        }]]);
        let doc = chrome_trace(&spans, None, 1000);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let closes: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("e"))
            .collect();
        assert_eq!(closes.len(), 1);
        assert_eq!(
            closes[0]
                .get("args")
                .and_then(|a| a.get("outcome"))
                .and_then(|o| o.as_str()),
            Some("unresolved")
        );
    }

    #[test]
    fn link_matrix_reports_totals() {
        let links = vec![
            ("(0,0,0,0,0,0)+x".to_string(), 7u64),
            ("(1,0,0,0,0,0)+y".to_string(), 3),
        ];
        let j = link_matrix_json(&links, 2.1);
        assert_eq!(j.get("links_used").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("total_link_units").unwrap().as_u64(), Some(10));
        parse(&j.to_string()).unwrap();
    }

    #[test]
    fn span_counts_cover_every_kind_recorded() {
        let j = span_counts_json(&sample_spans());
        assert_eq!(j.get("steal_request_sent").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("steal_ok").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("steal_request_recv").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("steal_empty").unwrap().as_u64(), Some(0));
    }
}
