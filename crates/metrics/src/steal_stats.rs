//! Per-rank steal statistics and work-discovery sessions.
//!
//! The paper reads three more numbers off each run (§V-A):
//!
//! - **failed steals** — steal requests "answered negatively"
//!   (Figures 7 and 15);
//! - **search time** — "the portion of the execution time a process was
//!   waiting for a steal answer (work or no work)" (Figure 14);
//! - **work-discovery sessions** — "a work discovery session starts
//!   when a process exhausts its work and ends with either work in the
//!   queue or application termination" (Figure 10).

/// Counters kept by each rank's scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Steal requests this rank issued.
    pub steal_attempts: u64,
    /// Requests answered with work.
    pub steals_ok: u64,
    /// Requests answered negatively.
    pub steals_failed: u64,
    /// Chunks received via steals.
    pub chunks_received: u64,
    /// Tree nodes received via steals.
    pub nodes_received: u64,
    /// Chunks this rank gave away to thieves.
    pub chunks_given: u64,
    /// Tree nodes this rank gave away to thieves.
    pub nodes_given: u64,
    /// Nanoseconds spent waiting for steal answers (search time).
    pub search_ns: u64,
    /// Completed work-discovery sessions.
    pub sessions: u64,
    /// Total duration of completed work-discovery sessions.
    pub session_ns: u64,
    /// Tree nodes this rank expanded itself.
    pub nodes_processed: u64,
    /// Lifeline extension: times this rank went dormant.
    pub lifeline_dormancies: u64,
    /// Lifeline extension: chunks pushed to dormant buddies.
    pub lifeline_pushes: u64,
}

impl StealStats {
    /// Sum two ranks' counters.
    pub fn merge(&self, o: &StealStats) -> StealStats {
        StealStats {
            steal_attempts: self.steal_attempts + o.steal_attempts,
            steals_ok: self.steals_ok + o.steals_ok,
            steals_failed: self.steals_failed + o.steals_failed,
            chunks_received: self.chunks_received + o.chunks_received,
            nodes_received: self.nodes_received + o.nodes_received,
            chunks_given: self.chunks_given + o.chunks_given,
            nodes_given: self.nodes_given + o.nodes_given,
            search_ns: self.search_ns + o.search_ns,
            sessions: self.sessions + o.sessions,
            session_ns: self.session_ns + o.session_ns,
            nodes_processed: self.nodes_processed + o.nodes_processed,
            lifeline_dormancies: self.lifeline_dormancies + o.lifeline_dormancies,
            lifeline_pushes: self.lifeline_pushes + o.lifeline_pushes,
        }
    }

    /// Internal consistency: every attempt succeeded or failed.
    pub fn check(&self) -> Result<(), String> {
        if self.steals_ok + self.steals_failed != self.steal_attempts {
            return Err(format!(
                "attempts {} != ok {} + failed {}",
                self.steal_attempts, self.steals_ok, self.steals_failed
            ));
        }
        Ok(())
    }
}

/// Aggregated statistics over all ranks of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-rank counters, indexed by rank.
    pub per_rank: Vec<StealStats>,
}

impl RunStats {
    /// Wrap per-rank counters.
    pub fn new(per_rank: Vec<StealStats>) -> Self {
        Self { per_rank }
    }

    /// Totals over all ranks.
    pub fn total(&self) -> StealStats {
        self.per_rank
            .iter()
            .fold(StealStats::default(), |acc, s| acc.merge(s))
    }

    /// Total failed steals (the y-axis of Figures 7 and 15).
    pub fn failed_steals(&self) -> u64 {
        self.total().steals_failed
    }

    /// Mean per-rank search time in nanoseconds (Figure 14 reports
    /// seconds; callers convert).
    pub fn avg_search_ns(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.total().search_ns as f64 / self.per_rank.len() as f64
    }

    /// Mean duration of a work-discovery session in nanoseconds
    /// (Figure 10 reports milliseconds; callers convert).
    pub fn avg_session_ns(&self) -> f64 {
        let t = self.total();
        if t.sessions == 0 {
            return 0.0;
        }
        t.session_ns as f64 / t.sessions as f64
    }

    /// Mean number of sessions per rank (the paper quotes "6800 work
    /// discovery sessions" per rank for one configuration).
    pub fn avg_sessions_per_rank(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.total().sessions as f64 / self.per_rank.len() as f64
    }

    /// Work conservation: nodes given away must equal nodes received,
    /// and every steal answered with work must appear on both sides.
    pub fn check_conservation(&self) -> Result<(), String> {
        let t = self.total();
        if t.nodes_given != t.nodes_received {
            return Err(format!(
                "nodes given {} != nodes received {}",
                t.nodes_given, t.nodes_received
            ));
        }
        if t.chunks_given != t.chunks_received {
            return Err(format!(
                "chunks given {} != chunks received {}",
                t.chunks_given, t.chunks_received
            ));
        }
        for (rank, s) in self.per_rank.iter().enumerate() {
            s.check().map_err(|e| format!("rank {rank}: {e}"))?;
        }
        Ok(())
    }

    /// Total nodes expanded across all ranks — must equal the tree size.
    pub fn nodes_processed(&self) -> u64 {
        self.total().nodes_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(attempts: u64, ok: u64) -> StealStats {
        StealStats {
            steal_attempts: attempts,
            steals_ok: ok,
            steals_failed: attempts - ok,
            ..StealStats::default()
        }
    }

    #[test]
    fn merge_sums_fields() {
        let a = StealStats {
            nodes_processed: 10,
            search_ns: 5,
            ..stats(4, 2)
        };
        let b = StealStats {
            nodes_processed: 20,
            search_ns: 7,
            ..stats(6, 6)
        };
        let m = a.merge(&b);
        assert_eq!(m.steal_attempts, 10);
        assert_eq!(m.steals_ok, 8);
        assert_eq!(m.nodes_processed, 30);
        assert_eq!(m.search_ns, 12);
    }

    #[test]
    fn check_flags_inconsistent_attempts() {
        let bad = StealStats {
            steal_attempts: 5,
            steals_ok: 1,
            steals_failed: 1,
            ..StealStats::default()
        };
        assert!(bad.check().is_err());
        assert!(stats(5, 3).check().is_ok());
    }

    #[test]
    fn conservation_detects_lost_nodes() {
        let giver = StealStats {
            nodes_given: 100,
            chunks_given: 5,
            ..StealStats::default()
        };
        let taker = StealStats {
            nodes_received: 90,
            chunks_received: 5,
            ..StealStats::default()
        };
        let run = RunStats::new(vec![giver, taker]);
        assert!(run.check_conservation().is_err());
    }

    #[test]
    fn averages() {
        let a = StealStats {
            search_ns: 100,
            sessions: 2,
            session_ns: 60,
            ..StealStats::default()
        };
        let b = StealStats {
            search_ns: 300,
            sessions: 2,
            session_ns: 140,
            ..StealStats::default()
        };
        let run = RunStats::new(vec![a, b]);
        assert_eq!(run.avg_search_ns(), 200.0);
        assert_eq!(run.avg_session_ns(), 50.0);
        assert_eq!(run.avg_sessions_per_rank(), 2.0);
    }

    #[test]
    fn empty_run_is_calm() {
        let run = RunStats::default();
        assert_eq!(run.avg_search_ns(), 0.0);
        assert_eq!(run.avg_session_ns(), 0.0);
        assert_eq!(run.failed_steals(), 0);
        assert!(run.check_conservation().is_ok());
    }
}
