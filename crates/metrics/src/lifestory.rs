//! Lifestories: per-rank activity Gantt charts.
//!
//! The paper credits Saraswat et al.'s *lifelines* paper with
//! "lifestories, a graphic representation of each process activity
//! during an execution", noting that its own trace "is very similar"
//! but is used quantitatively. This module renders the qualitative
//! view: one row per rank, time flowing left to right, `#` where the
//! rank held work and spaces where it idled — invaluable for eyeballing
//! where a scheduler's occupancy went.

use crate::trace::ActivityTrace;

/// Render a lifestory chart: `width` columns of time, one row per rank
/// (up to `max_rows` rows, evenly subsampled when there are more
/// ranks). A cell is `#` if the rank was active for at least half the
/// cell's time span, `+` if active at all, space otherwise.
pub fn render(trace: &ActivityTrace, total_ns: u64, width: usize, max_rows: usize) -> String {
    assert!(width >= 2 && max_rows >= 1, "chart too small");
    let n = trace.n_ranks();
    let total = total_ns.max(1);
    // Per-rank busy intervals.
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
    let mut open: Vec<Option<u64>> = vec![None; n as usize];
    let mut sorted: Vec<_> = trace.transitions().to_vec();
    sorted.sort_by_key(|t| (t.at_ns, t.rank));
    for t in sorted {
        let r = t.rank as usize;
        match (t.active, open[r]) {
            (true, None) => open[r] = Some(t.at_ns),
            (false, Some(s)) => {
                intervals[r].push((s, t.at_ns));
                open[r] = None;
            }
            _ => {}
        }
    }
    for (r, o) in open.iter().enumerate() {
        if let Some(s) = o {
            intervals[r].push((*s, total));
        }
    }

    let rows = max_rows.min(n as usize);
    let mut out = String::with_capacity(rows * (width + 16));
    out.push_str(&format!(
        "lifestory: {} ranks over {:.3} ms ({} rows shown)\n",
        n,
        total as f64 / 1e6,
        rows
    ));
    let cell_ns = total as f64 / width as f64;
    for row in 0..rows {
        // Even subsample of ranks.
        let rank = if rows == 1 {
            0
        } else {
            (row * (n as usize - 1)) / (rows - 1)
        };
        let mut line = String::with_capacity(width);
        for col in 0..width {
            let c0 = (col as f64 * cell_ns) as u64;
            let c1 = ((col + 1) as f64 * cell_ns) as u64;
            let mut busy = 0u64;
            for &(s, e) in &intervals[rank] {
                let lo = s.max(c0);
                let hi = e.min(c1);
                if hi > lo {
                    busy += hi - lo;
                }
            }
            let span = (c1 - c0).max(1);
            line.push(if busy * 2 >= span {
                '#'
            } else if busy > 0 {
                '+'
            } else {
                ' '
            });
        }
        out.push_str(&format!("{rank:>6} |{line}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_trace() -> ActivityTrace {
        let mut t = ActivityTrace::new(2);
        t.record(0, 0, true);
        t.record(0, 100, false);
        t.record(1, 50, true);
        t.record(1, 100, false);
        t
    }

    #[test]
    fn rank0_full_rank1_half() {
        let chart = render(&two_rank_trace(), 100, 10, 2);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        // Rank 0 active the whole run.
        assert!(lines[1].contains("##########"), "rank 0 row: {}", lines[1]);
        // Rank 1 active in the second half only.
        let row1 = lines[2];
        let bars: String = row1.chars().skip_while(|&c| c != '|').collect();
        assert!(bars.starts_with("|     "), "rank 1 row: {row1}");
        assert!(bars.contains("#####|"), "rank 1 row: {row1}");
    }

    #[test]
    fn open_interval_extends_to_end() {
        let mut t = ActivityTrace::new(1);
        t.record(0, 40, true); // never goes idle
        let chart = render(&t, 100, 10, 1);
        let row = chart.lines().nth(1).expect("one data row");
        assert!(row.ends_with("######|"), "row: {row}");
    }

    #[test]
    fn subsampling_many_ranks() {
        let mut t = ActivityTrace::new(100);
        for r in 0..100 {
            t.record(r, 0, true);
            t.record(r, 10, false);
        }
        let chart = render(&t, 100, 20, 5);
        // Header + 5 rows; first row is rank 0, last is rank 99.
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[1].trim_start().starts_with('0'));
        assert!(lines[5].trim_start().starts_with("99"));
    }

    #[test]
    fn partial_cells_marked_plus() {
        let mut t = ActivityTrace::new(1);
        t.record(0, 0, true);
        t.record(0, 2, false); // 2 ns of a 100 ns run: 20% of one cell
        let chart = render(&t, 100, 10, 1);
        let row = chart.lines().nth(1).expect("data row");
        assert!(row.contains('+'), "tiny activity should render '+': {row}");
        assert!(!row.contains('#'));
    }
}
