//! Blame reports: the user-facing layer over critical-path
//! attribution — component totals, the per-rank waterfall, Coz-style
//! what-if virtual speedups, JSON serialization for the run report,
//! and the text rendering behind `dws why`.
//!
//! The what-if model is first-order, after Coz (Curtsinger &
//! Berger, "Coz: finding code that counts with causal profiling"):
//! scaling a component by x% is predicted to shorten the makespan by
//! x% of the nanoseconds that component holds *on the critical path*.
//! It deliberately ignores second-order effects (a shorter steal RTT
//! can change which path is critical), so predictions are a lower
//! bound on accuracy but directly comparable across configurations —
//! exactly what ranking victim-selection policies needs.

use crate::critpath::{rank_waterfall, Component, CriticalPath, Segment};
use crate::export::JsonValue;
use crate::span::SpanTrace;
use crate::trace::ActivityTrace;

/// Schema version of the `blame` report section.
pub const BLAME_SCHEMA_VERSION: u64 = 1;

/// How many critical-path segments the report keeps verbatim.
const TOP_K_SEGMENTS: usize = 10;

/// What-if scaling factors, in percent reduction.
const WHATIF_SCALES: [u64; 3] = [20, 50, 100];

/// One what-if row: "shrink these components by `scale_pct`%".
#[derive(Debug, Clone)]
pub struct WhatIf {
    /// Scenario label, e.g. `"steal rtt"`.
    pub scenario: String,
    /// Percent reduction applied.
    pub scale_pct: u64,
    /// Critical-path nanoseconds the scenario touches.
    pub affected_ns: u64,
    /// Predicted makespan reduction (first-order).
    pub predicted_delta_ns: u64,
    /// Predicted makespan after the reduction.
    pub predicted_makespan_ns: u64,
}

/// The full causal explanation of one run.
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// Measured makespan the attribution must sum to.
    pub makespan_ns: u64,
    /// Nanoseconds per component on the critical path, in
    /// [`Component::ALL`] order. Sums to `makespan_ns` exactly.
    pub components: Vec<(Component, u64)>,
    /// Segment count of the extracted path.
    pub n_segments: usize,
    /// The longest path segments, by duration descending.
    pub top_segments: Vec<Segment>,
    /// Per-rank decomposition (each row sums to `makespan_ns`).
    pub per_rank: Vec<(u32, [u64; 8])>,
    /// What-if virtual speedups.
    pub whatif: Vec<WhatIf>,
    /// Wall-clock shard accounting `(shard, busy_ns, wait_ns)` from a
    /// profiled `--threads` run — where *host* time went, alongside
    /// where *simulated* time went.
    pub shards: Option<Vec<(u32, u64, u64)>>,
}

impl BlameReport {
    /// Build the report from a run's spans and activity trace.
    pub fn from_run(spans: &SpanTrace, activity: &ActivityTrace, makespan_ns: u64) -> BlameReport {
        let cp = CriticalPath::extract(spans, activity, makespan_ns);
        let components = cp.totals();
        let whatif = whatif_table(&components, makespan_ns);
        let per_rank = rank_waterfall(spans, activity, makespan_ns)
            .into_iter()
            .map(|w| (w.rank, w.by_component))
            .collect();
        BlameReport {
            makespan_ns,
            components,
            n_segments: cp.segments().len(),
            top_segments: cp.top_segments(TOP_K_SEGMENTS),
            per_rank,
            whatif,
            shards: None,
        }
    }

    /// Attach shard wall-clock accounting (builder style).
    pub fn with_shards(mut self, shards: Vec<(u32, u64, u64)>) -> BlameReport {
        self.shards = Some(shards);
        self
    }

    /// Nanoseconds attributed to `c`.
    pub fn component_ns(&self, c: Component) -> u64 {
        self.components
            .iter()
            .find(|&&(x, _)| x == c)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The exactness invariant: components sum to the makespan.
    pub fn check(&self) -> Result<(), String> {
        let sum: u64 = self.components.iter().map(|&(_, v)| v).sum();
        if sum != self.makespan_ns {
            return Err(format!(
                "blame components sum to {sum} ≠ makespan {}",
                self.makespan_ns
            ));
        }
        for &(rank, by) in &self.per_rank {
            let total: u64 = by.iter().sum();
            if total != self.makespan_ns {
                return Err(format!(
                    "rank {rank} waterfall sums to {total} ≠ makespan {}",
                    self.makespan_ns
                ));
            }
        }
        Ok(())
    }

    /// The `blame` section of the JSON run report.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(&str, JsonValue)> = vec![
            ("schema", BLAME_SCHEMA_VERSION.into()),
            ("makespan_ns", self.makespan_ns.into()),
            (
                "components",
                JsonValue::Obj(
                    self.components
                        .iter()
                        .map(|&(c, v)| (c.key().to_string(), v.into()))
                        .collect(),
                ),
            ),
            (
                "critical_path",
                JsonValue::obj(vec![
                    ("n_segments", self.n_segments.into()),
                    (
                        "top_segments",
                        JsonValue::Arr(self.top_segments.iter().map(segment_json).collect()),
                    ),
                ]),
            ),
            (
                "per_rank",
                JsonValue::Arr(
                    self.per_rank
                        .iter()
                        .map(|&(rank, by)| {
                            let mut row: Vec<(String, JsonValue)> =
                                vec![("rank".to_string(), rank.into())];
                            for (c, v) in Component::ALL.iter().zip(by.iter()) {
                                row.push((c.key().to_string(), (*v).into()));
                            }
                            JsonValue::Obj(row)
                        })
                        .collect(),
                ),
            ),
            (
                "whatif",
                JsonValue::Arr(
                    self.whatif
                        .iter()
                        .map(|w| {
                            JsonValue::obj(vec![
                                ("scenario", w.scenario.as_str().into()),
                                ("scale_pct", w.scale_pct.into()),
                                ("affected_ns", w.affected_ns.into()),
                                ("predicted_delta_ns", w.predicted_delta_ns.into()),
                                ("predicted_makespan_ns", w.predicted_makespan_ns.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(shards) = &self.shards {
            pairs.push((
                "shards",
                JsonValue::Arr(
                    shards
                        .iter()
                        .map(|&(shard, busy_ns, wait_ns)| {
                            JsonValue::obj(vec![
                                ("shard", shard.into()),
                                ("busy_ns", busy_ns.into()),
                                ("wait_ns", wait_ns.into()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::obj(pairs)
    }
}

fn segment_json(s: &Segment) -> JsonValue {
    JsonValue::obj(vec![
        ("from_ns", s.from_ns.into()),
        ("to_ns", s.to_ns.into()),
        ("dur_ns", s.dur_ns().into()),
        ("rank", (s.rank as usize).into()),
        ("component", s.component.key().into()),
    ])
}

/// Build the what-if table from component totals: each latency-side
/// scenario at each scale, skipping scenarios with nothing on the
/// path.
fn whatif_table(components: &[(Component, u64)], makespan_ns: u64) -> Vec<WhatIf> {
    let total = |c: Component| {
        components
            .iter()
            .find(|&&(x, _)| x == c)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let groups: [(&str, Vec<Component>); 6] = [
        (
            "steal rtt",
            vec![Component::RequestTravel, Component::ReplyTravel],
        ),
        ("victim service", vec![Component::QueueAtVictim]),
        ("timeout+retry", vec![Component::TimeoutRetry]),
        ("quarantine", vec![Component::QuarantineReselect]),
        ("compute", vec![Component::Compute]),
        ("termination", vec![Component::TerminationTail]),
    ];
    let mut rows = Vec::new();
    for (name, comps) in groups {
        let affected: u64 = comps.iter().map(|&c| total(c)).sum();
        if affected == 0 {
            continue;
        }
        for scale in WHATIF_SCALES {
            let delta = affected * scale / 100;
            rows.push(WhatIf {
                scenario: name.to_string(),
                scale_pct: scale,
                affected_ns: affected,
                predicted_delta_ns: delta,
                predicted_makespan_ns: makespan_ns - delta,
            });
        }
    }
    rows
}

/// Verify the attribution-sum invariant on a serialized run report
/// (CI gate): the `blame.components` must sum to `blame.makespan_ns`.
pub fn verify_report(doc: &JsonValue) -> Result<(), String> {
    let blame = doc
        .get("blame")
        .ok_or("report has no blame section (run with --trace or --json on a traced run)")?;
    let makespan = blame
        .get("makespan_ns")
        .and_then(|v| v.as_u64())
        .ok_or("blame section has no makespan_ns")?;
    let comps = blame
        .get("components")
        .ok_or("blame section has no components")?;
    let JsonValue::Obj(pairs) = comps else {
        return Err("blame.components is not an object".into());
    };
    let sum: u64 = pairs.iter().filter_map(|(_, v)| v.as_u64()).sum();
    if sum != makespan {
        return Err(format!(
            "blame components sum to {sum} ≠ makespan {makespan}"
        ));
    }
    Ok(())
}

/// Format nanoseconds as a human duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Render the `dws why` text view from a full run report document
/// (the same JSON `--json` writes). Returns an error when the report
/// carries no blame section.
pub fn render_report(doc: &JsonValue) -> Result<String, String> {
    let blame = doc
        .get("blame")
        .ok_or("report has no blame section (re-run with --trace/--json so spans are collected)")?;
    let label = doc.get("label").and_then(|v| v.as_str()).unwrap_or("run");
    let makespan = blame
        .get("makespan_ns")
        .and_then(|v| v.as_u64())
        .ok_or("blame section has no makespan_ns")?;
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };

    push(&mut out, format!("{label}: makespan {}", fmt_ns(makespan)));
    push(&mut out, String::new());
    push(&mut out, "MAKESPAN ATTRIBUTION (critical path)".to_string());
    let comps = blame
        .get("components")
        .ok_or("blame section has no components")?;
    let mut sum = 0u64;
    for c in Component::ALL {
        let v = comps.get(c.key()).and_then(|v| v.as_u64()).unwrap_or(0);
        sum += v;
        if v > 0 {
            let bar_len = (pct(v, makespan) / 2.0).round() as usize;
            push(
                &mut out,
                format!(
                    "  {:<20} {:>12}  {:>5.1}%  {}",
                    c.label(),
                    fmt_ns(v),
                    pct(v, makespan),
                    "#".repeat(bar_len)
                ),
            );
        }
    }
    let exact = sum == makespan;
    push(
        &mut out,
        format!(
            "  {:<20} {:>12}  {}",
            "sum",
            fmt_ns(sum),
            if exact {
                "(exact)".to_string()
            } else {
                format!("MISMATCH vs makespan {}", fmt_ns(makespan))
            }
        ),
    );

    if let Some(top) = blame
        .get("critical_path")
        .and_then(|cp| cp.get("top_segments"))
        .and_then(|t| t.as_arr())
    {
        push(&mut out, String::new());
        push(&mut out, "TOP CRITICAL-PATH SEGMENTS".to_string());
        for (i, seg) in top.iter().enumerate() {
            let dur = seg.get("dur_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let rank = seg.get("rank").and_then(|v| v.as_u64()).unwrap_or(0);
            let comp = seg.get("component").and_then(|v| v.as_str()).unwrap_or("?");
            let from = seg.get("from_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let to = seg.get("to_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let label = Component::from_key(comp).map(|c| c.label()).unwrap_or(comp);
            push(
                &mut out,
                format!(
                    "  #{:<2} {:>12}  {:<20} rank {:<5} [{} – {}]",
                    i + 1,
                    fmt_ns(dur),
                    label,
                    rank,
                    fmt_ns(from),
                    fmt_ns(to)
                ),
            );
        }
    }

    if let Some(rows) = blame.get("per_rank").and_then(|v| v.as_arr()) {
        push(&mut out, String::new());
        push(
            &mut out,
            "PER-RANK WATERFALL (ranks with the most non-compute time)".to_string(),
        );
        push(
            &mut out,
            format!(
                "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "rank",
                "compute",
                "req-trav",
                "queue",
                "rep-trav",
                "retry",
                "quarant",
                "term",
                "other"
            ),
        );
        let idle_of = |row: &JsonValue| {
            let compute = row
                .get(Component::Compute.key())
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            makespan.saturating_sub(compute)
        };
        let mut sorted: Vec<&JsonValue> = rows.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(idle_of(r)));
        for row in sorted.iter().take(8) {
            let rank = row.get("rank").and_then(|v| v.as_u64()).unwrap_or(0);
            let col = |c: Component| fmt_ns(row.get(c.key()).and_then(|v| v.as_u64()).unwrap_or(0));
            push(
                &mut out,
                format!(
                    "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    rank,
                    col(Component::Compute),
                    col(Component::RequestTravel),
                    col(Component::QueueAtVictim),
                    col(Component::ReplyTravel),
                    col(Component::TimeoutRetry),
                    col(Component::QuarantineReselect),
                    col(Component::TerminationTail),
                    col(Component::IdleOther),
                ),
            );
        }
        if rows.len() > 8 {
            push(&mut out, format!("  … {} more ranks", rows.len() - 8));
        }
    }

    if let Some(rows) = blame.get("whatif").and_then(|v| v.as_arr()) {
        push(&mut out, String::new());
        push(
            &mut out,
            "WHAT-IF VIRTUAL SPEEDUPS (first-order, critical-path scaling)".to_string(),
        );
        for row in rows {
            let scenario = row.get("scenario").and_then(|v| v.as_str()).unwrap_or("?");
            let scale = row.get("scale_pct").and_then(|v| v.as_u64()).unwrap_or(0);
            let delta = row
                .get("predicted_delta_ns")
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            let predicted = row
                .get("predicted_makespan_ns")
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            push(
                &mut out,
                format!(
                    "  {:<16} −{:<3}%  → {:>12}  (−{}, −{:.1}%)",
                    scenario,
                    scale,
                    fmt_ns(predicted),
                    fmt_ns(delta),
                    pct(delta, makespan)
                ),
            );
        }
    }

    if let Some(shards) = blame.get("shards").and_then(|v| v.as_arr()) {
        push(&mut out, String::new());
        push(
            &mut out,
            "SHARD BARRIER WAIT (host wall clock, profiled run)".to_string(),
        );
        for row in shards {
            let shard = row.get("shard").and_then(|v| v.as_u64()).unwrap_or(0);
            let busy = row.get("busy_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let wait = row.get("wait_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            push(
                &mut out,
                format!(
                    "  shard {:<3} busy {:>12}  barrier-wait {:>12}  ({:.1}% waiting)",
                    shard,
                    fmt_ns(busy),
                    fmt_ns(wait),
                    pct(wait, busy + wait)
                ),
            );
        }
    }

    if !exact {
        return Err(format!(
            "attribution MISMATCH: components sum to {sum} ≠ makespan {makespan}\n{out}"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{trace_id, SpanKind, SpanRecord};

    fn tiny_run() -> (SpanTrace, ActivityTrace, u64) {
        let id = trace_id(1, 0);
        let r0 = vec![SpanRecord {
            at_ns: 300,
            rank: 0,
            trace: id,
            kind: SpanKind::StealServiced {
                thief: 1,
                queue_ns: 100,
                depart_delay_ns: 50,
            },
        }];
        let r1 = vec![
            SpanRecord {
                at_ns: 0,
                rank: 1,
                trace: id,
                kind: SpanKind::StealRequestSent { victim: 0 },
            },
            SpanRecord {
                at_ns: 500,
                rank: 1,
                trace: id,
                kind: SpanKind::StealOk {
                    victim: 0,
                    rtt_ns: 500,
                    nodes: 8,
                },
            },
        ];
        let spans = SpanTrace::from_per_rank(vec![r0, r1]);
        let mut act = ActivityTrace::new(2);
        act.record(0, 0, true);
        act.record(0, 600, false);
        act.record(1, 500, true);
        act.record(1, 800, false);
        (spans, act, 1000)
    }

    #[test]
    fn blame_is_exact_and_serializes() {
        let (spans, act, t) = tiny_run();
        let report = BlameReport::from_run(&spans, &act, t);
        report.check().unwrap();
        let json = report.to_json();
        let doc = JsonValue::obj(vec![("label", "test".into()), ("blame", json)]);
        verify_report(&doc).unwrap();
        let text = render_report(&doc).unwrap();
        assert!(text.contains("MAKESPAN ATTRIBUTION"));
        assert!(text.contains("WHAT-IF"));
        assert!(text.contains("(exact)"));
    }

    #[test]
    fn whatif_deltas_are_bounded_and_signed() {
        let (spans, act, t) = tiny_run();
        let report = BlameReport::from_run(&spans, &act, t);
        for w in &report.whatif {
            assert!(w.affected_ns <= t);
            assert!(w.predicted_delta_ns <= w.affected_ns);
            assert_eq!(w.predicted_makespan_ns, t - w.predicted_delta_ns);
            // A reduction never predicts a slowdown.
            assert!(w.predicted_makespan_ns <= t);
        }
        // The steal-rtt scenario exists (travel is on the path).
        assert!(report.whatif.iter().any(|w| w.scenario == "steal rtt"));
    }

    #[test]
    fn verify_report_rejects_doctored_sums() {
        let (spans, act, t) = tiny_run();
        let report = BlameReport::from_run(&spans, &act, t);
        let mut json = report.to_json();
        // Corrupt one component.
        if let JsonValue::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "components" {
                    if let JsonValue::Obj(comps) = v {
                        comps[0].1 = JsonValue::Num(1.0);
                    }
                }
            }
        }
        let doc = JsonValue::obj(vec![("blame", json)]);
        assert!(verify_report(&doc).is_err());
    }

    #[test]
    fn shards_section_rides_along() {
        let (spans, act, t) = tiny_run();
        let report =
            BlameReport::from_run(&spans, &act, t).with_shards(vec![(0, 100, 10), (1, 90, 20)]);
        let json = report.to_json();
        let shards = json.get("shards").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(shards.len(), 2);
        let doc = JsonValue::obj(vec![("blame", json.clone())]);
        let text = render_report(&doc).unwrap();
        assert!(text.contains("SHARD BARRIER WAIT"));
    }
}
