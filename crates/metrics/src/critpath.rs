//! Causal critical-path extraction: *why* is the makespan that number?
//!
//! The paper's figures rank victim-selection policies by makespan;
//! Gast, Khatiri and Trystram's latency analysis (arXiv:1805.00857)
//! explains the ranking by decomposing idle time into request travel,
//! response travel and failed-attempt overhead. This module performs
//! that decomposition *exactly* on a recorded run: it reconstructs the
//! happens-before chain that bounds the makespan from the
//! [`SpanTrace`] and the (skew-corrected) [`ActivityTrace`], and tiles
//! the interval `[0, makespan]` with contiguous segments, each
//! attributed to one [`Component`].
//!
//! ## The walk
//!
//! The extraction walks *backward* from the termination anchor (the
//! last busy→idle transition of any rank). At every step it asks what
//! the current rank was doing and what caused it:
//!
//! - busy? The segment is [`Component::Compute`]; the cause of the
//!   busy interval's start is either the root of the tree (rank 0 at
//!   t = 0) or a steal reply.
//! - busy because of a steal? Follow the attempt's trace ID backward
//!   through reply travel, the victim's service window (queue wait +
//!   reply-departure delay, from the [`SpanKind::StealServiced`]
//!   record), and — when the victim was idle and answered immediately
//!   — the request's own travel back to the thief. When the victim was
//!   *busy* at the request's arrival, the binding constraint is the
//!   victim's compute batch, so the walk hops to the victim's
//!   timeline and keeps going there.
//! - idle? The window is tiled by the rank's own failed steal
//!   attempts: in-flight waits and backoff gaps are
//!   [`Component::TimeoutRetry`], re-selection gaps right after an
//!   adaptive quarantine are [`Component::QuarantineReselect`], and
//!   anything the spans cannot explain (e.g. waiting for a lifeline
//!   push) is [`Component::IdleOther`] — an honest residue, zero on
//!   clean runs.
//!
//! Because every step emits segments that share boundaries with their
//! neighbors, the components sum to the measured makespan *by
//! construction* — a `u64` identity, not an approximation — which
//! [`CriticalPath::check`] verifies and a property test enforces
//! across seeds, fault plans and thread counts.
//!
//! The analyzer is read-only: it consumes traces a run already
//! produced and never feeds anything back into the simulation.

use crate::span::{SpanKind, SpanRecord, SpanTrace};
use crate::trace::ActivityTrace;
use std::collections::HashMap;

/// What a stretch of the critical path (or of one rank's timeline) was
/// spent on. Every nanosecond of the makespan lands in exactly one of
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A rank was expanding tree nodes (includes victim-side message
    /// servicing billed to its compute batches).
    Compute,
    /// A steal request was in flight thief → victim.
    RequestTravel,
    /// A request sat in the victim's pending queue and was serviced
    /// (queue wait until the victim's poll point, plus the victim-side
    /// CPU debt delaying the reply's departure).
    QueueAtVictim,
    /// The work-carrying reply was in flight victim → thief.
    ReplyTravel,
    /// Failed-attempt overhead: in-flight waits of attempts that came
    /// back empty or timed out, plus retry/backoff gaps between
    /// attempts.
    TimeoutRetry,
    /// Re-selection gap immediately after adaptive victim selection
    /// quarantined the chosen victim.
    QuarantineReselect,
    /// After the last rank ran out of work: termination-token
    /// circulation and the Done broadcast.
    TerminationTail,
    /// Idle time the spans cannot causally explain (lifeline dormancy,
    /// crash shadows). Zero on clean runs — kept as an honest residue
    /// rather than silently misattributed.
    IdleOther,
}

impl Component {
    /// Every component, in report order.
    pub const ALL: [Component; 8] = [
        Component::Compute,
        Component::RequestTravel,
        Component::QueueAtVictim,
        Component::ReplyTravel,
        Component::TimeoutRetry,
        Component::QuarantineReselect,
        Component::TerminationTail,
        Component::IdleOther,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Component::Compute => "compute",
            Component::RequestTravel => "request travel",
            Component::QueueAtVictim => "queue at victim",
            Component::ReplyTravel => "reply travel",
            Component::TimeoutRetry => "timeout+retry",
            Component::QuarantineReselect => "quarantine reselect",
            Component::TerminationTail => "termination tail",
            Component::IdleOther => "idle (other)",
        }
    }

    /// Stable machine-readable key (JSON field name).
    pub fn key(self) -> &'static str {
        match self {
            Component::Compute => "compute_ns",
            Component::RequestTravel => "request_travel_ns",
            Component::QueueAtVictim => "queue_at_victim_ns",
            Component::ReplyTravel => "reply_travel_ns",
            Component::TimeoutRetry => "timeout_retry_ns",
            Component::QuarantineReselect => "quarantine_reselect_ns",
            Component::TerminationTail => "termination_tail_ns",
            Component::IdleOther => "idle_other_ns",
        }
    }

    /// Parse a [`key`](Self::key) back into the component.
    pub fn from_key(key: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.key() == key)
    }
}

/// One attributed stretch of the critical path: `[from_ns, to_ns)` on
/// `rank`'s timeline (travel segments are billed to the rank that
/// waits on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment start (global nanoseconds).
    pub from_ns: u64,
    /// Segment end (global nanoseconds).
    pub to_ns: u64,
    /// Rank whose timeline the segment sits on.
    pub rank: u32,
    /// What the time was spent on.
    pub component: Component,
}

impl Segment {
    /// Segment length in nanoseconds.
    #[inline]
    pub fn dur_ns(&self) -> u64 {
        self.to_ns - self.from_ns
    }
}

/// The extracted critical path: contiguous segments tiling
/// `[0, makespan]` exactly.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    segments: Vec<Segment>,
    makespan_ns: u64,
}

impl CriticalPath {
    /// Extract the critical path of a run from its spans and
    /// (skew-corrected) activity trace.
    pub fn extract(spans: &SpanTrace, activity: &ActivityTrace, makespan_ns: u64) -> CriticalPath {
        let analyzer = Analyzer::new(spans, activity, makespan_ns);
        let segments = analyzer.critical_path();
        CriticalPath {
            segments,
            makespan_ns,
        }
    }

    /// The segments, in forward time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The makespan the path was extracted against.
    pub fn makespan_ns(&self) -> u64 {
        self.makespan_ns
    }

    /// Total path length — equal to the makespan when the tiling is
    /// exact (see [`check`](Self::check)).
    pub fn len_ns(&self) -> u64 {
        self.segments.iter().map(Segment::dur_ns).sum()
    }

    /// Total nanoseconds attributed to each component, in
    /// [`Component::ALL`] order. The values sum to the makespan.
    pub fn totals(&self) -> Vec<(Component, u64)> {
        let mut by: HashMap<Component, u64> = HashMap::new();
        for s in &self.segments {
            *by.entry(s.component).or_insert(0) += s.dur_ns();
        }
        Component::ALL
            .into_iter()
            .map(|c| (c, by.get(&c).copied().unwrap_or(0)))
            .collect()
    }

    /// Verify the exactness invariant: segments are contiguous,
    /// non-empty, start at 0, end at the makespan, and therefore sum
    /// to it to the nanosecond.
    pub fn check(&self) -> Result<(), String> {
        if self.makespan_ns == 0 {
            return Ok(());
        }
        let Some(first) = self.segments.first() else {
            return Err("empty critical path for a nonzero makespan".into());
        };
        if first.from_ns != 0 {
            return Err(format!("critical path starts at {} ≠ 0", first.from_ns));
        }
        let last = self.segments.last().expect("nonempty");
        if last.to_ns != self.makespan_ns {
            return Err(format!(
                "critical path ends at {} ≠ makespan {}",
                last.to_ns, self.makespan_ns
            ));
        }
        for w in self.segments.windows(2) {
            if w[0].to_ns != w[1].from_ns {
                return Err(format!(
                    "gap on the critical path: segment ends at {} but next starts at {}",
                    w[0].to_ns, w[1].from_ns
                ));
            }
        }
        for s in &self.segments {
            if s.from_ns >= s.to_ns {
                return Err(format!(
                    "empty or negative segment [{}, {}]",
                    s.from_ns, s.to_ns
                ));
            }
        }
        let len = self.len_ns();
        if len != self.makespan_ns {
            return Err(format!(
                "critical path length {len} ≠ makespan {}",
                self.makespan_ns
            ));
        }
        Ok(())
    }

    /// The `k` longest segments, by duration descending (ties broken
    /// by earlier start).
    pub fn top_segments(&self, k: usize) -> Vec<Segment> {
        let mut segs = self.segments.clone();
        segs.sort_by_key(|s| (std::cmp::Reverse(s.dur_ns()), s.from_ns));
        segs.truncate(k);
        segs
    }
}

/// Per-rank makespan decomposition (the `dws why` waterfall): each
/// rank's `[0, makespan]` tiled by the same component taxonomy as the
/// critical path. Per rank, the fields sum to the makespan.
#[derive(Debug, Clone)]
pub struct RankWaterfall {
    /// The rank.
    pub rank: u32,
    /// Nanoseconds per component, in [`Component::ALL`] order.
    pub by_component: [u64; 8],
}

impl RankWaterfall {
    /// Nanoseconds this rank spent on `c`.
    pub fn get(&self, c: Component) -> u64 {
        let idx = Component::ALL.iter().position(|&x| x == c).expect("in ALL");
        self.by_component[idx]
    }

    /// Sum across components (equals the makespan).
    pub fn total(&self) -> u64 {
        self.by_component.iter().sum()
    }
}

/// Decompose every rank's timeline with the same attribution rules the
/// critical path uses. Returns one row per rank; each row's components
/// sum to `makespan_ns` exactly.
pub fn rank_waterfall(
    spans: &SpanTrace,
    activity: &ActivityTrace,
    makespan_ns: u64,
) -> Vec<RankWaterfall> {
    let analyzer = Analyzer::new(spans, activity, makespan_ns);
    analyzer.waterfall()
}

/// Victim-side steal-chain facts for one trace ID, stitched from both
/// ranks' spans.
struct Chain {
    /// When (and by whom) the request was sent.
    req_at: Option<u64>,
    /// Victim-side service records: `(at_ns, victim, queue_ns,
    /// depart_delay_ns)`. Usually one; duplicated deliveries can yield
    /// more.
    serviced: Vec<(u64, u32, u64, u64)>,
}

/// Shared preprocessing for path extraction and the per-rank
/// waterfall.
struct Analyzer {
    makespan_ns: u64,
    n_ranks: usize,
    /// Per-rank busy intervals, ascending, zero-length dropped; open
    /// intervals closed at the makespan.
    busy: Vec<Vec<(u64, u64)>>,
    /// Per-rank span records relevant to idle classification and chain
    /// lookup, ascending in time.
    rank_spans: Vec<Vec<SpanRecord>>,
    /// Trace ID → stitched steal chain.
    chains: HashMap<u64, Chain>,
}

impl Analyzer {
    fn new(spans: &SpanTrace, activity: &ActivityTrace, makespan_ns: u64) -> Analyzer {
        let n_ranks = (activity.n_ranks() as usize).max(spans.n_ranks()).max(1);

        // Busy intervals from the sorted activity trace.
        let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_ranks];
        let mut since: Vec<Option<u64>> = vec![None; n_ranks];
        for t in activity.sorted().iter() {
            let r = t.rank as usize;
            match (t.active, since[r]) {
                (true, None) => since[r] = Some(t.at_ns),
                (false, Some(s)) => {
                    if t.at_ns > s {
                        busy[r].push((s, t.at_ns.min(makespan_ns)));
                    }
                    since[r] = None;
                }
                // Tolerate duplicates the same way busy accounting does.
                _ => {}
            }
        }
        for (r, s) in since.iter().enumerate() {
            if let Some(s) = s {
                if makespan_ns > *s {
                    busy[r].push((*s, makespan_ns));
                }
            }
        }

        // Per-rank spans and cross-rank chains.
        let mut rank_spans: Vec<Vec<SpanRecord>> = vec![Vec::new(); n_ranks];
        let mut chains: HashMap<u64, Chain> = HashMap::new();
        for rec in spans.records() {
            match rec.kind {
                SpanKind::StealRequestSent { .. } => {
                    let c = chains.entry(rec.trace).or_insert(Chain {
                        req_at: None,
                        serviced: Vec::new(),
                    });
                    // A retransmitted seq reuses the ID; keep the first
                    // send (that is when the thief started waiting).
                    if c.req_at.is_none() {
                        c.req_at = Some(rec.at_ns);
                    }
                }
                SpanKind::StealServiced {
                    queue_ns,
                    depart_delay_ns,
                    ..
                } => {
                    chains
                        .entry(rec.trace)
                        .or_insert(Chain {
                            req_at: None,
                            serviced: Vec::new(),
                        })
                        .serviced
                        .push((rec.at_ns, rec.rank as u32, queue_ns, depart_delay_ns));
                }
                _ => {}
            }
            if rec.rank < n_ranks
                && matches!(
                    rec.kind,
                    SpanKind::StealRequestSent { .. }
                        | SpanKind::StealOk { .. }
                        | SpanKind::StealEmpty { .. }
                        | SpanKind::StealTimeout { .. }
                        | SpanKind::StealAbandoned { .. }
                        | SpanKind::Quarantined { .. }
                )
            {
                rank_spans[rec.rank].push(*rec);
            }
        }

        Analyzer {
            makespan_ns,
            n_ranks,
            busy,
            rank_spans,
            chains,
        }
    }

    /// The busy interval of `rank` with `start < t <= end`, if any.
    fn busy_interval_at(&self, rank: usize, t: u64) -> Option<(u64, u64)> {
        let iv = &self.busy[rank];
        // First interval with end >= t.
        let i = iv.partition_point(|&(_, e)| e < t);
        iv.get(i).copied().filter(|&(s, _)| s < t)
    }

    /// End of the last busy interval of `rank` ending at or before `t`
    /// (0 when the rank was never busy before `t`).
    fn prev_busy_end(&self, rank: usize, t: u64) -> u64 {
        let iv = &self.busy[rank];
        let i = iv.partition_point(|&(_, e)| e <= t);
        if i == 0 {
            0
        } else {
            iv[i - 1].1
        }
    }

    /// The latest `StealOk` on `rank` in `(lo, hi]`, if any.
    fn last_ok_in(&self, rank: usize, lo: u64, hi: u64) -> Option<&SpanRecord> {
        self.rank_spans[rank]
            .iter()
            .rev()
            .find(|r| r.at_ns > lo && r.at_ns <= hi && matches!(r.kind, SpanKind::StealOk { .. }))
    }

    /// Tile the idle window `[lo, hi]` of `rank` by its own steal
    /// attempts, appending forward-ordered segments to `out`.
    fn classify_idle(&self, rank: usize, lo: u64, hi: u64, out: &mut Vec<Segment>) {
        if hi <= lo {
            return;
        }
        let mut prev = lo;
        let mut last_kind: Option<&SpanKind> = None;
        for rec in &self.rank_spans[rank] {
            if rec.at_ns <= lo {
                continue;
            }
            if rec.at_ns > hi {
                break;
            }
            let m = rec.at_ns;
            if m > prev {
                let component = match rec.kind {
                    // An attempt resolved at m: the interval was an
                    // in-flight wait. Failed attempts are the
                    // timeout+retry overhead of Gast et al.; a StealOk
                    // inside an idle window (no matching activity
                    // transition — e.g. a reply whose work went
                    // straight into a lifeline push) is still steal
                    // wait, kept under the same heading.
                    SpanKind::StealOk { .. }
                    | SpanKind::StealEmpty { .. }
                    | SpanKind::StealTimeout { .. }
                    | SpanKind::StealAbandoned { .. } => Component::TimeoutRetry,
                    // Gap before (re)sending a request: the
                    // re-selection + retry delay. Right after an
                    // adaptive quarantine it is the quarantine's
                    // re-selection cost.
                    SpanKind::StealRequestSent { .. } => {
                        if matches!(last_kind, Some(SpanKind::Quarantined { .. })) {
                            Component::QuarantineReselect
                        } else {
                            Component::TimeoutRetry
                        }
                    }
                    SpanKind::Quarantined { .. } => Component::TimeoutRetry,
                    _ => Component::IdleOther,
                };
                out.push(Segment {
                    from_ns: prev,
                    to_ns: m,
                    rank: rank as u32,
                    component,
                });
                prev = m;
            }
            last_kind = Some(&rec.kind);
        }
        if hi > prev {
            // Trailing stretch up to the window's end (a busy start,
            // the departure of the winning request, or the makespan).
            let component = match last_kind {
                Some(SpanKind::Quarantined { .. }) => Component::QuarantineReselect,
                Some(
                    SpanKind::StealRequestSent { .. }
                    | SpanKind::StealOk { .. }
                    | SpanKind::StealEmpty { .. }
                    | SpanKind::StealTimeout { .. }
                    | SpanKind::StealAbandoned { .. },
                ) => Component::TimeoutRetry,
                _ => Component::IdleOther,
            };
            out.push(Segment {
                from_ns: prev,
                to_ns: hi,
                rank: rank as u32,
                component,
            });
        }
    }

    /// Resolve the steal chain explaining a busy start of `rank` at
    /// `s` (work arrived), given the idle window floor `lo`. Returns
    /// the backward-ordered chain segments and where the walk
    /// continues, or `None` when the chain cannot be stitched.
    ///
    /// Chain (forward): … → request departs thief at `req` →
    /// arrives at victim (`arrival = serviced_at - queue_ns`) → waits
    /// for the victim's poll + service (`depart = serviced_at +
    /// depart_delay_ns`) → reply travels back, arriving at `s`.
    /// `hop_to_victim` enables the cross-rank continuation the
    /// critical path wants; the per-rank waterfall disables it and
    /// keeps the whole decomposition on the thief's timeline.
    fn resolve_chain(
        &self,
        rank: usize,
        lo: u64,
        s: u64,
        hop_to_victim: bool,
        out: &mut Vec<Segment>,
    ) -> Option<(usize, u64)> {
        let ok = self.last_ok_in(rank, lo, s)?;
        let chain = self.chains.get(&ok.trace)?;
        let req = chain.req_at?;
        // With duplicated deliveries the victim can service one
        // request twice; the reply that won is the latest one at or
        // before the thief's wake-up.
        let &(svc_at, victim, queue_ns, depart_delay_ns) = chain
            .serviced
            .iter()
            .filter(|&&(at, ..)| at <= s)
            .max_by_key(|&&(at, ..)| at)
            .or_else(|| chain.serviced.first())?;
        let victim = victim as usize;
        if victim >= self.n_ranks {
            return None;
        }
        // Clamp the chain into [lo.max? , s] and enforce ordering so
        // clock-skewed or duplicated records can never produce
        // negative segments.
        let req = req.clamp(lo, s);
        let arrival = svc_at.saturating_sub(queue_ns).clamp(req, s);
        let depart = (svc_at.saturating_add(depart_delay_ns)).clamp(arrival, s);
        if depart < s {
            out.push(Segment {
                from_ns: depart,
                to_ns: s,
                rank: rank as u32,
                component: Component::ReplyTravel,
            });
        }
        if arrival < depart {
            out.push(Segment {
                from_ns: arrival,
                to_ns: depart,
                rank: victim as u32,
                component: Component::QueueAtVictim,
            });
        }
        // If the request queued because the victim was busy, the
        // binding constraint at `arrival` is the victim's compute
        // batch: hop to the victim's timeline. Otherwise the request's
        // own travel is what ends at `arrival`.
        if hop_to_victim && queue_ns > 0 && arrival > 0 && arrival < s {
            if let Some((vs, _)) = self.busy_interval_at(victim, arrival) {
                if vs < arrival {
                    return Some((victim, arrival));
                }
            }
        }
        if req < arrival {
            out.push(Segment {
                from_ns: req,
                to_ns: arrival,
                rank: rank as u32,
                component: Component::RequestTravel,
            });
        }
        // Preceding failed attempts (if any) tile [lo, req].
        self.classify_idle_rev(rank, lo, req, out);
        Some((rank, lo))
    }

    /// [`classify_idle`], but appending in backward order (the walk
    /// builds the path back-to-front).
    fn classify_idle_rev(&self, rank: usize, lo: u64, hi: u64, out: &mut Vec<Segment>) {
        let mut fwd = Vec::new();
        self.classify_idle(rank, lo, hi, &mut fwd);
        out.extend(fwd.into_iter().rev());
    }

    /// Extract the critical path: backward walk from the termination
    /// anchor, returning forward-ordered segments tiling
    /// `[0, makespan]`.
    fn critical_path(&self) -> Vec<Segment> {
        let t_end = self.makespan_ns;
        let mut rev: Vec<Segment> = Vec::new();
        if t_end == 0 {
            return rev;
        }

        // Termination anchor: the last busy→idle transition anywhere.
        let (w_rank, w) = (0..self.n_ranks)
            .filter_map(|r| self.busy[r].last().map(|&(_, e)| (r, e)))
            .max_by_key(|&(r, e)| (e, r))
            .unwrap_or((0, 0));
        if w < t_end {
            rev.push(Segment {
                from_ns: w,
                to_ns: t_end,
                rank: w_rank as u32,
                component: Component::TerminationTail,
            });
        }

        let mut cur_rank = w_rank;
        let mut cur_t = w;
        // Strict-progress backstop: the walk must shrink `cur_t` every
        // iteration; any stall (malformed traces) downgrades the rest
        // of the timeline to IdleOther instead of spinning.
        let budget = 4
            * (self.rank_spans.iter().map(Vec::len).sum::<usize>()
                + self.busy.iter().map(Vec::len).sum::<usize>())
            + 64;
        let mut steps = 0usize;
        while cur_t > 0 {
            steps += 1;
            let stalled = steps > budget;
            let next = if stalled {
                None
            } else if let Some((s, _)) = self.busy_interval_at(cur_rank, cur_t) {
                // Busy up to cur_t: compute, then explain the busy
                // start.
                rev.push(Segment {
                    from_ns: s,
                    to_ns: cur_t,
                    rank: cur_rank as u32,
                    component: Component::Compute,
                });
                if s == 0 {
                    break;
                }
                let lo = self.prev_busy_end(cur_rank, s);
                debug_assert!(lo <= s);
                let lo = lo.min(s);
                match self.resolve_chain(cur_rank, lo, s, true, &mut rev) {
                    Some((r, t)) if t < s => Some((r, t)),
                    Some(_) | None => {
                        // No resolvable chain (root work, lifeline
                        // push, crash shadow): classify the idle
                        // window from the rank's own attempts.
                        // resolve_chain pushes nothing before
                        // returning a non-progressing continuation,
                        // so the window is still whole here.
                        self.classify_idle_rev(cur_rank, lo, s, &mut rev);
                        Some((cur_rank, lo))
                    }
                }
            } else {
                // Idle at cur_t: tile down to the previous busy end.
                let lo = self.prev_busy_end(cur_rank, cur_t);
                self.classify_idle_rev(cur_rank, lo, cur_t, &mut rev);
                Some((cur_rank, lo))
            };
            match next {
                Some((r, t)) if t < cur_t => {
                    cur_rank = r;
                    cur_t = t;
                }
                Some((_, 0)) => break,
                _ => {
                    // Stalled: attribute the unexplained remainder
                    // honestly and stop.
                    if cur_t > 0 {
                        rev.push(Segment {
                            from_ns: 0,
                            to_ns: cur_t,
                            rank: cur_rank as u32,
                            component: Component::IdleOther,
                        });
                    }
                    break;
                }
            }
        }

        rev.reverse();
        rev
    }

    /// Per-rank waterfall: tile every rank's `[0, makespan]`.
    fn waterfall(&self) -> Vec<RankWaterfall> {
        let t_end = self.makespan_ns;
        (0..self.n_ranks)
            .map(|r| {
                let mut segs: Vec<Segment> = Vec::new();
                let mut cursor = 0u64;
                for &(s, e) in &self.busy[r] {
                    if s > cursor {
                        // Idle window [cursor, s] ending at a busy
                        // start: attribute via the steal chain when it
                        // resolves, else via the rank's own attempts.
                        let mut chain_rev: Vec<Segment> = Vec::new();
                        if self
                            .resolve_chain(r, cursor, s, false, &mut chain_rev)
                            .is_some()
                        {
                            segs.extend(chain_rev.into_iter().rev());
                        } else {
                            self.classify_idle(r, cursor, s, &mut segs);
                        }
                    }
                    segs.push(Segment {
                        from_ns: s,
                        to_ns: e,
                        rank: r as u32,
                        component: Component::Compute,
                    });
                    cursor = e;
                }
                if t_end > cursor {
                    // Trailing idle: after this rank's last work, the
                    // run was winding down (or the rank kept hunting).
                    let has_attempts = self.rank_spans[r].iter().any(|rec| rec.at_ns > cursor);
                    if has_attempts {
                        self.classify_idle(r, cursor, t_end, &mut segs);
                    } else {
                        segs.push(Segment {
                            from_ns: cursor,
                            to_ns: t_end,
                            rank: r as u32,
                            component: Component::TerminationTail,
                        });
                    }
                }
                let mut by_component = [0u64; 8];
                for seg in &segs {
                    let idx = Component::ALL
                        .iter()
                        .position(|&c| c == seg.component)
                        .expect("component in ALL");
                    by_component[idx] += seg.dur_ns();
                }
                RankWaterfall {
                    rank: r as u32,
                    by_component,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::trace_id;

    /// Hand-built two-rank run: rank 0 computes [0, 1000]; rank 1
    /// fails one steal, then succeeds and computes [900, 1400]; both
    /// idle until termination at 1500.
    fn two_rank_run() -> (SpanTrace, ActivityTrace, u64) {
        let id0 = trace_id(1, 0);
        let id1 = trace_id(1, 1);
        let r1 = vec![
            SpanRecord {
                at_ns: 0,
                rank: 1,
                trace: id0,
                kind: SpanKind::StealRequestSent { victim: 0 },
            },
            SpanRecord {
                at_ns: 200,
                rank: 1,
                trace: id0,
                kind: SpanKind::StealEmpty {
                    victim: 0,
                    rtt_ns: 200,
                },
            },
            SpanRecord {
                at_ns: 300,
                rank: 1,
                trace: id1,
                kind: SpanKind::StealRequestSent { victim: 0 },
            },
            SpanRecord {
                at_ns: 900,
                rank: 1,
                trace: id1,
                kind: SpanKind::StealOk {
                    victim: 0,
                    rtt_ns: 600,
                    nodes: 40,
                },
            },
        ];
        let r0 = vec![SpanRecord {
            at_ns: 700,
            rank: 0,
            trace: id1,
            // Request arrived at 400, waited 300 for the poll point,
            // reply departed 100 later at 800.
            kind: SpanKind::StealServiced {
                thief: 1,
                queue_ns: 300,
                depart_delay_ns: 100,
            },
        }];
        let spans = SpanTrace::from_per_rank(vec![r0, r1]);
        let mut act = ActivityTrace::new(2);
        act.record(0, 0, true);
        act.record(0, 1000, false);
        act.record(1, 900, true);
        act.record(1, 1400, false);
        (spans, act, 1500)
    }

    #[test]
    fn path_tiles_makespan_exactly() {
        let (spans, act, t) = two_rank_run();
        let cp = CriticalPath::extract(&spans, &act, t);
        cp.check().unwrap();
        assert_eq!(cp.len_ns(), t);
        let total: u64 = cp.totals().iter().map(|&(_, v)| v).sum();
        assert_eq!(total, t);
    }

    #[test]
    fn path_walks_through_the_victim() {
        let (spans, act, t) = two_rank_run();
        let cp = CriticalPath::extract(&spans, &act, t);
        // Expected tiling (forward): compute on rank 0 [0, 400],
        // queue at victim [400, 800], reply travel [800, 900],
        // compute on rank 1 [900, 1400], termination tail [1400, 1500].
        let comps: Vec<(Component, u64)> = cp
            .segments()
            .iter()
            .map(|s| (s.component, s.dur_ns()))
            .collect();
        assert_eq!(
            comps,
            vec![
                (Component::Compute, 400),
                (Component::QueueAtVictim, 400),
                (Component::ReplyTravel, 100),
                (Component::Compute, 500),
                (Component::TerminationTail, 100),
            ]
        );
        // The queue segment sits on the victim's timeline.
        assert_eq!(cp.segments()[1].rank, 0);
    }

    #[test]
    fn idle_victim_chain_uses_request_travel() {
        // Same shape, but the victim answered from idle: queue_ns = 0
        // and the victim is idle at arrival, so the chain runs back
        // through the request's travel and the thief's earlier failed
        // attempt.
        let id = trace_id(1, 0);
        let r0 = vec![SpanRecord {
            at_ns: 400,
            rank: 0,
            trace: id,
            kind: SpanKind::StealServiced {
                thief: 1,
                queue_ns: 0,
                depart_delay_ns: 100,
            },
        }];
        let r1 = vec![
            SpanRecord {
                at_ns: 100,
                rank: 1,
                trace: id,
                kind: SpanKind::StealRequestSent { victim: 0 },
            },
            SpanRecord {
                at_ns: 700,
                rank: 1,
                trace: id,
                kind: SpanKind::StealOk {
                    victim: 0,
                    rtt_ns: 600,
                    nodes: 4,
                },
            },
        ];
        let spans = SpanTrace::from_per_rank(vec![r0, r1]);
        let mut act = ActivityTrace::new(2);
        // Rank 0 idle throughout (it had stashed work to give away but
        // the trace says idle — fine for the test); rank 1 computes
        // from the reply to the end.
        act.record(1, 700, true);
        act.record(1, 1000, false);
        let cp = CriticalPath::extract(&spans, &act, 1000);
        cp.check().unwrap();
        let comps: Vec<(Component, u64)> = cp
            .segments()
            .iter()
            .map(|s| (s.component, s.dur_ns()))
            .collect();
        assert_eq!(
            comps,
            vec![
                (Component::TimeoutRetry, 100),  // [0,100] pre-send
                (Component::RequestTravel, 300), // [100,400]
                (Component::QueueAtVictim, 100), // [400,500] service
                (Component::ReplyTravel, 200),   // [500,700]
                (Component::Compute, 300),       // [700,1000]
            ]
        );
    }

    #[test]
    fn quarantine_gap_is_attributed() {
        let id0 = trace_id(0, 0);
        let r0 = vec![
            SpanRecord {
                at_ns: 100,
                rank: 0,
                trace: id0,
                kind: SpanKind::StealRequestSent { victim: 1 },
            },
            SpanRecord {
                at_ns: 400,
                rank: 0,
                trace: id0,
                kind: SpanKind::StealTimeout {
                    victim: 1,
                    backoff_doublings: 1,
                },
            },
            SpanRecord {
                at_ns: 400,
                rank: 0,
                trace: id0,
                kind: SpanKind::Quarantined { victim: 1 },
            },
            SpanRecord {
                at_ns: 600,
                rank: 0,
                trace: trace_id(0, 1),
                kind: SpanKind::StealRequestSent { victim: 2 },
            },
        ];
        let spans = SpanTrace::from_per_rank(vec![r0]);
        let mut segs = Vec::new();
        let analyzer = Analyzer::new(&spans, &ActivityTrace::new(1), 800);
        analyzer.classify_idle(0, 0, 800, &mut segs);
        let comps: Vec<(Component, u64)> = segs
            .iter()
            .map(|s| (s.component, s.to_ns - s.from_ns))
            .collect();
        assert_eq!(
            comps,
            vec![
                (Component::TimeoutRetry, 100),       // [0,100] pre-send
                (Component::TimeoutRetry, 300),       // [100,400] in flight
                (Component::QuarantineReselect, 200), // [400,600] re-select
                (Component::TimeoutRetry, 200),       // [600,800] in flight
            ]
        );
        let total: u64 = comps.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn waterfall_rows_sum_to_makespan() {
        let (spans, act, t) = two_rank_run();
        let rows = rank_waterfall(&spans, &act, t);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.total(),
                t,
                "rank {} waterfall must tile [0, T]",
                row.rank
            );
        }
        // Rank 0 computed 1000 of the 1500.
        assert_eq!(rows[0].get(Component::Compute), 1000);
        assert_eq!(rows[1].get(Component::Compute), 500);
    }

    #[test]
    fn empty_run_yields_empty_path() {
        let cp = CriticalPath::extract(&SpanTrace::default(), &ActivityTrace::new(1), 0);
        cp.check().unwrap();
        assert!(cp.segments().is_empty());
    }

    #[test]
    fn component_keys_roundtrip() {
        for c in Component::ALL {
            assert_eq!(Component::from_key(c.key()), Some(c));
        }
        assert_eq!(Component::from_key("nope"), None);
    }
}
