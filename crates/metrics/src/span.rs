//! Causal spans for the steal protocol.
//!
//! Every steal attempt gets a **trace ID** minted by the thief and
//! reconstructible by the victim from the wire fields it already
//! receives, so a single attempt's request → service → reply →
//! (timeout → retransmit → ack) chain can be stitched back together
//! across ranks without widening any message. Token-ring and
//! termination events ride the same record stream so a post-mortem can
//! interleave protocol recovery with steal traffic.
//!
//! The paper can only be reproduced if observation is free: recording
//! happens through [`Tracer`], a zero-cost-when-disabled hook — a
//! disabled tracer is a `None` and `record` is one branch; no timers,
//! messages, or RNG draws depend on it, so the simulated event
//! schedule is bit-for-bit identical with tracing on or off.
//!
//! Spans are emitted at exactly the sites where the scheduler bumps
//! its [`StealStats`](crate::StealStats) counters, which is what makes
//! [`SpanTrace::reconcile`] an exact (not statistical) cross-check.

use crate::histogram::LatencyHistograms;

/// Width of the per-thief sequence-number field in a trace ID.
const SEQ_BITS: u32 = 40;

/// Mint the trace ID for a steal attempt: the thief's rank in the high
/// bits, its per-thief request sequence number in the low 40.
///
/// The victim computes the same ID from the `(from, seq)` fields on the
/// wire, so both sides of an attempt tag their spans identically with
/// no protocol change.
#[inline]
pub fn trace_id(thief: usize, seq: u64) -> u64 {
    ((thief as u64) << SEQ_BITS) | (seq & ((1u64 << SEQ_BITS) - 1))
}

/// What happened at one point of a steal attempt (or of the
/// termination machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Thief sent a steal request to `victim`.
    StealRequestSent {
        /// Rank the request was addressed to.
        victim: usize,
    },
    /// Victim received (and serviced) a steal request from `thief`.
    StealRequestRecv {
        /// Rank that asked for work.
        thief: usize,
    },
    /// Victim sent its reply carrying `nodes` tree nodes (0 = refusal).
    StealReplySent {
        /// Rank the reply goes back to.
        thief: usize,
        /// Tree nodes in the reply; 0 for an empty-handed refusal.
        nodes: u64,
    },
    /// Victim-side service accounting for one request: how long the
    /// request sat in the victim's pending queue before being handled
    /// (`queue_ns`, zero when the victim was idle and handled it
    /// immediately) and how much victim-side CPU debt delays the
    /// reply's departure past the handling instant (`depart_delay_ns`).
    /// Recorded at the same instant as the matching
    /// [`StealReplySent`](Self::StealReplySent), so the reply actually
    /// leaves at `at_ns + depart_delay_ns` — the missing ingredient for
    /// attributing queue-at-victim time on the critical path.
    StealServiced {
        /// Rank that asked for work.
        thief: usize,
        /// Arrival → handling wait in the victim's pending queue.
        queue_ns: u64,
        /// Handling instant → reply departure (victim CPU debt).
        depart_delay_ns: u64,
    },
    /// Thief's request was answered with work after `rtt_ns`.
    StealOk {
        /// Rank that supplied the work.
        victim: usize,
        /// Request-to-reply round trip in nanoseconds.
        rtt_ns: u64,
        /// Tree nodes received.
        nodes: u64,
    },
    /// Thief's request was answered empty-handed after `rtt_ns`.
    StealEmpty {
        /// Rank that refused.
        victim: usize,
        /// Request-to-reply round trip in nanoseconds.
        rtt_ns: u64,
    },
    /// Thief's request timed out; this was consecutive timeout number
    /// `backoff_doublings` (1 = first), so the next retry waits
    /// `2^backoff_doublings`× longer.
    StealTimeout {
        /// Rank the timed-out request had been sent to.
        victim: usize,
        /// Consecutive-timeout depth at this event.
        backoff_doublings: u64,
    },
    /// Thief reached termination with this request still in flight;
    /// the attempt is charged as failed without a reply ever arriving.
    StealAbandoned {
        /// Rank the abandoned request had been sent to.
        victim: usize,
    },
    /// Victim received the ack for work transfer `xfer` from `thief`.
    TransferAcked {
        /// Rank that acknowledged.
        thief: usize,
        /// Transfer ID being acknowledged.
        xfer: u64,
    },
    /// A reliable send (work transfer or token hop) was retransmitted.
    Retransmit {
        /// Destination rank of the retransmission.
        to: usize,
        /// Transfer ID (work) or token generation (ring) being retried.
        xfer: u64,
        /// Retry attempt number (1 = first retransmission).
        attempt: u64,
    },
    /// This rank forwarded the termination token to `to`.
    TokenHop {
        /// Next rank on the ring.
        to: usize,
        /// Token generation number.
        generation: u64,
    },
    /// Rank 0's watchdog regenerated a lost termination token.
    TokenRegenerated {
        /// Generation number of the regenerated token.
        generation: u64,
    },
    /// Adaptive victim selection quarantined `victim` on this rank
    /// after repeated timeouts: until the probation expires, every
    /// selection round must re-draw around it.
    Quarantined {
        /// Rank placed under probation.
        victim: usize,
    },
    /// A work-discovery session closed after `dur_ns`.
    SessionEnd {
        /// Session duration in nanoseconds.
        dur_ns: u64,
    },
    /// This rank learned the computation is over.
    Done,
}

/// One timestamped span record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global simulation time of the event, in nanoseconds.
    pub at_ns: u64,
    /// Rank that recorded the event.
    pub rank: usize,
    /// Trace ID linking both sides of a steal attempt; 0 for events
    /// outside any attempt (sessions, token ring, Done).
    pub trace: u64,
    /// What happened.
    pub kind: SpanKind,
}

/// Per-rank span buffer behind a [`Tracer`].
#[derive(Debug, Clone, Default)]
pub struct SpanBuf {
    records: Vec<SpanRecord>,
}

/// The recording hook a scheduler carries. Disabled (`Tracer::off`) it
/// is a `None` and every `record` call is a single branch; no other
/// scheduler behavior may depend on it.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<SpanBuf>,
}

impl Tracer {
    /// A disabled tracer: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Self { buf: None }
    }

    /// An enabled tracer accumulating spans in memory.
    pub fn on() -> Self {
        Self {
            buf: Some(SpanBuf::default()),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Record one span (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at_ns: u64, rank: usize, trace: u64, kind: SpanKind) {
        if let Some(buf) = &mut self.buf {
            buf.records.push(SpanRecord {
                at_ns,
                rank,
                trace,
                kind,
            });
        }
    }

    /// Take the accumulated records, leaving the tracer disabled.
    pub fn take(&mut self) -> Vec<SpanRecord> {
        self.buf.take().map(|b| b.records).unwrap_or_default()
    }

    /// The accumulated records (empty when disabled).
    pub fn records(&self) -> &[SpanRecord] {
        self.buf
            .as_ref()
            .map(|b| b.records.as_slice())
            .unwrap_or(&[])
    }
}

/// All spans of one run, merged across ranks.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    records: Vec<SpanRecord>,
    n_ranks: usize,
}

impl SpanTrace {
    /// Build from per-rank record batches (index = rank).
    pub fn from_per_rank(per_rank: Vec<Vec<SpanRecord>>) -> Self {
        let n_ranks = per_rank.len();
        let mut records: Vec<SpanRecord> = per_rank.into_iter().flatten().collect();
        records.sort_by_key(|r| (r.at_ns, r.rank));
        Self { records, n_ranks }
    }

    /// All records, time-ordered (ties broken by rank).
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of ranks the trace covers.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Count records on `rank` matching `pred`.
    pub fn count_rank<F: Fn(&SpanKind) -> bool>(&self, rank: usize, pred: F) -> u64 {
        self.records
            .iter()
            .filter(|r| r.rank == rank && pred(&r.kind))
            .count() as u64
    }

    /// Count records matching `pred` across all ranks.
    pub fn count<F: Fn(&SpanKind) -> bool>(&self, pred: F) -> u64 {
        self.records.iter().filter(|r| pred(&r.kind)).count() as u64
    }

    /// Exact cross-check against the scheduler's own counters: for
    /// every rank, span counts must equal the [`StealStats`] fields
    /// incremented at the same program points. Any mismatch means the
    /// tracer and the counters disagree about what happened — a bug.
    ///
    /// [`StealStats`]: crate::StealStats
    pub fn reconcile(&self, stats: &crate::RunStats) -> Result<(), String> {
        for (rank, s) in stats.per_rank.iter().enumerate() {
            let checks: [(&str, u64, u64); 8] = [
                (
                    "steal_attempts",
                    s.steal_attempts,
                    self.count_rank(rank, |k| matches!(k, SpanKind::StealRequestSent { .. })),
                ),
                (
                    "steals_ok",
                    s.steals_ok,
                    self.count_rank(rank, |k| matches!(k, SpanKind::StealOk { .. })),
                ),
                (
                    "steals_failed",
                    s.steals_failed,
                    self.count_rank(rank, |k| {
                        matches!(
                            k,
                            SpanKind::StealEmpty { .. }
                                | SpanKind::StealTimeout { .. }
                                | SpanKind::StealAbandoned { .. }
                        )
                    }),
                ),
                (
                    "steal_timeouts",
                    s.steal_timeouts,
                    self.count_rank(rank, |k| matches!(k, SpanKind::StealTimeout { .. })),
                ),
                (
                    "retransmits",
                    s.retransmits,
                    self.count_rank(rank, |k| matches!(k, SpanKind::Retransmit { .. })),
                ),
                (
                    "token_regenerations",
                    s.token_regenerations,
                    self.count_rank(rank, |k| matches!(k, SpanKind::TokenRegenerated { .. })),
                ),
                (
                    "sessions",
                    s.sessions,
                    self.count_rank(rank, |k| matches!(k, SpanKind::SessionEnd { .. })),
                ),
                (
                    "quarantines",
                    s.quarantines,
                    self.count_rank(rank, |k| matches!(k, SpanKind::Quarantined { .. })),
                ),
            ];
            for (name, counter, spans) in checks {
                if counter != spans {
                    return Err(format!(
                        "rank {rank}: {name} counter {counter} != {spans} matching spans"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Derive the latency distributions the spans carry. The message
    /// delivery histogram lives in the network layer, not here —
    /// merge a `NetTrace`'s histogram into the result if you have one.
    pub fn histograms(&self) -> LatencyHistograms {
        let mut h = LatencyHistograms::default();
        for r in &self.records {
            match r.kind {
                SpanKind::StealOk { rtt_ns, .. } | SpanKind::StealEmpty { rtt_ns, .. } => {
                    h.steal_rtt_ns.record(rtt_ns)
                }
                SpanKind::StealTimeout {
                    backoff_doublings, ..
                } => h.backoff_doublings.record(backoff_doublings),
                SpanKind::SessionEnd { dur_ns } => h.session_ns.record(dur_ns),
                _ => {}
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunStats, StealStats};

    #[test]
    fn trace_ids_are_reconstructible_and_distinct() {
        assert_eq!(trace_id(3, 7), trace_id(3, 7));
        assert_ne!(trace_id(3, 7), trace_id(3, 8));
        assert_ne!(trace_id(3, 7), trace_id(4, 7));
        // rank survives in the high bits
        assert_eq!(trace_id(1023, 0) >> 40, 1023);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.record(5, 0, 1, SpanKind::Done);
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_accumulates() {
        let mut t = Tracer::on();
        assert!(t.enabled());
        t.record(
            5,
            0,
            trace_id(0, 1),
            SpanKind::StealRequestSent { victim: 1 },
        );
        t.record(9, 0, 0, SpanKind::Done);
        let recs = t.take();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at_ns, 5);
        assert!(!t.enabled());
    }

    #[test]
    fn merge_orders_by_time_then_rank() {
        let r0 = vec![SpanRecord {
            at_ns: 10,
            rank: 0,
            trace: 0,
            kind: SpanKind::Done,
        }];
        let r1 = vec![
            SpanRecord {
                at_ns: 5,
                rank: 1,
                trace: 0,
                kind: SpanKind::SessionEnd { dur_ns: 5 },
            },
            SpanRecord {
                at_ns: 10,
                rank: 1,
                trace: 0,
                kind: SpanKind::Done,
            },
        ];
        let trace = SpanTrace::from_per_rank(vec![r0, r1]);
        let at: Vec<(u64, usize)> = trace.records().iter().map(|r| (r.at_ns, r.rank)).collect();
        assert_eq!(at, vec![(5, 1), (10, 0), (10, 1)]);
        assert_eq!(trace.n_ranks(), 2);
    }

    fn attempt(rank: usize, victim: usize, seq: u64, at: u64, ok: bool) -> Vec<SpanRecord> {
        let id = trace_id(rank, seq);
        vec![
            SpanRecord {
                at_ns: at,
                rank,
                trace: id,
                kind: SpanKind::StealRequestSent { victim },
            },
            SpanRecord {
                at_ns: at + 100,
                rank,
                trace: id,
                kind: if ok {
                    SpanKind::StealOk {
                        victim,
                        rtt_ns: 100,
                        nodes: 4,
                    }
                } else {
                    SpanKind::StealEmpty {
                        victim,
                        rtt_ns: 100,
                    }
                },
            },
        ]
    }

    #[test]
    fn reconcile_accepts_matching_counts() {
        let mut r0 = attempt(0, 1, 0, 10, true);
        r0.extend(attempt(0, 1, 1, 300, false));
        r0.push(SpanRecord {
            at_ns: 500,
            rank: 0,
            trace: 0,
            kind: SpanKind::SessionEnd { dur_ns: 490 },
        });
        let trace = SpanTrace::from_per_rank(vec![r0, vec![]]);
        let stats = RunStats::new(vec![
            StealStats {
                steal_attempts: 2,
                steals_ok: 1,
                steals_failed: 1,
                sessions: 1,
                ..StealStats::default()
            },
            StealStats::default(),
        ]);
        trace.reconcile(&stats).unwrap();
    }

    #[test]
    fn reconcile_rejects_mismatch() {
        let trace = SpanTrace::from_per_rank(vec![attempt(0, 1, 0, 10, true)]);
        let stats = RunStats::new(vec![StealStats {
            steal_attempts: 2, // trace only has 1
            steals_ok: 1,
            steals_failed: 1,
            ..StealStats::default()
        }]);
        let err = trace.reconcile(&stats).unwrap_err();
        assert!(err.contains("steal_attempts"), "{err}");
    }

    #[test]
    fn histograms_pick_up_rtt_backoff_sessions() {
        let mut recs = attempt(0, 1, 0, 10, true);
        recs.push(SpanRecord {
            at_ns: 400,
            rank: 0,
            trace: trace_id(0, 1),
            kind: SpanKind::StealTimeout {
                victim: 1,
                backoff_doublings: 2,
            },
        });
        recs.push(SpanRecord {
            at_ns: 600,
            rank: 0,
            trace: 0,
            kind: SpanKind::SessionEnd { dur_ns: 590 },
        });
        let h = SpanTrace::from_per_rank(vec![recs]).histograms();
        assert_eq!(h.steal_rtt_ns.count(), 1);
        assert_eq!(h.steal_rtt_ns.max(), 100);
        assert_eq!(h.backoff_doublings.count(), 1);
        assert_eq!(h.backoff_doublings.max(), 2);
        assert_eq!(h.session_ns.count(), 1);
        assert_eq!(h.msg_delivery_ns.count(), 0);
    }
}
