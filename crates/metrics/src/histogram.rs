//! Log-bucketed latency histograms.
//!
//! Gast et al. ("A new analysis of Work Stealing with latency",
//! arXiv:1805.00857) argue that per-request latency *distributions*,
//! not means, explain steal performance: a protocol whose p99 steal
//! round trip is 50× its p50 behaves nothing like one with a tight
//! distribution of the same mean. This module provides the fixed-size
//! power-of-two-bucketed histogram the tracing layer aggregates into:
//! recording is two array ops (no allocation, no floating point), so
//! it is cheap enough to sit on the simulator's per-message path.
//!
//! Quantiles are bucket-resolved: `quantile(q)` returns the inclusive
//! upper bound of the bucket holding the q-th sample (clamped to the
//! observed maximum), which over-estimates by at most 2× — plenty for
//! the order-of-magnitude comparisons latency work calls for.

/// Number of buckets: one for zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two bucket boundaries.
///
/// Bucket 0 holds the value 0; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a sample.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket-resolved `q`-quantile (`q` in `[0, 1]`): the upper
    /// bound of the bucket containing the `ceil(q·count)`-th smallest
    /// sample, clamped to the observed maximum. Returns 0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolved).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolved).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile (bucket-resolved).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket-resolved).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` rows,
    /// ascending — the machine-readable shape of the distribution.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (lo, bucket_hi(i), c)
            })
            .collect()
    }
}

/// The latency distributions one traced run yields, keyed to the
/// protocol phases the paper's figures reason about.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistograms {
    /// Steal round trip: request sent → reply received (work or not),
    /// in nanoseconds. Timed-out requests never contribute — their
    /// latency is the timeout itself, visible in `backoff_doublings`.
    pub steal_rtt_ns: Histogram,
    /// Network delivery latency per message (send → arrival), in
    /// nanoseconds, as scheduled by the engine — includes FIFO
    /// pushback, contention, jitter and injected spikes.
    pub msg_delivery_ns: Histogram,
    /// Exponential-backoff depth at each steal-request timeout (1 =
    /// first consecutive timeout). Dimensionless.
    pub backoff_doublings: Histogram,
    /// Work-discovery session duration in nanoseconds (paper §V-A,
    /// Figure 10).
    pub session_ns: Histogram,
}

impl LatencyHistograms {
    /// Named views of every histogram, for uniform export.
    pub fn named(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("steal_rtt_ns", &self.steal_rtt_ns),
            ("msg_delivery_ns", &self.msg_delivery_ns),
            ("backoff_doublings", &self.backoff_doublings),
            ("session_ns", &self.session_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1_000_000); // bucket [2^19, 2^20-1]
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        // The 100th sample is the millionth-ns outlier; its bucket's
        // upper bound clamps to the observed max.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.p99(), 15);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(7);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.min(), 5);
        assert_eq!(a.sum(), 112);
    }

    #[test]
    fn buckets_report_nonempty_rows() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(9);
        h.record(12);
        let rows = h.buckets();
        assert_eq!(rows, vec![(0, 0, 1), (8, 15, 2)]);
        let total: u64 = rows.iter().map(|r| r.2).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_fraction() {
        Histogram::new().quantile(1.5);
    }
}
