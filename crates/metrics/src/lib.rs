//! # dws-metrics
//!
//! The measurement side of the reproduction: the paper's
//! scheduling-latency metric and the per-run statistics its figures are
//! drawn from.
//!
//! - [`trace`] — lightweight per-rank activity traces (active ⇄ idle
//!   transitions) with clock-skew correction;
//! - [`occupancy`] — `workers(t)`, `Wmax`, occupancy `O(t)`, and the
//!   starting/ending latencies `SL(x)` / `EL(x)` of §III;
//! - [`steal_stats`] — failed steals, search time, and work-discovery
//!   sessions (§V-A);
//! - [`span`] — causal per-steal-attempt tracing with a
//!   zero-cost-when-disabled [`Tracer`] hook;
//! - [`critpath`] — happens-before reconstruction and critical-path
//!   extraction: tiles the makespan into contiguous attributed
//!   segments that sum to the measured makespan exactly;
//! - [`blame`] — blame reports over the critical path: component
//!   totals, per-rank waterfalls, Coz-style what-if virtual speedups,
//!   and the text view behind `dws why`;
//! - [`histogram`] — log-bucketed latency histograms (p50/p90/p99/max)
//!   for steal round trips, message delivery, backoff depth and
//!   session durations;
//! - [`export`] — dependency-free JSON, Chrome trace-event output and
//!   machine-readable run reports;
//! - [`streaming`] — online (incremental) occupancy/busy-time
//!   accounting proven element-identical to the sorted-log path, plus
//!   the periodic [`Snapshot`] JSONL stream;
//! - [`report`] — efficiency/speedup math, text tables, CSV output and
//!   terminal ASCII charts for regenerating the paper's figures;
//! - [`perflab`] — benchmark trajectory records ([`BenchRecord`]),
//!   repeated-trial 95% confidence intervals, and noise-aware
//!   cross-run regression diffing for `dws diff`.
//!
//! ## Example: computing a starting latency
//!
//! ```
//! use dws_metrics::{ActivityTrace, OccupancyCurve};
//!
//! let mut trace = ActivityTrace::new(2);
//! trace.record(0, 0, true);      // rank 0 active at t=0
//! trace.record(1, 50, true);     // rank 1 gets work at t=50
//! trace.record(0, 100, false);
//! trace.record(1, 100, false);
//! let curve = OccupancyCurve::from_trace(&trace, 100);
//! // 100% occupancy is first reached at t=50 of a 100ns run: SL = 50%.
//! assert_eq!(curve.starting_latency(1.0), Some(0.5));
//! ```

#![warn(missing_docs)]

pub mod blame;
pub mod critpath;
pub mod export;
pub mod histogram;
pub mod lifestory;
pub mod occupancy;
pub mod perflab;
pub mod report;
pub mod span;
pub mod steal_stats;
pub mod streaming;
pub mod summary;
pub mod trace;

pub use blame::{BlameReport, WhatIf, BLAME_SCHEMA_VERSION};
pub use critpath::{rank_waterfall, Component, CriticalPath, RankWaterfall, Segment};
pub use export::JsonValue;
pub use histogram::{Histogram, LatencyHistograms};
pub use occupancy::OccupancyCurve;
pub use perflab::{
    BenchMetric, BenchRecord, MetricDelta, Polarity, ProfileReport, Verdict,
    BENCH_SCHEMA_MIN_VERSION, BENCH_SCHEMA_VERSION,
};
pub use report::{ascii_chart, render_table, write_csv, Perf};
pub use span::{trace_id, SpanKind, SpanRecord, SpanTrace, Tracer};
pub use steal_stats::{RunStats, StealStats};
pub use streaming::{
    OnlineAccounting, OnlineOccupancy, ShardSnap, Snapshot, SNAPSHOT_SCHEMA_VERSION,
};
pub use summary::Summary;
pub use trace::{ActivityTrace, SortedTrace, Transition};
