//! Activity traces: the raw material of the paper's scheduling-latency
//! metric.
//!
//! Section III: "If one was to trace the active and idle phases of each
//! process participating in the computation, it should be possible
//! post-mortem to determine the number of active processes at any time
//! during execution." A process is *active* while its stack contains
//! work — including time spent answering steal requests — and *idle*
//! otherwise.
//!
//! Each rank records its own transitions with its own (possibly skewed)
//! clock; the paper notes that "the trace modified to account for clock
//! skew". [`ActivityTrace::correct_skew`] applies exactly that
//! correction.

/// One recorded phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Rank that transitioned.
    pub rank: u32,
    /// Local timestamp in nanoseconds.
    pub at_ns: u64,
    /// New state: `true` = became active (has work), `false` = idle.
    pub active: bool,
}

/// A full activity trace of a run.
///
/// The trace is "lightweight" (paper: "as the trace only contains a
/// time and the new state at each phase transition"): two words per
/// transition.
#[derive(Debug, Clone, Default)]
pub struct ActivityTrace {
    transitions: Vec<Transition>,
    n_ranks: u32,
}

impl ActivityTrace {
    /// Create an empty trace for `n_ranks` processes.
    pub fn new(n_ranks: u32) -> Self {
        Self {
            transitions: Vec::new(),
            n_ranks,
        }
    }

    /// Number of ranks this trace covers.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Record a transition. Ranks must alternate states; violations are
    /// caught by [`check`](Self::check), not here, so recording stays
    /// O(1) on the hot path.
    #[inline]
    pub fn record(&mut self, rank: u32, at_ns: u64, active: bool) {
        debug_assert!(rank < self.n_ranks);
        self.transitions.push(Transition {
            rank,
            at_ns,
            active,
        });
    }

    /// All transitions, in recording order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Append another trace (e.g. per-rank buffers gathered after a
    /// run).
    pub fn extend(&mut self, other: &ActivityTrace) {
        assert_eq!(self.n_ranks, other.n_ranks, "trace rank counts differ");
        self.transitions.extend_from_slice(&other.transitions);
    }

    /// Subtract each rank's known clock offset, as the paper did before
    /// computing latencies. Offsets are saturating-subtracted so a
    /// transition recorded at local time earlier than the skew clamps
    /// to zero rather than wrapping.
    pub fn correct_skew(&mut self, skews_ns: &[u64]) {
        assert_eq!(
            skews_ns.len(),
            self.n_ranks as usize,
            "need one skew per rank"
        );
        for t in &mut self.transitions {
            t.at_ns = t.at_ns.saturating_sub(skews_ns[t.rank as usize]);
        }
    }

    /// Validate the trace: per rank, states must alternate and times
    /// must be non-decreasing. Returns the number of transitions.
    pub fn check(&self) -> Result<usize, String> {
        let mut last: Vec<Option<(u64, bool)>> = vec![None; self.n_ranks as usize];
        let mut per_rank: Vec<Vec<(u64, bool)>> = vec![Vec::new(); self.n_ranks as usize];
        for t in &self.transitions {
            per_rank[t.rank as usize].push((t.at_ns, t.active));
        }
        for (rank, events) in per_rank.iter().enumerate() {
            for &(at, active) in events {
                match last[rank] {
                    Some((pat, pactive)) => {
                        if at < pat {
                            return Err(format!("rank {rank}: time went backwards at {at}"));
                        }
                        if pactive == active {
                            return Err(format!(
                                "rank {rank}: repeated {} transition at {at}",
                                if active { "active" } else { "idle" }
                            ));
                        }
                    }
                    None => {
                        // Convention: every rank starts idle, so its
                        // first recorded transition must be to active.
                        if !active {
                            return Err(format!(
                                "rank {rank}: first transition at {at} must be to active"
                            ));
                        }
                    }
                }
                last[rank] = Some((at, active));
            }
        }
        Ok(self.transitions.len())
    }

    /// Sort the trace once, by `(time, rank)`, for post-mortem
    /// analysis. Both busy-time accounting
    /// ([`SortedTrace::busy_ns_per_rank`]) and occupancy-curve
    /// construction ([`OccupancyCurve::from_sorted`]) consume the same
    /// sorted pass, so analyzing a large trace costs one sort instead
    /// of one per question.
    ///
    /// The view *borrows* the trace: only a permutation index (4 bytes
    /// per transition) is allocated, not a second copy of the 16-byte
    /// transitions themselves.
    ///
    /// The sort is stable, so each rank's transitions keep their
    /// recording order at equal timestamps.
    ///
    /// [`OccupancyCurve::from_sorted`]: crate::OccupancyCurve::from_sorted
    pub fn sorted(&self) -> SortedTrace<'_> {
        assert!(
            self.transitions.len() <= u32::MAX as usize,
            "trace too large for a u32 permutation index"
        );
        let mut order: Vec<u32> = (0..self.transitions.len() as u32).collect();
        order.sort_by_key(|&i| {
            let t = self.transitions[i as usize];
            (t.at_ns, t.rank)
        });
        SortedTrace {
            transitions: &self.transitions,
            order,
            n_ranks: self.n_ranks,
        }
    }

    /// Total busy time per rank, assuming the run ends at `end_ns` (an
    /// active rank at the end is counted busy until then).
    ///
    /// Convenience wrapper that sorts internally; when also building an
    /// occupancy curve, call [`sorted`](Self::sorted) once and share
    /// the result.
    pub fn busy_ns_per_rank(&self, end_ns: u64) -> Vec<u64> {
        self.sorted().busy_ns_per_rank(end_ns)
    }
}

/// A sorted *view* of a trace: transitions in `(time, rank)` order —
/// the shared single sorted pass behind every post-mortem computation.
///
/// The view borrows the underlying trace and carries only a
/// permutation index, so sorting a large trace costs one `u32` per
/// transition instead of cloning every 16-byte record.
#[derive(Debug, Clone)]
pub struct SortedTrace<'a> {
    transitions: &'a [Transition],
    order: Vec<u32>,
    n_ranks: u32,
}

impl SortedTrace<'_> {
    /// Number of ranks the trace covers.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Number of transitions in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The `i`-th transition in `(time, rank)` order.
    #[inline]
    pub fn get(&self, i: usize) -> Transition {
        self.transitions[self.order[i] as usize]
    }

    /// Iterate the transitions in `(time, rank)` order.
    pub fn iter(&self) -> impl Iterator<Item = Transition> + '_ {
        self.order.iter().map(|&i| self.transitions[i as usize])
    }

    /// Total busy time per rank, assuming the run ends at `end_ns` (an
    /// active rank at the end is counted busy until then).
    pub fn busy_ns_per_rank(&self, end_ns: u64) -> Vec<u64> {
        let mut busy = vec![0u64; self.n_ranks as usize];
        let mut since: Vec<Option<u64>> = vec![None; self.n_ranks as usize];
        for t in self.iter() {
            let r = t.rank as usize;
            match (t.active, since[r]) {
                (true, None) => since[r] = Some(t.at_ns),
                (false, Some(s)) => {
                    busy[r] += t.at_ns.saturating_sub(s);
                    since[r] = None;
                }
                // Duplicate state changes are tolerated here (check()
                // reports them); keep first activation, ignore repeats.
                _ => {}
            }
        }
        for (r, s) in since.iter().enumerate() {
            if let Some(s) = s {
                busy[r] += end_ns.saturating_sub(*s);
            }
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_trace() -> ActivityTrace {
        let mut t = ActivityTrace::new(2);
        t.record(0, 0, true);
        t.record(1, 50, true);
        t.record(0, 100, false);
        t.record(1, 150, false);
        t
    }

    #[test]
    fn check_accepts_alternating_trace() {
        assert_eq!(simple_trace().check(), Ok(4));
    }

    #[test]
    fn check_rejects_repeated_state() {
        let mut t = ActivityTrace::new(1);
        t.record(0, 0, true);
        t.record(0, 10, true);
        assert!(t.check().is_err());
    }

    #[test]
    fn check_rejects_time_travel() {
        let mut t = ActivityTrace::new(1);
        t.record(0, 10, true);
        t.record(0, 5, false);
        assert!(t.check().is_err());
    }

    #[test]
    fn skew_correction_shifts_per_rank() {
        let mut t = simple_trace();
        t.correct_skew(&[0, 40]);
        let times: Vec<(u32, u64)> = t
            .transitions()
            .iter()
            .map(|tr| (tr.rank, tr.at_ns))
            .collect();
        assert_eq!(times, vec![(0, 0), (1, 10), (0, 100), (1, 110)]);
    }

    #[test]
    fn skew_correction_saturates() {
        let mut t = ActivityTrace::new(1);
        t.record(0, 5, true);
        t.correct_skew(&[10]);
        assert_eq!(t.transitions()[0].at_ns, 0);
    }

    #[test]
    fn busy_time_accounts_open_intervals() {
        let t = simple_trace();
        let busy = t.busy_ns_per_rank(200);
        assert_eq!(busy, vec![100, 100]);
        // A rank still active at the end is billed to end_ns.
        let mut open = ActivityTrace::new(1);
        open.record(0, 20, true);
        assert_eq!(open.busy_ns_per_rank(120), vec![100]);
    }

    #[test]
    fn sorted_trace_matches_direct_busy_accounting() {
        // Record out of time order; sorted() must put it right.
        let mut t = ActivityTrace::new(2);
        t.record(1, 50, true);
        t.record(0, 0, true);
        t.record(1, 150, false);
        t.record(0, 100, false);
        let sorted = t.sorted();
        let at: Vec<u64> = sorted.iter().map(|tr| tr.at_ns).collect();
        assert_eq!(at, vec![0, 50, 100, 150]);
        assert_eq!(sorted.busy_ns_per_rank(200), t.busy_ns_per_rank(200));
        assert_eq!(sorted.busy_ns_per_rank(200), vec![100, 100]);
    }

    #[test]
    fn sorted_is_stable_within_a_rank() {
        // Two same-time transitions of one rank keep recording order.
        let mut t = ActivityTrace::new(1);
        t.record(0, 10, true);
        t.record(0, 10, false);
        let sorted = t.sorted();
        assert!(sorted.get(0).active);
        assert!(!sorted.get(1).active);
    }

    #[test]
    fn extend_merges_traces() {
        let mut a = ActivityTrace::new(2);
        a.record(0, 0, true);
        let mut b = ActivityTrace::new(2);
        b.record(1, 5, true);
        a.extend(&b);
        assert_eq!(a.transitions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "rank counts differ")]
    fn extend_rejects_mismatched_sizes() {
        let mut a = ActivityTrace::new(2);
        let b = ActivityTrace::new(3);
        a.extend(&b);
    }
}
