//! Streaming (online) run accounting: the post-hoc sorted-log metrics,
//! maintained incrementally while the run executes.
//!
//! The post-hoc pipeline — harvest every activity transition, sort
//! once, derive busy time and the occupancy curve — retains the whole
//! event history, which cannot survive the 82k/1M-rank scale push
//! (ROADMAP item 1). The Khatiri/Trystram work-stealing simulator
//! (arXiv:1910.02803) ships an online per-processor state timeline as a
//! first-class output, and Gast et al. (arXiv:1805.00857) frame their
//! latency analysis in time-decomposed processor states; both argue the
//! right primitive is an incrementally maintained occupancy stream.
//!
//! [`OnlineAccounting`] is that primitive. The engine feeds it raw
//! transitions as they are recorded and *folds* at every conservative
//! window barrier. Folding is legal exactly because the windowed engine
//! partitions simulated time: every transition recorded after a window
//! barrier carries a timestamp no earlier than any transition recorded
//! before it, so each fold consumes a complete, final segment of the
//! global timeline. Within the fold, the pending buffer is stable-sorted
//! by `(time, rank)` — the same key, with the same tie-breaking, as the
//! post-hoc [`ActivityTrace::sorted`] pass — and then walked with
//! literally the same two loops as [`SortedTrace::busy_ns_per_rank`]
//! and [`OccupancyCurve::from_sorted`]. The retained state between
//! folds is O(ranks): per-rank open intervals and busy totals, the
//! current/peak worker count, the occupancy integral, and first-reach /
//! last-drop marks per occupancy level. No event log survives a fold.
//!
//! The post-hoc path is deliberately kept alive as a *differential
//! oracle* (like the engine's `reference_queue`): tests run both and
//! assert element-identical results.
//!
//! Delivery-latency histograms and the per-pair traffic matrix are
//! already maintained incrementally at send time by the network layer's
//! `NetTrace` (commutative merge across shards); this module does not
//! duplicate them. Steal-RTT histograms are recorded online at the
//! scheduler's reply sites and merged in rank order, matching
//! [`SpanTrace::histograms`](crate::SpanTrace::histograms) exactly.
//!
//! [`ActivityTrace::sorted`]: crate::ActivityTrace::sorted
//! [`SortedTrace::busy_ns_per_rank`]: crate::SortedTrace::busy_ns_per_rank
//! [`OccupancyCurve::from_sorted`]: crate::OccupancyCurve::from_sorted

use crate::export::JsonValue;
use crate::trace::Transition;

/// Schema version stamped on every snapshot JSONL line (the bench
/// record schema and the snapshot stream move together).
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 3;

/// Incrementally maintained occupancy and busy-time accounting.
///
/// Feed transitions with [`record`](Self::record), fold at every point
/// where the producer can guarantee no earlier-timestamped transition
/// will ever arrive ([`fold`](Self::fold)), and close the run with
/// [`finish`](Self::finish). Between folds the memory footprint is
/// O(ranks) plus the unfolded pending buffer of the open window.
#[derive(Debug, Clone)]
pub struct OnlineAccounting {
    n_ranks: u32,
    /// Transitions recorded since the last fold, in arrival order.
    pending: Vec<Transition>,
    /// Largest timestamp ever folded; folds assert monotonicity.
    watermark_ns: u64,
    // --- busy walk state (mirrors SortedTrace::busy_ns_per_rank) ---
    since: Vec<Option<u64>>,
    busy: Vec<u64>,
    // --- curve walk state (mirrors OccupancyCurve::from_sorted) ---
    current: u32,
    w_max: u32,
    /// ∫ workers(t) dt over the folded prefix, up to `last_step_ns`.
    busy_integral: u128,
    last_step_ns: u64,
    /// `first_reach[k]`: first time the worker count reached `k`.
    /// Index 0 is `Some(0)` by construction (the curve starts at 0).
    first_reach: Vec<Option<u64>>,
    /// `last_drop[k]`: last time the worker count stepped from `>= k`
    /// down to `< k`.
    last_drop: Vec<Option<u64>>,
    /// When set, the full `(time, workers)` step list is retained —
    /// only for differential tests; production callers keep this off
    /// to preserve the O(ranks) bound.
    steps: Option<Vec<(u64, u32)>>,
    folded: u64,
}

impl OnlineAccounting {
    /// Empty accounting for `n_ranks` processes.
    pub fn new(n_ranks: u32) -> Self {
        let levels = n_ranks as usize + 1;
        let mut first_reach = vec![None; levels];
        first_reach[0] = Some(0);
        Self {
            n_ranks,
            pending: Vec::new(),
            watermark_ns: 0,
            since: vec![None; n_ranks as usize],
            busy: vec![0; n_ranks as usize],
            current: 0,
            w_max: 0,
            busy_integral: 0,
            last_step_ns: 0,
            first_reach,
            last_drop: vec![None; levels],
            steps: None,
            folded: 0,
        }
    }

    /// Also retain the full step list (test/differential mode; defeats
    /// the O(ranks) bound on purpose).
    pub fn with_retained_steps(mut self) -> Self {
        self.steps = Some(vec![(0, 0)]);
        self
    }

    /// Number of ranks covered.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Transitions folded so far (pending ones excluded).
    #[inline]
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Transitions recorded but not yet folded.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Current (settled-as-of-last-fold) worker count.
    #[inline]
    pub fn current_workers(&self) -> u32 {
        self.current
    }

    /// Peak worker count over the folded prefix.
    #[inline]
    pub fn w_max(&self) -> u32 {
        self.w_max
    }

    /// Record one transition. O(1); buffered until the next fold.
    #[inline]
    pub fn record(&mut self, rank: u32, at_ns: u64, active: bool) {
        debug_assert!(rank < self.n_ranks);
        self.pending.push(Transition {
            rank,
            at_ns,
            active,
        });
    }

    /// Record a batch of transitions (a shard's per-window buffer).
    pub fn record_all(&mut self, batch: &[Transition]) {
        self.pending.extend_from_slice(batch);
    }

    /// Fold the pending buffer into the O(ranks) aggregates.
    ///
    /// The caller guarantees that every transition recorded *after*
    /// this call carries a timestamp `>=` every transition folded by
    /// it — the conservative engine's window barrier provides exactly
    /// this (all events of window `k+1` are timestamped at or after
    /// the end of window `k`). Violations are caught in debug builds.
    pub fn fold(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Same key, same stability as ActivityTrace::sorted: ties in
        // (time, rank) keep their recording order, which for a single
        // rank is its own chronological order — exactly the order the
        // post-hoc harvest produces.
        self.pending.sort_by_key(|t| (t.at_ns, t.rank));
        debug_assert!(
            self.pending.first().map(|t| t.at_ns).unwrap_or(u64::MAX) >= self.watermark_ns
                || self.folded == 0,
            "fold saw a timestamp below the previous fold's watermark"
        );
        let pending = std::mem::take(&mut self.pending);
        let mut i = 0;
        while i < pending.len() {
            let t = pending[i].at_ns;
            // One pass serves both walks: per-transition busy intervals
            // (SortedTrace::busy_ns_per_rank), then the netted
            // same-instant occupancy step (OccupancyCurve::from_sorted).
            let mut delta: i64 = 0;
            while i < pending.len() && pending[i].at_ns == t {
                let tr = pending[i];
                let r = tr.rank as usize;
                match (tr.active, self.since[r]) {
                    (true, None) => self.since[r] = Some(tr.at_ns),
                    (false, Some(s)) => {
                        self.busy[r] += tr.at_ns.saturating_sub(s);
                        self.since[r] = None;
                    }
                    // Duplicate state changes are tolerated exactly as
                    // in the oracle: keep first activation, ignore
                    // repeats.
                    _ => {}
                }
                delta += if tr.active { 1 } else { -1 };
                i += 1;
            }
            self.step(t, delta);
        }
        self.folded += pending.len() as u64;
        self.watermark_ns = self.watermark_ns.max(self.last_step_ns);
    }

    /// Apply one netted occupancy step at time `t`.
    fn step(&mut self, t: u64, delta: i64) {
        let prev = self.current;
        // Accumulate the integral for the interval [last_step_ns, t) at
        // the outgoing worker count; a same-instant revision (only the
        // initial (0,0) step can collide, since folds consume all equal
        // timestamps at once) contributes zero width.
        self.busy_integral += (t - self.last_step_ns) as u128 * prev as u128;
        let cur = (prev as i64 + delta).max(0) as u32;
        debug_assert!(prev as i64 + delta >= 0, "negative worker count at {t}");
        self.current = cur;
        self.last_step_ns = t;
        if cur > prev {
            self.w_max = self.w_max.max(cur);
            for k in prev + 1..=cur {
                let slot = &mut self.first_reach[k as usize];
                if slot.is_none() {
                    *slot = Some(t);
                }
            }
        } else if cur < prev {
            for k in cur + 1..=prev {
                self.last_drop[k as usize] = Some(t);
            }
        }
        if let Some(steps) = &mut self.steps {
            // Verbatim OccupancyCurve::from_sorted step emission.
            match steps.last_mut() {
                Some(last) if last.0 == t => last.1 = cur,
                _ => steps.push((t, cur)),
            }
        }
    }

    /// Close the run at `end_ns`: fold any pending transitions and
    /// return the finished query object. Open busy intervals are billed
    /// to `end_ns`, exactly like the oracle's
    /// [`busy_ns_per_rank`](crate::SortedTrace::busy_ns_per_rank).
    pub fn finish(mut self, end_ns: u64) -> OnlineOccupancy {
        self.fold();
        let mut busy = self.busy;
        for (r, s) in self.since.iter().enumerate() {
            if let Some(s) = s {
                busy[r] += end_ns.saturating_sub(*s);
            }
        }
        // Tail of the integral: the final worker count holds from the
        // last step to the end of the run.
        let busy_integral = self.busy_integral
            + end_ns.saturating_sub(self.last_step_ns) as u128 * self.current as u128;
        OnlineOccupancy {
            n_ranks: self.n_ranks,
            total_ns: end_ns,
            busy_ns_per_rank: busy,
            w_max: self.w_max,
            final_workers: self.current,
            busy_integral,
            first_reach: self.first_reach,
            last_drop: self.last_drop,
            steps: self.steps,
        }
    }
}

/// The finished streaming accounting of one run: every quantity the
/// post-hoc [`OccupancyCurve`](crate::OccupancyCurve) answers for the
/// run report, held in O(ranks) memory.
#[derive(Debug, Clone)]
pub struct OnlineOccupancy {
    n_ranks: u32,
    total_ns: u64,
    busy_ns_per_rank: Vec<u64>,
    w_max: u32,
    final_workers: u32,
    busy_integral: u128,
    first_reach: Vec<Option<u64>>,
    last_drop: Vec<Option<u64>>,
    steps: Option<Vec<(u64, u32)>>,
}

impl OnlineOccupancy {
    /// Number of processes in the run.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// Run length in nanoseconds.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Total busy time per rank.
    pub fn busy_ns_per_rank(&self) -> &[u64] {
        &self.busy_ns_per_rank
    }

    /// Maximum simultaneous workers (paper: `Wmax`).
    #[inline]
    pub fn w_max(&self) -> u32 {
        self.w_max
    }

    /// ∫ workers(t) dt over the run, in worker-nanoseconds.
    #[inline]
    pub fn busy_integral_ns(&self) -> u128 {
        self.busy_integral
    }

    /// Average occupancy over the run, in `[0, 1]`.
    pub fn average_occupancy(&self) -> f64 {
        if self.total_ns == 0 || self.n_ranks == 0 {
            return 0.0;
        }
        self.busy_integral as f64 / (self.total_ns as f64 * self.n_ranks as f64)
    }

    /// First time occupancy reaches at least `x` (fraction of ranks);
    /// `None` if it never does.
    pub fn first_reach_ns(&self, x: f64) -> Option<u64> {
        let need = self.required_workers(x);
        self.first_reach[need as usize]
    }

    /// Last time occupancy is at least `x`; `None` if never reached.
    ///
    /// Matches the curve semantics: the last moment the count is `>= x`
    /// is the step where it drops below — or `total_ns` when the run
    /// ends with the count still there.
    pub fn last_reach_ns(&self, x: f64) -> Option<u64> {
        let need = self.required_workers(x);
        if self.final_workers >= need {
            return Some(self.total_ns);
        }
        // The count ends below `need`, so the last qualifying interval
        // (if any) closed at the final downward crossing of `need`.
        self.last_drop[need as usize]
    }

    /// Starting latency `SL(x)` as a fraction of the run.
    pub fn starting_latency(&self, x: f64) -> Option<f64> {
        self.first_reach_ns(x)
            .map(|t| t as f64 / self.total_ns.max(1) as f64)
    }

    /// Ending latency `EL(x)` as a fraction of the run.
    pub fn ending_latency(&self, x: f64) -> Option<f64> {
        self.last_reach_ns(x)
            .map(|t| (self.total_ns.saturating_sub(t)) as f64 / self.total_ns.max(1) as f64)
    }

    /// The retained step list, when built
    /// [`with_retained_steps`](OnlineAccounting::with_retained_steps).
    pub fn steps(&self) -> Option<&[(u64, u32)]> {
        self.steps.as_deref()
    }

    fn required_workers(&self, x: f64) -> u32 {
        assert!(
            (0.0..=1.0).contains(&x),
            "occupancy fraction {x} outside [0,1]"
        );
        (x * self.n_ranks as f64).ceil().max(1.0) as u32
    }
}

/// Per-shard slice of one [`Snapshot`]: window progress and the
/// busy/barrier-wait split of that shard's driver thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnap {
    /// Shard index.
    pub shard: u32,
    /// Local simulated time the shard has reached, in nanoseconds.
    pub now_ns: u64,
    /// Lookahead windows executed so far.
    pub windows: u64,
    /// Events processed so far.
    pub events: u64,
    /// Events waiting in the shard's calendar queue.
    pub queue_depth: u64,
    /// Wall-clock nanoseconds spent executing windows.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent waiting at the two window barriers.
    pub wait_ns: u64,
}

impl ShardSnap {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("shard", self.shard.into()),
            ("now_ns", self.now_ns.into()),
            ("windows", self.windows.into()),
            ("events", self.events.into()),
            ("queue_depth", self.queue_depth.into()),
            ("busy_ns", self.busy_ns.into()),
            ("wait_ns", self.wait_ns.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("shard snapshot missing {k}"))
        };
        Ok(Self {
            shard: field("shard")? as u32,
            now_ns: field("now_ns")?,
            windows: field("windows")?,
            events: field("events")?,
            queue_depth: field("queue_depth")?,
            busy_ns: field("busy_ns")?,
            wait_ns: field("wait_ns")?,
        })
    }
}

/// One line of the snapshot JSONL stream: the run's vital signs at a
/// window barrier. Consumed live by `dws run --live` and replayed by
/// `dws top <snapshots.jsonl>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Sequence number within the run, starting at 0.
    pub seq: u64,
    /// Ranks in the simulation (the occupancy denominator).
    pub n_ranks: u32,
    /// Wall-clock milliseconds since the run started.
    pub wall_ms: u64,
    /// Simulated time reached, in nanoseconds.
    pub sim_ns: u64,
    /// Events processed so far, summed over shards.
    pub events: u64,
    /// Event throughput since the previous snapshot, events/second of
    /// wall time (0 when no wall time elapsed).
    pub events_per_sec: f64,
    /// Events waiting across all shard queues.
    pub queue_depth: u64,
    /// Ready work units (chunks) across all ranks.
    pub ready_chunks: u64,
    /// Successful steals so far, summed over ranks.
    pub steals_ok: u64,
    /// Empty-handed steal replies so far, summed over ranks.
    pub steals_empty: u64,
    /// Quarantine entries recorded by the adaptive overlay so far,
    /// summed over ranks.
    pub quarantined: u64,
    /// Active workers at the last fold.
    pub active_workers: u32,
    /// Peak simultaneous workers so far.
    pub w_max: u32,
    /// Per-shard progress rows.
    pub shards: Vec<ShardSnap>,
}

impl Snapshot {
    /// Steal success rate so far, in `[0, 1]` (0 when no replies yet).
    pub fn steal_success_rate(&self) -> f64 {
        let total = self.steals_ok + self.steals_empty;
        if total == 0 {
            0.0
        } else {
            self.steals_ok as f64 / total as f64
        }
    }

    /// Window lag: the spread between the fastest and slowest shard's
    /// simulated time, in nanoseconds (0 for a single shard).
    pub fn shard_lag_ns(&self) -> u64 {
        let max = self.shards.iter().map(|s| s.now_ns).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.now_ns).min().unwrap_or(0);
        max - min
    }

    /// The JSON tree of this snapshot (one JSONL line when printed).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", self.schema.into()),
            ("seq", self.seq.into()),
            ("n_ranks", self.n_ranks.into()),
            ("wall_ms", self.wall_ms.into()),
            ("sim_ns", self.sim_ns.into()),
            ("events", self.events.into()),
            ("events_per_sec", self.events_per_sec.into()),
            ("queue_depth", self.queue_depth.into()),
            ("ready_chunks", self.ready_chunks.into()),
            ("steals_ok", self.steals_ok.into()),
            ("steals_empty", self.steals_empty.into()),
            ("steal_success_rate", self.steal_success_rate().into()),
            ("quarantined", self.quarantined.into()),
            ("active_workers", self.active_workers.into()),
            ("w_max", self.w_max.into()),
            (
                "shards",
                JsonValue::Arr(self.shards.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Parse one snapshot back from its JSON tree (the `dws top`
    /// replay and the CI stream validator).
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("snapshot missing {k}"))
        };
        let schema = field("schema")?;
        if schema > SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema {schema} is newer than supported {SNAPSHOT_SCHEMA_VERSION}"
            ));
        }
        let shards = v
            .get("shards")
            .and_then(|s| s.as_arr())
            .ok_or("snapshot missing shards")?
            .iter()
            .map(ShardSnap::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema,
            seq: field("seq")?,
            n_ranks: field("n_ranks")? as u32,
            wall_ms: field("wall_ms")?,
            sim_ns: field("sim_ns")?,
            events: field("events")?,
            events_per_sec: v
                .get("events_per_sec")
                .and_then(|x| x.as_num())
                .ok_or("snapshot missing events_per_sec")?,
            queue_depth: field("queue_depth")?,
            ready_chunks: field("ready_chunks")?,
            steals_ok: field("steals_ok")?,
            steals_empty: field("steals_empty")?,
            quarantined: field("quarantined")?,
            active_workers: field("active_workers")? as u32,
            w_max: field("w_max")? as u32,
            shards,
        })
    }

    /// One-line terminal rendering for the `--live` progress view.
    pub fn progress_line(&self) -> String {
        format!(
            "sim {:.3} ms | ev {} ({:.2} M/s) | q {} | occ {}/{} (peak {}) | steals {} ok / {} empty ({:.0}%) | quarantined {}",
            self.sim_ns as f64 / 1e6,
            self.events,
            self.events_per_sec / 1e6,
            self.queue_depth,
            self.active_workers,
            self.n_ranks.max(1),
            self.w_max,
            self.steals_ok,
            self.steals_empty,
            self.steal_success_rate() * 100.0,
            self.quarantined,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::OccupancyCurve;
    use crate::trace::ActivityTrace;

    /// Drive both pipelines from the same transition stream, folding
    /// the online side at `fold_at` boundaries, and assert
    /// element-identical outputs.
    fn assert_identical(
        transitions: &[(u32, u64, bool)],
        n_ranks: u32,
        end_ns: u64,
        folds: &[u64],
    ) {
        let mut trace = ActivityTrace::new(n_ranks);
        let mut online = OnlineAccounting::new(n_ranks).with_retained_steps();
        let mut fold_iter = folds.iter().copied().peekable();
        for &(rank, at, active) in transitions {
            while let Some(&f) = fold_iter.peek() {
                if at >= f {
                    online.fold();
                    fold_iter.next();
                } else {
                    break;
                }
            }
            trace.record(rank, at, active);
            online.record(rank, at, active);
        }
        let finished = online.finish(end_ns);
        let sorted = trace.sorted();
        let curve = OccupancyCurve::from_sorted(&sorted, end_ns);
        assert_eq!(
            finished.busy_ns_per_rank(),
            &sorted.busy_ns_per_rank(end_ns)[..]
        );
        assert_eq!(finished.w_max(), curve.w_max());
        assert_eq!(finished.busy_integral_ns(), curve.busy_integral_ns());
        assert_eq!(finished.average_occupancy(), curve.average_occupancy());
        for p in 1..=100u32 {
            let x = p as f64 / 100.0;
            assert_eq!(
                finished.first_reach_ns(x),
                curve.first_reach_ns(x),
                "SL at {p}%"
            );
            assert_eq!(
                finished.last_reach_ns(x),
                curve.last_reach_ns(x),
                "EL at {p}%"
            );
            assert_eq!(finished.starting_latency(x), curve.starting_latency(x));
            assert_eq!(finished.ending_latency(x), curve.ending_latency(x));
        }
        // Element-identical step list, not just identical summaries.
        assert_eq!(finished.steps().expect("retained"), curve.steps());
    }

    #[test]
    fn staircase_matches_oracle_under_any_fold_schedule() {
        let transitions = [
            (0u32, 0u64, true),
            (1, 10, true),
            (2, 20, true),
            (3, 30, true),
            (3, 70, false),
            (2, 80, false),
            (1, 90, false),
            (0, 100, false),
        ];
        assert_identical(&transitions, 4, 100, &[]);
        assert_identical(&transitions, 4, 100, &[15, 75]);
        assert_identical(&transitions, 4, 100, &[10, 20, 30, 70, 80, 90, 100]);
    }

    #[test]
    fn tied_timestamps_and_reactivation_match_oracle() {
        let transitions = [
            (0u32, 0u64, true),
            (1, 0, true),
            (1, 0, false), // same-instant swap nets to +1 at t=0
            (2, 5, true),
            (0, 5, false), // net 0 at t=5
            (2, 9, false),
            (1, 9, true),
            (1, 12, false),
            (0, 12, true), // rank 0 comes back
        ];
        assert_identical(&transitions, 3, 20, &[]);
        assert_identical(&transitions, 3, 20, &[5, 9, 12]);
    }

    #[test]
    fn open_intervals_bill_to_end() {
        // Rank 1 never goes idle; both paths bill it to end_ns.
        let transitions = [(0u32, 3u64, true), (1, 7, true), (0, 11, false)];
        assert_identical(&transitions, 2, 50, &[10]);
    }

    #[test]
    fn pseudorandom_oscillation_matches_oracle() {
        // A deterministic LCG drives many ranks through active/idle
        // cycles with frequent timestamp collisions, folded mid-stream.
        let n_ranks = 16u32;
        let mut state: Vec<bool> = vec![false; n_ranks as usize];
        let mut transitions = Vec::new();
        let mut x: u64 = 0x2545F491;
        let mut t = 0u64;
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t += (x >> 33) % 4; // collisions on purpose
            let r = ((x >> 13) % n_ranks as u64) as u32;
            let s = &mut state[r as usize];
            *s = !*s;
            transitions.push((r, t, *s));
        }
        let end = t + 10;
        assert_identical(&transitions, n_ranks, end, &[]);
        assert_identical(&transitions, n_ranks, end, &[end / 4, end / 2, 3 * end / 4]);
    }

    #[test]
    fn aggregates_without_retained_steps_match() {
        let mut online = OnlineAccounting::new(2);
        online.record(0, 0, true);
        online.record(1, 10, true);
        online.fold();
        online.record(1, 30, false);
        let fin = online.finish(40);
        assert_eq!(fin.busy_ns_per_rank(), &[40, 20]);
        assert_eq!(fin.w_max(), 2);
        assert_eq!(fin.busy_integral_ns(), 60);
        assert!(fin.steps().is_none());
        assert_eq!(fin.first_reach_ns(1.0), Some(10));
        assert_eq!(fin.last_reach_ns(1.0), Some(30));
        assert_eq!(fin.last_reach_ns(0.5), Some(40));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            seq: 3,
            n_ranks: 32,
            wall_ms: 1500,
            sim_ns: 2_000_000,
            events: 123_456,
            events_per_sec: 2.5e6,
            queue_depth: 42,
            ready_chunks: 17,
            steals_ok: 900,
            steals_empty: 100,
            quarantined: 2,
            active_workers: 30,
            w_max: 32,
            shards: vec![
                ShardSnap {
                    shard: 0,
                    now_ns: 2_000_000,
                    windows: 50,
                    events: 70_000,
                    queue_depth: 20,
                    busy_ns: 5_000,
                    wait_ns: 100,
                },
                ShardSnap {
                    shard: 1,
                    now_ns: 1_900_000,
                    windows: 50,
                    events: 53_456,
                    queue_depth: 22,
                    busy_ns: 4_000,
                    wait_ns: 1_100,
                },
            ],
        };
        let line = snap.to_json().to_string();
        let back = Snapshot::from_json(&crate::export::parse(&line).expect("parses"))
            .expect("valid snapshot");
        assert_eq!(back, snap);
        assert!((snap.steal_success_rate() - 0.9).abs() < 1e-12);
        assert_eq!(snap.shard_lag_ns(), 100_000);
        assert!(snap.progress_line().contains("steals 900 ok"));
    }

    #[test]
    fn snapshot_parse_rejects_malformed_lines() {
        let v = crate::export::parse("{\"schema\":3,\"seq\":0}").expect("valid json");
        assert!(Snapshot::from_json(&v).is_err());
        let v = crate::export::parse("{\"schema\":99}").expect("valid json");
        assert!(Snapshot::from_json(&v)
            .unwrap_err()
            .contains("newer than supported"));
    }
}
