//! Occupancy curves and the paper's starting/ending latency metric.
//!
//! From an [`ActivityTrace`] we build the
//! step function `workers(t)` — the number of active processes at time
//! `t` — and derive (paper §III):
//!
//! - `Wmax`: the maximum number of simultaneously active workers;
//! - the occupancy ratio `O(t) = workers(t) / N`;
//! - the **starting latency** `SL(x) = min{t : O(t) ≥ x} / T`: how far
//!   into the run the scheduler first drives occupancy up to `x`;
//! - the **ending latency** `EL(x) = (T − max{t : O(t) ≥ x}) / T`: how
//!   far before the end occupancy last was at least `x`.
//!
//! The paper's example: "an execution where the first time 10% of the
//! processes have work happens 5% of the execution time after beginning
//! has SL(10%) = 5%".

use crate::trace::{ActivityTrace, SortedTrace};

/// The `workers(t)` step function of one run.
#[derive(Debug, Clone)]
pub struct OccupancyCurve {
    /// `(time_ns, workers)` steps, time-sorted, starting at `t = 0`
    /// with 0 workers.
    steps: Vec<(u64, u32)>,
    n_ranks: u32,
    /// Run length used to normalize latencies.
    total_ns: u64,
}

impl OccupancyCurve {
    /// Build the curve from a trace and the run's total duration.
    ///
    /// Sorts internally; when busy-time accounting is also needed,
    /// sort once with [`ActivityTrace::sorted`] and use
    /// [`from_sorted`](Self::from_sorted) instead.
    ///
    /// # Panics
    /// Panics if the trace fails validation ([`ActivityTrace::check`]).
    pub fn from_trace(trace: &ActivityTrace, total_ns: u64) -> Self {
        trace
            .check()
            .unwrap_or_else(|e| panic!("invalid activity trace: {e}"));
        Self::from_sorted(&trace.sorted(), total_ns)
    }

    /// Build the curve from an already-sorted trace, sharing the one
    /// sorted pass with [`SortedTrace::busy_ns_per_rank`]. The caller
    /// is responsible for having validated the underlying trace
    /// ([`ActivityTrace::check`]); [`from_trace`](Self::from_trace)
    /// does both.
    ///
    /// Same-timestamp transitions are netted before the step is
    /// emitted, so only the settled worker count at each instant is
    /// recorded regardless of within-timestamp ordering.
    pub fn from_sorted(sorted: &SortedTrace<'_>, total_ns: u64) -> Self {
        let mut steps = Vec::with_capacity(sorted.len() + 1);
        steps.push((0u64, 0u32));
        let mut current: i64 = 0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted.get(i).at_ns;
            // Net all deltas at this instant so an idle→active swap at
            // the same nanosecond never shows a transient dip.
            let mut delta: i64 = 0;
            while i < sorted.len() && sorted.get(i).at_ns == t {
                delta += if sorted.get(i).active { 1 } else { -1 };
                i += 1;
            }
            current += delta;
            debug_assert!(current >= 0, "negative worker count at {t}");
            let w = current.max(0) as u32;
            match steps.last_mut() {
                Some(last) if last.0 == t => last.1 = w,
                _ => steps.push((t, w)),
            }
        }
        Self {
            steps,
            n_ranks: sorted.n_ranks(),
            total_ns,
        }
    }

    /// Number of processes in the run (the denominator of `O(t)`).
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The `(time_ns, workers)` step list, time-sorted, starting at
    /// `(0, 0)` — exposed so the streaming accounting's differential
    /// tests can assert element-identical curves, not just identical
    /// summaries.
    pub fn steps(&self) -> &[(u64, u32)] {
        &self.steps
    }

    /// Run length in nanoseconds.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// `workers(t)`: active processes at time `t_ns`.
    pub fn workers_at(&self, t_ns: u64) -> u32 {
        match self.steps.binary_search_by_key(&t_ns, |&(t, _)| t) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Maximum simultaneous workers over the whole run (paper: `Wmax`).
    pub fn w_max(&self) -> u32 {
        self.steps.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }

    /// Occupancy recovery time after a disturbance at `from_ns`: how
    /// long until occupancy is next at least `x` (fraction of ranks).
    /// `Some(0)` if it is already there; `None` if it never recovers.
    /// This is the fault-sweep metric: how quickly the scheduler
    /// refills workers after a crash or brownout knocks them idle.
    pub fn recovery_time_ns(&self, from_ns: u64, x: f64) -> Option<u64> {
        let need = self.required_workers(x);
        if self.workers_at(from_ns) >= need {
            return Some(0);
        }
        self.steps
            .iter()
            .find(|&&(t, w)| t > from_ns && w >= need)
            .map(|&(t, _)| t - from_ns)
    }

    /// First time occupancy reaches at least `x` (fraction of ranks),
    /// in nanoseconds; `None` if it never does.
    pub fn first_reach_ns(&self, x: f64) -> Option<u64> {
        let need = self.required_workers(x);
        self.steps
            .iter()
            .find(|&&(_, w)| w >= need)
            .map(|&(t, _)| t)
    }

    /// Last time occupancy is at least `x`, in nanoseconds; `None` if
    /// it never reaches `x`.
    pub fn last_reach_ns(&self, x: f64) -> Option<u64> {
        let need = self.required_workers(x);
        // The curve holds its value until the next step: the *last
        // moment* occupancy >= x is the step where it drops below,
        // or total_ns if it never drops after the final qualifying step.
        let mut last: Option<u64> = None;
        for window in self.steps.windows(2) {
            let (t0, w0) = window[0];
            let (t1, _) = window[1];
            if w0 >= need {
                let _ = t0;
                last = Some(t1);
            }
        }
        if let Some(&(t_end, w_end)) = self.steps.last() {
            if w_end >= need {
                let _ = t_end;
                last = Some(self.total_ns);
            }
        }
        last
    }

    /// Starting latency `SL(x)` as a fraction of the run, the paper's
    /// headline metric. `None` if occupancy never reaches `x`.
    pub fn starting_latency(&self, x: f64) -> Option<f64> {
        self.first_reach_ns(x)
            .map(|t| t as f64 / self.total_ns.max(1) as f64)
    }

    /// Ending latency `EL(x)` as a fraction of the run.
    pub fn ending_latency(&self, x: f64) -> Option<f64> {
        self.last_reach_ns(x)
            .map(|t| (self.total_ns.saturating_sub(t)) as f64 / self.total_ns.max(1) as f64)
    }

    /// Sample `SL` and `EL` at every integer occupancy percentage in
    /// `[1, upto_percent]`, yielding `(percent, SL, EL)` rows — the data
    /// series of Figures 4, 5, 12 and 13.
    pub fn latency_series(&self, upto_percent: u32) -> Vec<(u32, Option<f64>, Option<f64>)> {
        (1..=upto_percent)
            .map(|p| {
                let x = p as f64 / 100.0;
                (p, self.starting_latency(x), self.ending_latency(x))
            })
            .collect()
    }

    /// ∫ workers(t) dt over the run, in worker-nanoseconds: the total
    /// busy time, a cross-check against per-rank accounting.
    pub fn busy_integral_ns(&self) -> u128 {
        let mut total: u128 = 0;
        for window in self.steps.windows(2) {
            let (t0, w0) = window[0];
            let (t1, _) = window[1];
            total += (t1 - t0) as u128 * w0 as u128;
        }
        if let Some(&(t, w)) = self.steps.last() {
            total += self.total_ns.saturating_sub(t) as u128 * w as u128;
        }
        total
    }

    /// Average occupancy over the run, in `[0, 1]`.
    pub fn average_occupancy(&self) -> f64 {
        if self.total_ns == 0 || self.n_ranks == 0 {
            return 0.0;
        }
        self.busy_integral_ns() as f64 / (self.total_ns as f64 * self.n_ranks as f64)
    }

    fn required_workers(&self, x: f64) -> u32 {
        assert!(
            (0.0..=1.0).contains(&x),
            "occupancy fraction {x} outside [0,1]"
        );
        (x * self.n_ranks as f64).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 ranks: 0 starts at t=0, 1 at 10, 2 at 20, 3 at 30; all stop in
    /// reverse order at 70, 80, 90, 100. Total = 100.
    fn staircase() -> OccupancyCurve {
        let mut tr = ActivityTrace::new(4);
        for (r, t) in [(0u32, 0u64), (1, 10), (2, 20), (3, 30)] {
            tr.record(r, t, true);
        }
        for (r, t) in [(3u32, 70u64), (2, 80), (1, 90), (0, 100)] {
            tr.record(r, t, false);
        }
        OccupancyCurve::from_trace(&tr, 100)
    }

    #[test]
    fn workers_step_function() {
        let c = staircase();
        assert_eq!(c.workers_at(0), 1);
        assert_eq!(c.workers_at(5), 1);
        assert_eq!(c.workers_at(10), 2);
        assert_eq!(c.workers_at(35), 4);
        assert_eq!(c.workers_at(75), 3);
        assert_eq!(c.workers_at(100), 0);
        assert_eq!(c.w_max(), 4);
    }

    #[test]
    fn starting_latency_matches_paper_definition() {
        let c = staircase();
        // 25% of 4 ranks = 1 worker, first at t=0 -> SL = 0.
        assert_eq!(c.starting_latency(0.25), Some(0.0));
        // 50% = 2 workers at t=10 -> SL = 10%.
        assert_eq!(c.starting_latency(0.5), Some(0.10));
        // 100% = 4 workers at t=30 -> SL = 30%.
        assert_eq!(c.starting_latency(1.0), Some(0.30));
    }

    #[test]
    fn ending_latency_matches_paper_definition() {
        let c = staircase();
        // 4 workers last at t=70 -> EL = (100-70)/100.
        assert_eq!(c.ending_latency(1.0), Some(0.30));
        // 2 workers until t=90 -> EL = 10%.
        assert_eq!(c.ending_latency(0.5), Some(0.10));
        // >=1 worker until the very end -> EL = 0.
        assert_eq!(c.ending_latency(0.25), Some(0.0));
    }

    #[test]
    fn unreachable_occupancy_returns_none() {
        let mut tr = ActivityTrace::new(4);
        tr.record(0, 0, true);
        tr.record(0, 50, false);
        let c = OccupancyCurve::from_trace(&tr, 100);
        assert_eq!(c.starting_latency(0.5), None);
        assert_eq!(c.ending_latency(0.5), None);
        assert_eq!(c.w_max(), 1);
    }

    #[test]
    fn busy_integral_equals_trace_busy_time() {
        let c = staircase();
        // Busy: rank0 100, rank1 80, rank2 60, rank3 40 = 280.
        assert_eq!(c.busy_integral_ns(), 280);
        assert!((c.average_occupancy() - 0.70).abs() < 1e-12);
    }

    #[test]
    fn latency_series_is_monotone() {
        let c = staircase();
        let series = c.latency_series(100);
        let mut prev_sl = 0.0;
        for (_, sl, _) in &series {
            let sl = sl.expect("staircase reaches all occupancies");
            assert!(sl >= prev_sl, "SL must be non-decreasing in x");
            prev_sl = sl;
        }
    }

    #[test]
    fn simultaneous_transitions_collapse_into_one_step() {
        let mut tr = ActivityTrace::new(2);
        tr.record(0, 10, true);
        tr.record(1, 10, true);
        tr.record(0, 20, false);
        tr.record(1, 20, false);
        let c = OccupancyCurve::from_trace(&tr, 30);
        assert_eq!(c.workers_at(10), 2);
        assert_eq!(c.workers_at(20), 0);
    }

    #[test]
    fn from_sorted_shares_the_single_sorted_pass() {
        let mut tr = ActivityTrace::new(4);
        for (r, t) in [(0u32, 0u64), (1, 10), (2, 20), (3, 30)] {
            tr.record(r, t, true);
        }
        for (r, t) in [(3u32, 70u64), (2, 80), (1, 90), (0, 100)] {
            tr.record(r, t, false);
        }
        let sorted = tr.sorted();
        let via_sorted = OccupancyCurve::from_sorted(&sorted, 100);
        let via_trace = OccupancyCurve::from_trace(&tr, 100);
        for t in [0u64, 5, 10, 35, 75, 100] {
            assert_eq!(via_sorted.workers_at(t), via_trace.workers_at(t));
        }
        assert_eq!(via_sorted.busy_integral_ns(), 280);
        // ...and the same sorted pass answers busy time.
        assert_eq!(sorted.busy_ns_per_rank(100), vec![100, 80, 60, 40]);
    }

    #[test]
    #[should_panic(expected = "invalid activity trace")]
    fn from_trace_rejects_broken_traces() {
        let mut tr = ActivityTrace::new(1);
        // Every rank starts idle, so an initial idle record is invalid.
        tr.record(0, 0, false);
        OccupancyCurve::from_trace(&tr, 10);
    }
}
