//! Efficiency, speedup, and human-readable report rendering.
//!
//! The paper's headline charts report *efficiency* (Figure 2) and
//! *speedup* (Figures 3, 6, 9, 11) against an extrapolated
//! single-process time `T₁`. With a simulator we can compute `T₁`
//! exactly: it is the tree size times the per-node cost, because a
//! single process never communicates.

use std::fmt::Write as _;

/// Performance summary of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perf {
    /// Number of ranks.
    pub n_ranks: u32,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Single-process reference time in nanoseconds.
    pub t1_ns: u64,
}

impl Perf {
    /// Speedup `T₁ / T_N`.
    pub fn speedup(&self) -> f64 {
        self.t1_ns as f64 / self.makespan_ns.max(1) as f64
    }

    /// Efficiency `T₁ / (N · T_N)`, the y-axis of Figure 2.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.n_ranks as f64
    }
}

/// Render rows as an aligned text table with a header.
///
/// All rows must have the same arity as the header; numbers should be
/// pre-formatted by the caller.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity differs from header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}", width = widths[i]);
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Write rows as CSV with minimal quoting (fields containing commas,
/// quotes or newlines are double-quoted).
pub fn write_csv<W: std::io::Write>(
    mut w: W,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let quote = |field: &str| -> String {
        if field.contains([',', '"', '\n']) {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    };
    writeln!(
        w,
        "{}",
        header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            w,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Render an ASCII chart of one or more `(x, y)` series, normalized to
/// the data range — enough to eyeball the shape of a latency curve or a
/// speedup trend in a terminal. Each series gets a distinct glyph.
pub fn ascii_chart(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 8 && height >= 2, "chart too small to draw");
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = format!("{title}\n");
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = glyph;
        }
    }
    let _ = writeln!(out, "y: [{ymin:.3}, {ymax:.3}]  x: [{xmin:.3}, {xmax:.3}]");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_math() {
        let p = Perf {
            n_ranks: 4,
            makespan_ns: 250,
            t1_ns: 1_000,
        };
        assert_eq!(p.speedup(), 4.0);
        assert_eq!(p.efficiency(), 1.0);
        let worse = Perf {
            n_ranks: 4,
            makespan_ns: 500,
            t1_ns: 1_000,
        };
        assert_eq!(worse.efficiency(), 0.5);
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["x", "note"],
            &[vec!["1".into(), "hello, \"world\"".into()]],
        )
        .expect("write to Vec cannot fail");
        let s = String::from_utf8(buf).expect("valid utf8");
        assert_eq!(s, "x,note\n1,\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    fn chart_renders_all_series() {
        let s = ascii_chart(
            "test",
            &[
                ("up", vec![(0.0, 0.0), (1.0, 1.0)]),
                ("down", vec![(0.0, 1.0), (1.0, 0.0)]),
            ],
            20,
            5,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
    }

    #[test]
    fn chart_survives_degenerate_data() {
        let s = ascii_chart("flat", &[("p", vec![(1.0, 2.0)])], 10, 3);
        assert!(s.contains('*'));
        let empty = ascii_chart("none", &[("p", vec![])], 10, 3);
        assert!(empty.contains("no data"));
        let nan = ascii_chart("nan", &[("p", vec![(f64::NAN, 1.0)])], 10, 3);
        assert!(nan.contains("no data"));
    }
}
