//! Summary statistics for multi-seed experiment sweeps.
//!
//! The paper reports single runs per configuration (machine time on the
//! K Computer was scarce); a simulator has no such excuse. The sweep
//! binaries can repeat every configuration across seeds and report mean
//! ± deviation, so EXPERIMENTS.md can state which gaps are robust.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build directly from samples.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for x in samples {
            s.add(x);
        }
        s
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "summary samples must be finite, got {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample (`NaN`-free by construction; 0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `mean ± stddev` formatted for reports.
    pub fn display(&self, prec: usize) -> String {
        format!("{:.prec$} ± {:.prec$}", self.mean(), self.stddev())
    }

    /// Welch's t-statistic against another summary — a quick robustness
    /// check that two configurations actually differ.
    pub fn welch_t(&self, other: &Summary) -> f64 {
        let se2 = self.stderr().powi(2) + other.stderr().powi(2);
        if se2 == 0.0 {
            return 0.0;
        }
        (self.mean() - other.mean()) / se2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_match_known_values() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev() - 2.1381).abs() < 1e-3, "got {}", s.stddev());
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::of([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn empty_summary_is_calm() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn welch_t_separates_distinct_means() {
        let a = Summary::of([10.0, 10.5, 9.5, 10.2, 9.8]);
        let b = Summary::of([12.0, 12.5, 11.5, 12.2, 11.8]);
        assert!(a.welch_t(&b).abs() > 5.0, "t = {}", a.welch_t(&b));
        assert!(a.welch_t(&a).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert_eq!(s.display(1), "2.0 ± 1.0");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }
}
