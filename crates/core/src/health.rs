//! Online victim-health tracking for adaptive victim selection.
//!
//! The paper's policies are static: they keep hammering crashed,
//! browned-out, or partitioned victims exactly as if they were healthy.
//! This module is the learning half of
//! [`VictimPolicy::Adaptive`](crate::victim::VictimPolicy::Adaptive):
//! a per-victim health record
//! fed from the exact sites where the scheduler already bumps its
//! [`Counters`](crate::scheduler::Counters), driving
//!
//! - a **score EWMA** over steal outcomes (success = 1, answered-empty
//!   = 0.5, timeout = 0) that re-weights the base policy's draws via
//!   bounded rejection (see `Worker::send_steal_request`), and
//! - a **quarantine state machine**: after `quarantine_after`
//!   consecutive timeouts a victim is quarantined for an exponentially
//!   growing probation window; the first draw landing on an expired
//!   window is the *probe steal* — if it times out the victim is
//!   re-quarantined with a deeper backoff, and any reply (even a stale
//!   or duplicated one) re-admits it immediately.
//!
//! Everything here is deterministic: updates are pure functions of the
//! steal outcomes and simulated clock, and the overlay draws from the
//! rank's own RNG stream, so runs stay bit-identical across `--threads`.
//! With the adaptive layer off the tracker is never constructed and the
//! scheduler makes zero extra RNG draws — the event schedule is
//! byte-identical to a build without this module.

use dws_simnet::Rank;
use std::collections::BTreeMap;

/// Tuning knobs of the adaptive layer. The defaults are deliberately
/// conservative: reachable victims keep at least `min_accept` of their
/// base probability, so the learned distribution never starves a rank.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCfg {
    /// EWMA smoothing factor for the outcome score and the RTT
    /// estimate (weight of the newest sample).
    pub ewma_beta: f64,
    /// Consecutive steal timeouts before a victim is quarantined.
    pub quarantine_after: u32,
    /// First probation window length, in simulated nanoseconds.
    pub probation_base_ns: u64,
    /// Cap on probation-window doublings (window length saturates at
    /// `probation_base_ns << cap`).
    pub probation_max_doublings: u32,
    /// Floor on the overlay acceptance probability of a non-quarantined
    /// victim: even a victim with score 0 keeps this share of its base
    /// draw weight.
    pub min_accept: f64,
    /// Bounded-rejection budget per steal: draws from the base selector
    /// before falling back to a deterministic scan. Keeps the overlay
    /// O(1) on top of the base policy's O(1) draw.
    pub max_overlay_rounds: u32,
}

impl Default for AdaptiveCfg {
    fn default() -> Self {
        Self {
            ewma_beta: 0.25,
            quarantine_after: 2,
            probation_base_ns: 1_000_000,
            probation_max_doublings: 8,
            min_accept: 0.15,
            max_overlay_rounds: 8,
        }
    }
}

/// What the overlay should do with a drawn victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Not quarantined: accept with probability `accept_weight`.
    Allow,
    /// Quarantined with the probation window still open: redraw.
    Reject,
    /// Probation window expired; this draw is the probe steal — send
    /// it unconditionally (bypasses the acceptance weight).
    Probe,
}

/// One victim's learned health record.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimHealth {
    /// Outcome EWMA in `[0, 1]`; starts at 1 (innocent until proven
    /// unreachable).
    pub score: f64,
    /// EWMA of observed steal round trips, in nanoseconds (0 until the
    /// first reply).
    pub rtt_ewma_ns: f64,
    /// Replies carrying work.
    pub successes: u64,
    /// Replies answered empty (the victim is alive but poor).
    pub empties: u64,
    /// Steal requests to this victim that timed out.
    pub timeouts: u64,
    /// Consecutive timeouts since the last reply (quarantine trigger).
    pub consecutive_timeouts: u32,
    /// End of the current probation window (0 = not quarantined).
    pub quarantined_until_ns: u64,
    /// Probation-window doublings applied so far (reset on any reply).
    pub backoff_doublings: u32,
    /// A probe steal is in flight: the next timeout re-quarantines
    /// immediately instead of counting toward `quarantine_after`.
    pub on_probation: bool,
    /// Times this victim entered quarantine.
    pub quarantines: u64,
    /// Probe steals issued to this victim.
    pub probes: u64,
}

impl Default for VictimHealth {
    fn default() -> Self {
        Self {
            score: 1.0,
            rtt_ewma_ns: 0.0,
            successes: 0,
            empties: 0,
            timeouts: 0,
            consecutive_timeouts: 0,
            quarantined_until_ns: 0,
            backoff_doublings: 0,
            on_probation: false,
            quarantines: 0,
            probes: 0,
        }
    }
}

/// Per-rank health ledger over this rank's victims.
///
/// Entries are allocated lazily on the first recorded outcome (the
/// overlay's [`gate`](Self::gate) never inserts), so memory is bounded
/// by the set of victims actually contacted. A `BTreeMap` keeps
/// iteration order deterministic for the JSON report.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: AdaptiveCfg,
    map: BTreeMap<Rank, VictimHealth>,
}

impl HealthTracker {
    /// Fresh tracker with the given knobs.
    pub fn new(cfg: AdaptiveCfg) -> Self {
        Self {
            cfg,
            map: BTreeMap::new(),
        }
    }

    /// The configured knobs.
    pub fn cfg(&self) -> &AdaptiveCfg {
        &self.cfg
    }

    fn readmit(e: &mut VictimHealth) {
        e.consecutive_timeouts = 0;
        e.quarantined_until_ns = 0;
        e.backoff_doublings = 0;
        e.on_probation = false;
    }

    /// A steal to `victim` was answered with work after `rtt_ns`.
    pub fn on_success(&mut self, victim: Rank, rtt_ns: u64) {
        let beta = self.cfg.ewma_beta;
        let e = self.map.entry(victim).or_default();
        e.successes += 1;
        e.score = (1.0 - beta) * e.score + beta;
        e.rtt_ewma_ns = if e.rtt_ewma_ns == 0.0 {
            rtt_ns as f64
        } else {
            (1.0 - beta) * e.rtt_ewma_ns + beta * rtt_ns as f64
        };
        Self::readmit(e);
    }

    /// A steal to `victim` was answered empty after `rtt_ns`: the
    /// victim is reachable but had no work — half credit.
    pub fn on_empty(&mut self, victim: Rank, rtt_ns: u64) {
        let beta = self.cfg.ewma_beta;
        let e = self.map.entry(victim).or_default();
        e.empties += 1;
        e.score = (1.0 - beta) * e.score + beta * 0.5;
        e.rtt_ewma_ns = if e.rtt_ewma_ns == 0.0 {
            rtt_ns as f64
        } else {
            (1.0 - beta) * e.rtt_ewma_ns + beta * rtt_ns as f64
        };
        Self::readmit(e);
    }

    /// Any other sign of life from `victim` (late work, duplicated or
    /// stale replies): re-admit without touching the score — the reply
    /// proves reachability but its timing proves nothing.
    pub fn on_alive(&mut self, victim: Rank) {
        if let Some(e) = self.map.get_mut(&victim) {
            Self::readmit(e);
        }
    }

    /// A steal to `victim` timed out at simulated time `now_ns`.
    /// Returns `true` if this pushed the victim into quarantine.
    pub fn on_timeout(&mut self, victim: Rank, now_ns: u64) -> bool {
        let cfg = self.cfg.clone();
        let e = self.map.entry(victim).or_default();
        e.timeouts += 1;
        e.score *= 1.0 - cfg.ewma_beta;
        let quarantine = if e.on_probation {
            // The probe itself timed out: straight back in, deeper.
            e.on_probation = false;
            true
        } else {
            e.consecutive_timeouts += 1;
            e.consecutive_timeouts >= cfg.quarantine_after
        };
        if quarantine {
            let window =
                cfg.probation_base_ns << e.backoff_doublings.min(cfg.probation_max_doublings);
            e.quarantined_until_ns = now_ns.saturating_add(window);
            e.backoff_doublings += 1;
            e.consecutive_timeouts = 0;
            e.quarantines += 1;
        }
        quarantine
    }

    /// Admission decision for a drawn victim at simulated time
    /// `now_ns`. Never inserts: an unseen victim is simply allowed.
    pub fn gate(&mut self, victim: Rank, now_ns: u64) -> Gate {
        let Some(e) = self.map.get_mut(&victim) else {
            return Gate::Allow;
        };
        if e.quarantined_until_ns == 0 {
            return Gate::Allow;
        }
        if now_ns < e.quarantined_until_ns {
            return Gate::Reject;
        }
        // Window expired: this draw is the probe.
        e.quarantined_until_ns = 0;
        e.on_probation = true;
        e.probes += 1;
        Gate::Probe
    }

    /// Overlay acceptance probability for a non-quarantined victim:
    /// the score clamped to `[min_accept, 1]`; unseen victims are 1.
    pub fn accept_weight(&self, victim: Rank) -> f64 {
        match self.map.get(&victim) {
            Some(e) => e.score.clamp(self.cfg.min_accept, 1.0),
            None => 1.0,
        }
    }

    /// True if `victim` sits inside an open probation window.
    pub fn is_quarantined(&self, victim: Rank, now_ns: u64) -> bool {
        self.map
            .get(&victim)
            .is_some_and(|e| e.quarantined_until_ns != 0 && now_ns < e.quarantined_until_ns)
    }

    /// All tracked victims in rank order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &VictimHealth)> {
        self.map.iter().map(|(r, e)| (*r, e))
    }

    /// Number of tracked victims.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no outcome has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_simnet::DetRng;

    fn tracker() -> HealthTracker {
        HealthTracker::new(AdaptiveCfg::default())
    }

    #[test]
    fn unseen_victims_pass_at_full_weight() {
        let mut t = tracker();
        assert_eq!(t.gate(5, 1_000), Gate::Allow);
        assert_eq!(t.accept_weight(5), 1.0);
        assert!(t.is_empty(), "gate must never allocate an entry");
    }

    #[test]
    fn consecutive_timeouts_quarantine_and_backoff_doubles() {
        let cfg = AdaptiveCfg::default();
        let mut t = tracker();
        assert!(!t.on_timeout(3, 100));
        assert!(t.on_timeout(3, 200), "second timeout quarantines");
        let until1 = 200 + cfg.probation_base_ns;
        assert!(t.is_quarantined(3, until1 - 1));
        assert!(!t.is_quarantined(3, until1));
        // Expired window: the next gate is the probe.
        assert_eq!(t.gate(3, until1), Gate::Probe);
        // Probe times out: immediate re-quarantine, doubled window.
        assert!(t.on_timeout(3, until1 + 10));
        assert!(t.is_quarantined(3, until1 + 10 + 2 * cfg.probation_base_ns - 1));
    }

    #[test]
    fn any_reply_readmits_and_resets_backoff() {
        let mut t = tracker();
        t.on_timeout(7, 100);
        t.on_timeout(7, 200);
        assert!(t.is_quarantined(7, 300));
        t.on_alive(7);
        assert!(!t.is_quarantined(7, 300));
        assert_eq!(t.gate(7, 300), Gate::Allow);
        // Backoff reset: the next quarantine starts at the base window.
        t.on_timeout(7, 400);
        t.on_timeout(7, 500);
        let base = AdaptiveCfg::default().probation_base_ns;
        assert!(t.is_quarantined(7, 500 + base - 1));
        assert!(!t.is_quarantined(7, 500 + base));
    }

    #[test]
    fn scores_track_outcomes() {
        let mut t = tracker();
        t.on_empty(1, 1_000);
        let after_empty = t.accept_weight(1);
        assert!(after_empty < 1.0 && after_empty > 0.5);
        t.on_timeout(1, 10);
        assert!(t.accept_weight(1) < after_empty);
        for _ in 0..50 {
            t.on_timeout(1, 10);
        }
        assert_eq!(
            t.accept_weight(1),
            AdaptiveCfg::default().min_accept,
            "score is floored at min_accept"
        );
        for _ in 0..50 {
            t.on_success(1, 1_000);
        }
        assert!(t.accept_weight(1) > 0.99);
    }

    #[test]
    fn rtt_ewma_follows_samples() {
        let mut t = tracker();
        t.on_success(2, 1_000);
        let (_, h) = t.iter().next().expect("entry exists");
        assert_eq!(h.rtt_ewma_ns, 1_000.0);
        t.on_success(2, 2_000);
        let (_, h) = t.iter().next().expect("entry exists");
        assert!(h.rtt_ewma_ns > 1_000.0 && h.rtt_ewma_ns < 2_000.0);
    }

    /// Property: for arbitrary outcome sequences, a quarantined victim
    /// is rejected by every gate call strictly inside its probation
    /// window, the first gate at or after expiry is the probe, and the
    /// probation window never exceeds the configured cap.
    #[test]
    fn quarantine_gate_property() {
        let cfg = AdaptiveCfg::default();
        let max_window = cfg.probation_base_ns << cfg.probation_max_doublings;
        for seed in 0..20u64 {
            let mut rng = DetRng::new(seed);
            let mut t = HealthTracker::new(cfg.clone());
            let mut now = 0u64;
            let mut quarantined_at: Option<u64> = None;
            for _ in 0..400 {
                now += 1 + rng.next_below(500_000);
                let victim = 1 + rng.next_below(4) as Rank;
                match rng.next_below(5) {
                    0 => {
                        t.on_success(victim, 1_000);
                        if victim == 1 {
                            quarantined_at = None;
                        }
                    }
                    1 => {
                        t.on_alive(victim);
                        if victim == 1 {
                            quarantined_at = None;
                        }
                    }
                    _ => {
                        let q = t.on_timeout(victim, now);
                        if victim == 1 && q {
                            quarantined_at = Some(now);
                        }
                    }
                }
                // Probe the gate of victim 1 at a random later instant.
                let at = now + rng.next_below(2 * max_window);
                let was_quarantined = t.is_quarantined(1, at);
                let g = t.gate(1, at);
                match g {
                    Gate::Reject => {
                        assert!(was_quarantined, "reject implies an open window");
                        let q_at = quarantined_at.expect("a quarantine was entered");
                        assert!(
                            at < q_at + max_window,
                            "window extends past the configured cap"
                        );
                    }
                    Gate::Probe => {
                        assert!(!was_quarantined, "probe only fires once the window expired");
                        // Probe consumes the window: gate is open now.
                        assert_eq!(t.gate(1, at), Gate::Allow);
                        quarantined_at = None;
                    }
                    Gate::Allow => {
                        assert!(!was_quarantined);
                    }
                }
            }
        }
    }
}
