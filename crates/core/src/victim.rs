//! Victim selection strategies — the heart of the paper.
//!
//! Three strategies, matching §II-A and §IV:
//!
//! - [`VictimPolicy::RoundRobin`] — the reference UTS scheme: "a
//!   process with rank i will choose as its first victim its neighbor
//!   (rank i+1 mod N). Subsequent steals will choose the next neighbor
//!   in a round-robin fashion. Notice that a successful steal does not
//!   impact this choice: the next search for work will start at the
//!   neighbor of the last victim."
//! - [`VictimPolicy::Uniform`] — "choosing with a uniform random
//!   distribution over the ranks of all other MPI processes one victim
//!   to steal. The process is repeated as long as needed, without
//!   modification, until work is found."
//! - [`VictimPolicy::DistanceSkewed`] — "while preserving the ability
//!   to steal any process, weight the probability of one process
//!   stealing another by the distance between those two":
//!   `w(i,j) = 1/e(i,j)` (1 when `e = 0`), normalized over `j ≠ i`.
//!   The exponent `α` generalizes the paper's `α = 1` for the
//!   skew-exponent ablation (`w = 1/e^α`).
//!
//! Two interchangeable samplers implement the skewed draw: a Walker
//! alias table (exact, `O(N)` memory per rank — what GSL does) and a
//! rejection sampler (`O(1)` memory, needed at 8,192 ranks where
//! per-rank alias tables would cost gigabytes). Both realize the same
//! distribution; a statistical test in this module and the
//! `ablation_skew_impl` bench hold them to that.

use crate::alias::AliasTable;
use dws_simnet::DetRng;
use dws_topology::{Job, Rank};
use std::sync::Arc;

/// How a thief picks its next victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VictimPolicy {
    /// Deterministic next-neighbour round robin (reference UTS).
    RoundRobin,
    /// Uniform random over all other ranks ("Rand").
    Uniform,
    /// Distance-skewed random ("Tofu"): `w(i,j) = 1/e(i,j)^alpha`.
    DistanceSkewed {
        /// Skew exponent; the paper uses 1.0.
        alpha: f64,
    },
    /// Extension (paper §VII, "alternative victim selection
    /// strategies"): weight victims by the *inverse modelled message
    /// latency* instead of the Euclidean coordinate distance —
    /// `w(i,j) = 1/latency(i,j)^alpha`. Unlike the coordinate skew,
    /// this sees the full latency structure (blade/cube/rack classes
    /// and same-node transport), not just geometry.
    LatencySkewed {
        /// Skew exponent.
        alpha: f64,
    },
    /// Extension (related work §VI, hierarchical work stealing): try
    /// uniformly among *same-node* ranks for `local_tries` consecutive
    /// attempts, then fall back to uniform over everyone. Degenerates
    /// to [`VictimPolicy::Uniform`] under 1/N mappings (no node mates).
    Hierarchical {
        /// Consecutive local attempts before widening the search.
        local_tries: u32,
    },
}

impl VictimPolicy {
    /// The paper's name for the strategy (used in figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            VictimPolicy::RoundRobin => "Reference",
            VictimPolicy::Uniform => "Rand",
            VictimPolicy::DistanceSkewed { .. } => "Tofu",
            VictimPolicy::LatencySkewed { .. } => "LatSkew",
            VictimPolicy::Hierarchical { .. } => "Hier",
        }
    }

    /// Build the per-rank selector state.
    ///
    /// `alias_threshold` bounds the rank count up to which the skewed
    /// strategy precomputes an exact alias table; beyond it, rejection
    /// sampling keeps memory flat. Both draw from the same
    /// distribution.
    pub fn build(&self, job: &Arc<Job>, me: Rank, alias_threshold: u32) -> VictimSelector {
        let n = job.n_ranks();
        assert!(n >= 2, "victim selection needs at least two ranks");
        match *self {
            VictimPolicy::RoundRobin => VictimSelector::RoundRobin {
                n,
                cursor: (me + 1) % n,
                me,
            },
            VictimPolicy::Uniform => VictimSelector::Uniform { n, me },
            VictimPolicy::DistanceSkewed { alpha } => {
                if n <= alias_threshold {
                    let weights: Vec<f64> = (0..n)
                        .filter(|&j| j != me)
                        .map(|j| skew_weight(job, me, j, alpha))
                        .collect();
                    VictimSelector::SkewedAlias {
                        table: AliasTable::new(&weights),
                        me,
                    }
                } else {
                    VictimSelector::SkewedRejection {
                        job: Arc::clone(job),
                        me,
                        alpha,
                    }
                }
            }
            VictimPolicy::LatencySkewed { alpha } => {
                // Latency weights are bounded but not by 1, so the O(1)
                // rejection trick does not apply directly; use an alias
                // table at any scale (memory documented in DESIGN.md).
                let weights: Vec<f64> = (0..n)
                    .filter(|&j| j != me)
                    .map(|j| latency_weight(job, me, j, alpha))
                    .collect();
                VictimSelector::SkewedAlias {
                    table: AliasTable::new(&weights),
                    me,
                }
            }
            VictimPolicy::Hierarchical { local_tries } => {
                let mates: Vec<Rank> = (0..n)
                    .filter(|&j| j != me && job.same_node(me, j))
                    .collect();
                VictimSelector::Hierarchical {
                    mates,
                    n,
                    me,
                    local_tries,
                    tries_left: local_tries,
                }
            }
        }
    }

    /// The normalized probability `p(i, j)` this policy assigns — the
    /// quantity plotted in Figure 8. Uniform over others for the
    /// non-skewed random policy; `None` for the deterministic one.
    pub fn probability(&self, job: &Job, i: Rank, j: Rank) -> Option<f64> {
        if i == j {
            return Some(0.0);
        }
        match *self {
            VictimPolicy::RoundRobin => None,
            VictimPolicy::Uniform => Some(1.0 / (job.n_ranks() - 1) as f64),
            VictimPolicy::DistanceSkewed { alpha } => {
                let total: f64 = (0..job.n_ranks())
                    .filter(|&k| k != i)
                    .map(|k| skew_weight(job, i, k, alpha))
                    .sum();
                Some(skew_weight(job, i, j, alpha) / total)
            }
            VictimPolicy::LatencySkewed { alpha } => {
                let total: f64 = (0..job.n_ranks())
                    .filter(|&k| k != i)
                    .map(|k| latency_weight(job, i, k, alpha))
                    .sum();
                Some(latency_weight(job, i, j, alpha) / total)
            }
            // The hierarchical scheme's draw distribution depends on
            // its retry state, so a static PDF is not defined.
            VictimPolicy::Hierarchical { .. } => None,
        }
    }
}

/// Extension weight: inverse modelled one-way latency (for a
/// steal-request-sized message), raised to `alpha`.
#[inline]
pub fn latency_weight(job: &Job, i: Rank, j: Rank, alpha: f64) -> f64 {
    let lat = job.latency_ns(i, j, 16) as f64;
    lat.powf(alpha).recip()
}

/// The paper's weight: `1/e(i,j)^alpha`, with `w = 1` when the ranks
/// share a node (`e = 0`).
#[inline]
pub fn skew_weight(job: &Job, i: Rank, j: Rank, alpha: f64) -> f64 {
    let e = job.euclidean(i, j);
    if e == 0.0 {
        1.0
    } else {
        e.powf(alpha).recip()
    }
}

/// Per-rank victim-selection state.
pub enum VictimSelector {
    /// Deterministic round robin with a persistent cursor.
    RoundRobin {
        /// Rank count.
        n: u32,
        /// Next victim to try.
        cursor: Rank,
        /// Owning rank (skipped by the cursor).
        me: Rank,
    },
    /// Uniform over the other ranks.
    Uniform {
        /// Rank count.
        n: u32,
        /// Owning rank.
        me: Rank,
    },
    /// Distance-skewed via a precomputed alias table (small N).
    SkewedAlias {
        /// Table over the `n − 1` other ranks, in rank order.
        table: AliasTable,
        /// Owning rank.
        me: Rank,
    },
    /// Distance-skewed via rejection sampling (large N, O(1) memory).
    SkewedRejection {
        /// Topology handle for distance queries.
        job: Arc<Job>,
        /// Owning rank.
        me: Rank,
        /// Skew exponent.
        alpha: f64,
    },
    /// Two-level hierarchical selection: node mates first, then global.
    Hierarchical {
        /// Ranks sharing this rank's node.
        mates: Vec<Rank>,
        /// Total rank count.
        n: u32,
        /// Owning rank.
        me: Rank,
        /// Local attempts per burst.
        local_tries: u32,
        /// Local attempts remaining before widening.
        tries_left: u32,
    },
}

impl VictimSelector {
    /// Pick the next victim to try. Never returns the owning rank.
    pub fn next_victim(&mut self, rng: &mut DetRng) -> Rank {
        match self {
            VictimSelector::RoundRobin { n, cursor, me } => {
                let mut v = *cursor;
                if v == *me {
                    v = (v + 1) % *n;
                }
                *cursor = (v + 1) % *n;
                v
            }
            VictimSelector::Uniform { n, me } => {
                let draw = rng.next_below(*n as u64 - 1) as u32;
                if draw >= *me {
                    draw + 1
                } else {
                    draw
                }
            }
            VictimSelector::SkewedAlias { table, me } => {
                let idx = table.sample(rng) as u32;
                if idx >= *me {
                    idx + 1
                } else {
                    idx
                }
            }
            VictimSelector::SkewedRejection { job, me, alpha } => {
                // Proposal: uniform over others. Accept with w/1.0 —
                // valid because e >= 1 between distinct nodes, so
                // w = 1/e^alpha <= 1 (and w = 1 for node mates).
                let n = job.n_ranks();
                loop {
                    let draw = rng.next_below(n as u64 - 1) as u32;
                    let j = if draw >= *me { draw + 1 } else { draw };
                    let w = skew_weight(job, *me, j, *alpha);
                    if rng.next_f64() < w {
                        return j;
                    }
                }
            }
            VictimSelector::Hierarchical {
                mates,
                n,
                me,
                local_tries,
                tries_left,
            } => {
                if !mates.is_empty() && *tries_left > 0 {
                    *tries_left -= 1;
                    let idx = rng.next_below(mates.len() as u64) as usize;
                    mates[idx]
                } else {
                    // One global draw, then restart the local burst.
                    *tries_left = *local_tries;
                    let draw = rng.next_below(*n as u64 - 1) as u32;
                    if draw >= *me {
                        draw + 1
                    } else {
                        draw
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_topology::RankMapping;

    fn job(n: u32, mapping: RankMapping) -> Arc<Job> {
        Arc::new(Job::compact(n, mapping))
    }

    #[test]
    fn round_robin_walks_neighbours_and_skips_self() {
        let job = job(4, RankMapping::OneToOne);
        let mut sel = VictimPolicy::RoundRobin.build(&job, 2, 1024);
        let mut rng = DetRng::new(0);
        let picks: Vec<Rank> = (0..6).map(|_| sel.next_victim(&mut rng)).collect();
        assert_eq!(picks, vec![3, 0, 1, 3, 0, 1], "cursor must skip rank 2");
    }

    #[test]
    fn round_robin_cursor_persists_across_searches() {
        // The paper: "a successful steal does not impact this choice" —
        // our cursor simply continues; there is no reset API at all.
        let job = job(8, RankMapping::OneToOne);
        let mut sel = VictimPolicy::RoundRobin.build(&job, 0, 1024);
        let mut rng = DetRng::new(0);
        assert_eq!(sel.next_victim(&mut rng), 1);
        assert_eq!(sel.next_victim(&mut rng), 2);
        // ... steal succeeds here, search later resumes at 3 ...
        assert_eq!(sel.next_victim(&mut rng), 3);
    }

    #[test]
    fn uniform_covers_all_other_ranks() {
        let job = job(8, RankMapping::OneToOne);
        let mut sel = VictimPolicy::Uniform.build(&job, 3, 1024);
        let mut rng = DetRng::new(7);
        let mut seen = [0u32; 8];
        for _ in 0..8_000 {
            seen[sel.next_victim(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[3], 0, "must never pick self");
        for (r, &c) in seen.iter().enumerate() {
            if r != 3 {
                assert!(
                    (c as i64 - 1_143).abs() < 200,
                    "rank {r} picked {c} times, expected ~1143"
                );
            }
        }
    }

    #[test]
    fn skewed_prefers_nearby_ranks() {
        let job = job(64, RankMapping::OneToOne);
        let mut sel = VictimPolicy::DistanceSkewed { alpha: 1.0 }.build(&job, 0, 1024);
        let mut rng = DetRng::new(11);
        let mut counts = vec![0u32; 64];
        let draws = 60_000;
        for _ in 0..draws {
            counts[sel.next_victim(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        // Empirical frequencies must match the analytic distribution.
        for j in 1..64u32 {
            let p = VictimPolicy::DistanceSkewed { alpha: 1.0 }
                .probability(&job, 0, j)
                .expect("skewed policy has probabilities");
            let expect = p * draws as f64;
            if expect > 200.0 {
                let err = (counts[j as usize] as f64 - expect).abs() / expect;
                assert!(
                    err < 0.15,
                    "rank {j}: {} draws vs expected {expect:.0}",
                    counts[j as usize]
                );
            }
        }
    }

    #[test]
    fn alias_and_rejection_samplers_agree() {
        let job = job(48, RankMapping::OneToOne);
        let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let draws = 50_000;
        let histogram = |mut sel: VictimSelector, seed: u64| {
            let mut rng = DetRng::new(seed);
            let mut counts = vec![0f64; 48];
            for _ in 0..draws {
                counts[sel.next_victim(&mut rng) as usize] += 1.0;
            }
            counts
        };
        // threshold 1024 -> alias; threshold 0 -> rejection.
        let a = histogram(policy.build(&job, 5, 1024), 3);
        let r = histogram(policy.build(&job, 5, 0), 4);
        for j in 0..48 {
            let diff = (a[j] - r[j]).abs();
            let scale = a[j].max(r[j]).max(50.0);
            assert!(
                diff / scale < 0.25,
                "rank {j}: alias {} vs rejection {}",
                a[j],
                r[j]
            );
        }
    }

    #[test]
    fn same_node_ranks_get_max_weight() {
        let job = job(4, RankMapping::Grouped { ppn: 4 });
        // All 16 ranks; ranks 0..4 share node 0 with rank 0.
        let w_mate = skew_weight(&job, 0, 1, 1.0);
        let w_far = skew_weight(&job, 0, 15, 1.0);
        assert_eq!(w_mate, 1.0);
        assert!(w_far < 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let job = job(32, RankMapping::OneToOne);
        for policy in [
            VictimPolicy::Uniform,
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
            VictimPolicy::DistanceSkewed { alpha: 2.0 },
        ] {
            let sum: f64 = (0..32)
                .map(|j| policy.probability(&job, 3, j).expect("randomized policy"))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", policy.label());
        }
        assert!(VictimPolicy::RoundRobin.probability(&job, 0, 1).is_none());
    }

    #[test]
    fn alpha_zero_degenerates_to_uniform() {
        let job = job(16, RankMapping::OneToOne);
        let skew = VictimPolicy::DistanceSkewed { alpha: 0.0 };
        for j in 1..16 {
            let p = skew.probability(&job, 0, j).expect("probabilities exist");
            assert!((p - 1.0 / 15.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(VictimPolicy::RoundRobin.label(), "Reference");
        assert_eq!(VictimPolicy::Uniform.label(), "Rand");
        assert_eq!(VictimPolicy::DistanceSkewed { alpha: 1.0 }.label(), "Tofu");
        assert_eq!(
            VictimPolicy::LatencySkewed { alpha: 1.0 }.label(),
            "LatSkew"
        );
        assert_eq!(
            VictimPolicy::Hierarchical { local_tries: 3 }.label(),
            "Hier"
        );
    }

    #[test]
    fn latency_skew_prefers_node_mates_strongly() {
        // Grouped mapping: ranks 0..8 share a node. Same-node latency
        // (600ns) vs cross-machine latency (microseconds) gives the
        // latency skew far more contrast than the coordinate skew.
        let job = job(16, RankMapping::Grouped { ppn: 8 });
        let policy = VictimPolicy::LatencySkewed { alpha: 1.0 };
        let p_mate = policy.probability(&job, 0, 1).expect("probabilities");
        // Rank 127 sits on the last allocated node — one cube over,
        // same rack under the compact allocation (~2.1 us vs ~1.0 us).
        let p_far = policy.probability(&job, 0, 127).expect("probabilities");
        assert!(
            p_mate > 1.8 * p_far,
            "node mate {p_mate} should dominate same-rack rank {p_far}"
        );
        let sum: f64 = (0..128)
            .map(|j| policy.probability(&job, 0, j).expect("probabilities"))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_bursts_locally_then_widens() {
        let job = job(2, RankMapping::Grouped { ppn: 8 });
        // Ranks 0..8 on node 0, ranks 8..16 on node 1.
        let mut sel = VictimPolicy::Hierarchical { local_tries: 3 }.build(&job, 0, 1024);
        let mut rng = DetRng::new(5);
        let picks: Vec<Rank> = (0..8).map(|_| sel.next_victim(&mut rng)).collect();
        // First 3 picks are node mates (ranks 1..8).
        for (i, &p) in picks.iter().take(3).enumerate() {
            assert!((1..8).contains(&p), "pick {i} = {p} should be a node mate");
        }
        // The 4th is the global draw; afterwards the local burst restarts.
        for (i, &p) in picks.iter().enumerate().skip(4).take(3) {
            assert!((1..8).contains(&p), "pick {i} = {p} should be a node mate");
        }
        // No pick is ever self.
        assert!(picks.iter().all(|&p| p != 0));
    }

    #[test]
    fn hierarchical_without_mates_is_global() {
        let job = job(8, RankMapping::OneToOne);
        let mut sel = VictimPolicy::Hierarchical { local_tries: 4 }.build(&job, 2, 1024);
        let mut rng = DetRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = sel.next_victim(&mut rng);
            assert_ne!(v, 2);
            seen[v as usize] = true;
        }
        assert_eq!(
            seen.iter().filter(|&&s| s).count(),
            7,
            "all others reachable"
        );
    }

    #[test]
    fn extension_policies_have_no_pdf_or_a_valid_one() {
        let job = job(16, RankMapping::OneToOne);
        assert!(VictimPolicy::Hierarchical { local_tries: 2 }
            .probability(&job, 0, 1)
            .is_none());
        assert!(VictimPolicy::LatencySkewed { alpha: 2.0 }
            .probability(&job, 0, 1)
            .is_some());
    }
}
