//! Victim selection strategies — the heart of the paper.
//!
//! Three strategies, matching §II-A and §IV:
//!
//! - [`VictimPolicy::RoundRobin`] — the reference UTS scheme: "a
//!   process with rank i will choose as its first victim its neighbor
//!   (rank i+1 mod N). Subsequent steals will choose the next neighbor
//!   in a round-robin fashion. Notice that a successful steal does not
//!   impact this choice: the next search for work will start at the
//!   neighbor of the last victim."
//! - [`VictimPolicy::Uniform`] — "choosing with a uniform random
//!   distribution over the ranks of all other MPI processes one victim
//!   to steal. The process is repeated as long as needed, without
//!   modification, until work is found."
//! - [`VictimPolicy::DistanceSkewed`] — "while preserving the ability
//!   to steal any process, weight the probability of one process
//!   stealing another by the distance between those two":
//!   `w(i,j) = 1/e(i,j)` (1 when `e = 0`), normalized over `j ≠ i`.
//!   The exponent `α` generalizes the paper's `α = 1` for the
//!   skew-exponent ablation (`w = 1/e^α`).
//!
//! Three interchangeable samplers implement the skewed draw:
//!
//! 1. **Shared offset-alias tables** ([`OffsetAliasSet`]) — when the
//!    job is torus-translation symmetric ([`Job::torus_symmetry`]),
//!    `e(i, j)` depends only on the observer's intra-cube slot, the
//!    cube-coordinate offset, and the target's slot. One Walker table
//!    per observer slot class (at most 12) then serves *every* rank:
//!    exact O(1) draws with O(N) total memory at any scale.
//! 2. **Per-rank alias tables** (what GSL does) — exact, but O(N)
//!    memory *per rank*; used for non-symmetric jobs up to
//!    [`FALLBACK_LIMIT`] ranks.
//! 3. **Rejection sampling** — O(1) memory for large non-symmetric
//!    jobs, and the differential-test oracle the other two are held
//!    against (chi-square in this module's tests and the
//!    `ablation_skew_impl` bench).

use crate::alias::AliasTable;
use dws_simnet::DetRng;
use dws_topology::coord::{torus_delta, CUBE_A, CUBE_C};
use dws_topology::{Job, Rank};
use std::sync::Arc;

/// Rank count up to which non-symmetric skewed jobs precompute exact
/// per-rank alias tables; above it, rejection sampling bounds memory.
/// This equals the old default `alias_threshold`, so every
/// pre-existing figure configuration keeps its previous sampler and
/// its byte-identical CSV output. Torus-symmetric jobs ignore this —
/// they always use the shared offset tables.
pub const FALLBACK_LIMIT: u32 = 1024;

/// How a thief picks its next victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VictimPolicy {
    /// Deterministic next-neighbour round robin (reference UTS).
    RoundRobin,
    /// Uniform random over all other ranks ("Rand").
    Uniform,
    /// Distance-skewed random ("Tofu"): `w(i,j) = 1/e(i,j)^alpha`.
    DistanceSkewed {
        /// Skew exponent; the paper uses 1.0.
        alpha: f64,
    },
    /// Extension (paper §VII, "alternative victim selection
    /// strategies"): weight victims by the *inverse modelled message
    /// latency* instead of the Euclidean coordinate distance —
    /// `w(i,j) = 1/latency(i,j)^alpha`. Unlike the coordinate skew,
    /// this sees the full latency structure (blade/cube/rack classes
    /// and same-node transport), not just geometry.
    LatencySkewed {
        /// Skew exponent.
        alpha: f64,
    },
    /// Extension (related work §VI, hierarchical work stealing): try
    /// uniformly among *same-node* ranks for `local_tries` consecutive
    /// attempts, then fall back to uniform over everyone. Degenerates
    /// to [`VictimPolicy::Uniform`] under 1/N mappings (no node mates).
    Hierarchical {
        /// Consecutive local attempts before widening the search.
        local_tries: u32,
    },
    /// Extension (robustness): failure-aware adaptive selection. Draws
    /// come from the `base` static policy exactly as they would without
    /// this wrapper; the scheduler then overlays an online per-victim
    /// health filter on top (bounded rejection against learned outcome
    /// scores, plus quarantine of repeatedly timed-out victims — see
    /// `dws_core::health`). The base draw path, including the shared
    /// offset-alias tables, is reused untouched, so the overlay stays
    /// O(1) per draw.
    Adaptive {
        /// The static policy whose draws are re-weighted.
        base: BaseVictimPolicy,
    },
}

/// The static strategy an adaptive policy composes over — a flat copy
/// of the non-adaptive [`VictimPolicy`] variants. (`VictimPolicy` is
/// `Copy`, which rules out a recursive `Box<VictimPolicy>` field.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseVictimPolicy {
    /// See [`VictimPolicy::RoundRobin`].
    RoundRobin,
    /// See [`VictimPolicy::Uniform`].
    Uniform,
    /// See [`VictimPolicy::DistanceSkewed`].
    DistanceSkewed {
        /// Skew exponent; the paper uses 1.0.
        alpha: f64,
    },
    /// See [`VictimPolicy::LatencySkewed`].
    LatencySkewed {
        /// Skew exponent.
        alpha: f64,
    },
    /// See [`VictimPolicy::Hierarchical`].
    Hierarchical {
        /// Consecutive local attempts before widening the search.
        local_tries: u32,
    },
}

impl BaseVictimPolicy {
    /// The equivalent plain [`VictimPolicy`].
    pub fn to_policy(self) -> VictimPolicy {
        match self {
            BaseVictimPolicy::RoundRobin => VictimPolicy::RoundRobin,
            BaseVictimPolicy::Uniform => VictimPolicy::Uniform,
            BaseVictimPolicy::DistanceSkewed { alpha } => VictimPolicy::DistanceSkewed { alpha },
            BaseVictimPolicy::LatencySkewed { alpha } => VictimPolicy::LatencySkewed { alpha },
            BaseVictimPolicy::Hierarchical { local_tries } => {
                VictimPolicy::Hierarchical { local_tries }
            }
        }
    }
}

impl VictimPolicy {
    /// The paper's name for the strategy (used in figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            VictimPolicy::RoundRobin => "Reference",
            VictimPolicy::Uniform => "Rand",
            VictimPolicy::DistanceSkewed { .. } => "Tofu",
            VictimPolicy::LatencySkewed { .. } => "LatSkew",
            VictimPolicy::Hierarchical { .. } => "Hier",
            // Each base keeps a distinct label: the config fingerprint
            // serializes the victim policy by label alone, so adaptive
            // runs must never collide with their static base (or with
            // each other).
            VictimPolicy::Adaptive { base } => match base {
                BaseVictimPolicy::RoundRobin => "AdaptRef",
                BaseVictimPolicy::Uniform => "AdaptRand",
                BaseVictimPolicy::DistanceSkewed { .. } => "AdaptTofu",
                BaseVictimPolicy::LatencySkewed { .. } => "AdaptLat",
                BaseVictimPolicy::Hierarchical { .. } => "AdaptHier",
            },
        }
    }

    /// The static policy whose draw path this policy uses: the `base`
    /// for [`VictimPolicy::Adaptive`], the policy itself otherwise.
    pub fn base_policy(&self) -> VictimPolicy {
        match *self {
            VictimPolicy::Adaptive { base } => base.to_policy(),
            other => other,
        }
    }

    /// True for [`VictimPolicy::Adaptive`]: the scheduler should build
    /// a health tracker and overlay it on the draws.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, VictimPolicy::Adaptive { .. })
    }

    /// Build the job-wide shared selector state, once per experiment.
    ///
    /// For [`VictimPolicy::DistanceSkewed`] on a torus-symmetric job
    /// this constructs the shared [`OffsetAliasSet`] (O(N) work and
    /// memory, total); every other combination needs no shared state.
    /// Hand the result to each rank's [`build`](Self::build) call.
    pub fn prepare(&self, job: &Arc<Job>) -> VictimContext {
        if let VictimPolicy::DistanceSkewed { alpha } = self.base_policy() {
            if job.torus_symmetry().is_some() {
                return VictimContext {
                    shared: Some(Arc::new(OffsetAliasSet::new(job, alpha))),
                };
            }
        }
        VictimContext::default()
    }

    /// Build the per-rank selector state. `ctx` comes from one
    /// [`prepare`](Self::prepare) call shared by all ranks of the job.
    ///
    /// The skewed strategy picks its sampler here: the shared offset
    /// tables when the job is symmetric, a per-rank alias table up to
    /// [`FALLBACK_LIMIT`] ranks otherwise, rejection sampling beyond.
    /// All three draw from the same distribution.
    pub fn build(&self, job: &Arc<Job>, me: Rank, ctx: &VictimContext) -> VictimSelector {
        let n = job.n_ranks();
        assert!(n >= 2, "victim selection needs at least two ranks");
        match self.base_policy() {
            VictimPolicy::RoundRobin => VictimSelector::RoundRobin {
                n,
                cursor: (me + 1) % n,
                me,
            },
            VictimPolicy::Uniform => VictimSelector::Uniform { n, me },
            VictimPolicy::DistanceSkewed { alpha } => {
                if let Some(set) = &ctx.shared {
                    VictimSelector::SkewedShared {
                        cell: set.rank_cell[me as usize],
                        set: Arc::clone(set),
                    }
                } else if n <= FALLBACK_LIMIT {
                    let weights: Vec<f64> = (0..n)
                        .filter(|&j| j != me)
                        .map(|j| skew_weight(job, me, j, alpha))
                        .collect();
                    VictimSelector::SkewedAlias {
                        table: AliasTable::new(&weights),
                        me,
                    }
                } else {
                    VictimSelector::SkewedRejection {
                        job: Arc::clone(job),
                        me,
                        alpha,
                    }
                }
            }
            VictimPolicy::LatencySkewed { alpha } => {
                // Latency weights are bounded but not by 1, so the O(1)
                // rejection trick does not apply directly; use an alias
                // table at any scale (memory documented in DESIGN.md).
                let weights: Vec<f64> = (0..n)
                    .filter(|&j| j != me)
                    .map(|j| latency_weight(job, me, j, alpha))
                    .collect();
                VictimSelector::SkewedAlias {
                    table: AliasTable::new(&weights),
                    me,
                }
            }
            VictimPolicy::Hierarchical { local_tries } => {
                let mates: Vec<Rank> = (0..n)
                    .filter(|&j| j != me && job.same_node(me, j))
                    .collect();
                VictimSelector::Hierarchical {
                    mates,
                    n,
                    me,
                    local_tries,
                    tries_left: local_tries,
                }
            }
            // base_policy() already unwrapped the adaptive wrapper.
            VictimPolicy::Adaptive { .. } => unreachable!("base_policy never returns Adaptive"),
        }
    }

    /// The normalized probability `p(i, j)` this policy assigns — the
    /// quantity plotted in Figure 8. Uniform over others for the
    /// non-skewed random policy; `None` for the deterministic one.
    pub fn probability(&self, job: &Job, i: Rank, j: Rank) -> Option<f64> {
        if i == j {
            return Some(0.0);
        }
        match *self {
            VictimPolicy::RoundRobin => None,
            VictimPolicy::Uniform => Some(1.0 / (job.n_ranks() - 1) as f64),
            VictimPolicy::DistanceSkewed { alpha } => {
                let total: f64 = (0..job.n_ranks())
                    .filter(|&k| k != i)
                    .map(|k| skew_weight(job, i, k, alpha))
                    .sum();
                Some(skew_weight(job, i, j, alpha) / total)
            }
            VictimPolicy::LatencySkewed { alpha } => {
                let total: f64 = (0..job.n_ranks())
                    .filter(|&k| k != i)
                    .map(|k| latency_weight(job, i, k, alpha))
                    .sum();
                Some(latency_weight(job, i, j, alpha) / total)
            }
            // The hierarchical scheme's draw distribution depends on
            // its retry state, so a static PDF is not defined; the
            // adaptive overlay's depends on the learned health state.
            VictimPolicy::Hierarchical { .. } | VictimPolicy::Adaptive { .. } => None,
        }
    }
}

/// Shared, per-job victim-selection state built once by
/// [`VictimPolicy::prepare`] and handed to every rank's
/// [`VictimPolicy::build`] call.
#[derive(Debug, Clone, Default)]
pub struct VictimContext {
    shared: Option<Arc<OffsetAliasSet>>,
}

impl VictimContext {
    /// True iff the skewed draws are backed by the shared offset-alias
    /// tables (torus-symmetric job) rather than a per-rank sampler.
    pub fn uses_shared_table(&self) -> bool {
        self.shared.is_some()
    }
}

/// One job-wide set of distance-skew alias tables over coordinate
/// *offsets*, for torus-translation-symmetric jobs.
///
/// Outcomes are `(cube_offset, target_slot)` pairs at *node*
/// granularity: every rank on a node is at the same distance from the
/// observer, so a node outcome carries weight `ppn · w` (or
/// `(ppn − 1) · 1` for the observer's own node, where `e = 0` and each
/// node mate has weight 1) and a uniform intra-node draw finishes the
/// pick. The two-stage probability is exactly the per-rank normalized
/// skew distribution: `(ppn·w/Z)·(1/ppn) = w/Z`.
///
/// Memory: one table per observer slot class over `cubes · |slots|`
/// outcomes — `N · |slots| ≤ 12·N` entries total, shared by all ranks,
/// versus O(N²) aggregate for per-rank tables.
#[derive(Debug)]
pub struct OffsetAliasSet {
    /// One alias table per observer intra-cube slot class; outcomes
    /// are offset-major `(cube_offset, target_slot)` pairs.
    tables: Vec<AliasTable>,
    /// Torus extents in cubes.
    dims: (u32, u32, u32),
    /// Number of occupied intra-cube slot classes.
    nslots: usize,
    /// Ranks per node.
    ppn: u32,
    /// Ranks grouped `[cube][slot][k]` (from [`Job::torus_symmetry`]).
    ranks: Vec<Rank>,
    /// Per-rank `(cube_idx, slot_pos, k)` cell.
    rank_cell: Vec<(u32, u32, u32)>,
}

impl OffsetAliasSet {
    /// Build the shared tables for a symmetric job.
    ///
    /// # Panics
    /// Panics if the job has no torus symmetry certificate.
    pub fn new(job: &Job, alpha: f64) -> Self {
        let sym = job
            .torus_symmetry()
            .expect("OffsetAliasSet requires a torus-symmetric job");
        let (mx, my, mz) = job.machine().dims();
        let cubes = mx as u32 * my as u32 * mz as u32;
        let ns = sym.slots.len();
        // Intra-cube (a, b, c) of each occupied slot, inverting the
        // machine's in-cube id layout (c fastest, then a, then b).
        let intra: Vec<(u16, u16, u16)> = sym
            .slots
            .iter()
            .map(|&s| {
                let c = s % CUBE_C;
                let a = (s / CUBE_C) % CUBE_A;
                let b = s / (CUBE_C * CUBE_A);
                (a, b, c)
            })
            .collect();
        let mut tables = Vec::with_capacity(ns);
        let mut weights = vec![0.0f64; cubes as usize * ns];
        for &(ai, bi, ci) in intra.iter() {
            for off in 0..cubes {
                let ox = (off % mx as u32) as u16;
                let oy = ((off / mx as u32) % my as u32) as u16;
                let oz = (off / (mx as u32 * my as u32)) as u16;
                let dx = torus_delta(0, ox, mx) as u64;
                let dy = torus_delta(0, oy, my) as u64;
                let dz = torus_delta(0, oz, mz) as u64;
                for (sj, &(aj, bj, cj)) in intra.iter().enumerate() {
                    let da = ai.abs_diff(aj) as u64;
                    let db = bi.abs_diff(bj) as u64;
                    let dc = ci.abs_diff(cj) as u64;
                    let e_sq = dx * dx + dy * dy + dz * dz + da * da + db * db + dc * dc;
                    weights[off as usize * ns + sj] = if e_sq == 0 {
                        // Observer's own node: ppn − 1 mates at w = 1.
                        (sym.ppn - 1) as f64
                    } else {
                        // Same float pipeline as `skew_weight`.
                        let w = (e_sq as f64).sqrt().powf(alpha).recip();
                        sym.ppn as f64 * w
                    };
                }
            }
            tables.push(AliasTable::new(&weights));
        }
        Self {
            tables,
            dims: (mx as u32, my as u32, mz as u32),
            nslots: ns,
            ppn: sym.ppn,
            ranks: sym.ranks.clone(),
            rank_cell: sym.rank_cell.clone(),
        }
    }

    /// Draw a victim for the observer at `cell = (cube, slot_pos, k)`.
    #[inline]
    fn draw(&self, cell: (u32, u32, u32), rng: &mut DetRng) -> Rank {
        let (my_cube, sp, my_k) = cell;
        let (mx, my, mz) = self.dims;
        let o = self.tables[sp as usize].sample(rng);
        let off = (o / self.nslots) as u32;
        let sj = o % self.nslots;
        // Target cube = observer cube + offset, wrapped per axis.
        let (cx, cy, cz) = (my_cube % mx, (my_cube / mx) % my, my_cube / (mx * my));
        let (ox, oy, oz) = (off % mx, (off / mx) % my, off / (mx * my));
        let cube = (cx + ox) % mx + mx * ((cy + oy) % my + my * ((cz + oz) % mz));
        let base = (cube as usize * self.nslots + sj) * self.ppn as usize;
        let k = if off == 0 && sj == sp as usize {
            // Own node (only reachable when ppn > 1): uniform over the
            // ppn − 1 mates, skipping the observer.
            let d = rng.next_below(self.ppn as u64 - 1) as u32;
            if d >= my_k {
                d + 1
            } else {
                d
            }
        } else {
            rng.next_below(self.ppn as u64) as u32
        };
        self.ranks[base + k as usize]
    }

    /// Exact probability that observer `i` draws victim `j`, implied by
    /// the shared tables (verification; mirrors
    /// [`AliasTable::probability`]).
    pub fn rank_probability(&self, i: Rank, j: Rank) -> f64 {
        if i == j {
            return 0.0;
        }
        let (ci, si, _) = self.rank_cell[i as usize];
        let (cj, sj, _) = self.rank_cell[j as usize];
        let (mx, my, mz) = self.dims;
        let (cix, ciy, ciz) = (ci % mx, (ci / mx) % my, ci / (mx * my));
        let (cjx, cjy, cjz) = (cj % mx, (cj / mx) % my, cj / (mx * my));
        let (ox, oy, oz) = (
            (cjx + mx - cix) % mx,
            (cjy + my - ciy) % my,
            (cjz + mz - ciz) % mz,
        );
        let off = ox + mx * (oy + my * oz);
        let p = self.tables[si as usize].probability(off as usize * self.nslots + sj as usize);
        if off == 0 && si == sj {
            p / (self.ppn - 1) as f64
        } else {
            p / self.ppn as f64
        }
    }
}

/// Extension weight: inverse modelled one-way latency (for a
/// steal-request-sized message), raised to `alpha`.
#[inline]
pub fn latency_weight(job: &Job, i: Rank, j: Rank, alpha: f64) -> f64 {
    let lat = job.latency_ns(i, j, 16) as f64;
    lat.powf(alpha).recip()
}

/// The paper's weight: `1/e(i,j)^alpha`, with `w = 1` when the ranks
/// share a node (`e = 0`).
#[inline]
pub fn skew_weight(job: &Job, i: Rank, j: Rank, alpha: f64) -> f64 {
    let e = job.euclidean(i, j);
    if e == 0.0 {
        1.0
    } else {
        e.powf(alpha).recip()
    }
}

/// Per-rank victim-selection state.
pub enum VictimSelector {
    /// Deterministic round robin with a persistent cursor.
    RoundRobin {
        /// Rank count.
        n: u32,
        /// Next victim to try.
        cursor: Rank,
        /// Owning rank (skipped by the cursor).
        me: Rank,
    },
    /// Uniform over the other ranks.
    Uniform {
        /// Rank count.
        n: u32,
        /// Owning rank.
        me: Rank,
    },
    /// Distance-skewed via the job-wide shared offset-alias tables
    /// (torus-symmetric jobs): exact O(1) draws, O(N) total memory.
    SkewedShared {
        /// Shared table set, one per intra-cube slot class.
        set: Arc<OffsetAliasSet>,
        /// Owning rank's `(cube, slot_pos, k)` cell.
        cell: (u32, u32, u32),
    },
    /// Distance-skewed via a precomputed alias table (small N).
    SkewedAlias {
        /// Table over the `n − 1` other ranks, in rank order.
        table: AliasTable,
        /// Owning rank.
        me: Rank,
    },
    /// Distance-skewed via rejection sampling (large N, O(1) memory).
    SkewedRejection {
        /// Topology handle for distance queries.
        job: Arc<Job>,
        /// Owning rank.
        me: Rank,
        /// Skew exponent.
        alpha: f64,
    },
    /// Two-level hierarchical selection: node mates first, then global.
    Hierarchical {
        /// Ranks sharing this rank's node.
        mates: Vec<Rank>,
        /// Total rank count.
        n: u32,
        /// Owning rank.
        me: Rank,
        /// Local attempts per burst.
        local_tries: u32,
        /// Local attempts remaining before widening.
        tries_left: u32,
    },
}

impl VictimSelector {
    /// Pick the next victim to try. Never returns the owning rank.
    pub fn next_victim(&mut self, rng: &mut DetRng) -> Rank {
        match self {
            VictimSelector::RoundRobin { n, cursor, me } => {
                let mut v = *cursor;
                if v == *me {
                    v = (v + 1) % *n;
                }
                *cursor = (v + 1) % *n;
                v
            }
            VictimSelector::Uniform { n, me } => {
                let draw = rng.next_below(*n as u64 - 1) as u32;
                if draw >= *me {
                    draw + 1
                } else {
                    draw
                }
            }
            VictimSelector::SkewedShared { set, cell } => set.draw(*cell, rng),
            VictimSelector::SkewedAlias { table, me } => {
                let idx = table.sample(rng) as u32;
                if idx >= *me {
                    idx + 1
                } else {
                    idx
                }
            }
            VictimSelector::SkewedRejection { job, me, alpha } => {
                // Proposal: uniform over others. Accept with w/1.0 —
                // valid because e >= 1 between distinct nodes, so
                // w = 1/e^alpha <= 1 (and w = 1 for node mates).
                let n = job.n_ranks();
                loop {
                    let draw = rng.next_below(n as u64 - 1) as u32;
                    let j = if draw >= *me { draw + 1 } else { draw };
                    let w = skew_weight(job, *me, j, *alpha);
                    if rng.next_f64() < w {
                        return j;
                    }
                }
            }
            VictimSelector::Hierarchical {
                mates,
                n,
                me,
                local_tries,
                tries_left,
            } => {
                if !mates.is_empty() && *tries_left > 0 {
                    *tries_left -= 1;
                    let idx = rng.next_below(mates.len() as u64) as usize;
                    mates[idx]
                } else {
                    // One global draw, then restart the local burst.
                    *tries_left = *local_tries;
                    let draw = rng.next_below(*n as u64 - 1) as u32;
                    if draw >= *me {
                        draw + 1
                    } else {
                        draw
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_topology::RankMapping;

    fn job(n: u32, mapping: RankMapping) -> Arc<Job> {
        Arc::new(Job::compact(n, mapping))
    }

    /// TorusFill job on a machine it fills uniformly — the shape the
    /// shared offset-alias sampler activates on.
    fn symmetric_job(n_nodes: u32, mapping: RankMapping) -> Arc<Job> {
        use dws_topology::{AllocationPolicy, LatencyParams, Machine};
        Arc::new(Job::place(
            Machine::torus_for_nodes(n_nodes),
            n_nodes,
            AllocationPolicy::TorusFill,
            mapping,
            LatencyParams::default(),
        ))
    }

    /// Build a selector the way the runner does: one shared prepare,
    /// then the per-rank build.
    fn build(policy: VictimPolicy, job: &Arc<Job>, me: Rank) -> VictimSelector {
        let ctx = policy.prepare(job);
        policy.build(job, me, &ctx)
    }

    /// The rejection sampler as a standalone differential oracle.
    fn rejection_oracle(job: &Arc<Job>, me: Rank, alpha: f64) -> VictimSelector {
        VictimSelector::SkewedRejection {
            job: Arc::clone(job),
            me,
            alpha,
        }
    }

    #[test]
    fn round_robin_walks_neighbours_and_skips_self() {
        let job = job(4, RankMapping::OneToOne);
        let mut sel = build(VictimPolicy::RoundRobin, &job, 2);
        let mut rng = DetRng::new(0);
        let picks: Vec<Rank> = (0..6).map(|_| sel.next_victim(&mut rng)).collect();
        assert_eq!(picks, vec![3, 0, 1, 3, 0, 1], "cursor must skip rank 2");
    }

    #[test]
    fn round_robin_cursor_persists_across_searches() {
        // The paper: "a successful steal does not impact this choice" —
        // our cursor simply continues; there is no reset API at all.
        let job = job(8, RankMapping::OneToOne);
        let mut sel = build(VictimPolicy::RoundRobin, &job, 0);
        let mut rng = DetRng::new(0);
        assert_eq!(sel.next_victim(&mut rng), 1);
        assert_eq!(sel.next_victim(&mut rng), 2);
        // ... steal succeeds here, search later resumes at 3 ...
        assert_eq!(sel.next_victim(&mut rng), 3);
    }

    #[test]
    fn uniform_covers_all_other_ranks() {
        let job = job(8, RankMapping::OneToOne);
        let mut sel = build(VictimPolicy::Uniform, &job, 3);
        let mut rng = DetRng::new(7);
        let mut seen = [0u32; 8];
        for _ in 0..8_000 {
            seen[sel.next_victim(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[3], 0, "must never pick self");
        for (r, &c) in seen.iter().enumerate() {
            if r != 3 {
                assert!(
                    (c as i64 - 1_143).abs() < 200,
                    "rank {r} picked {c} times, expected ~1143"
                );
            }
        }
    }

    #[test]
    fn skewed_prefers_nearby_ranks() {
        let job = job(64, RankMapping::OneToOne);
        let mut sel = build(VictimPolicy::DistanceSkewed { alpha: 1.0 }, &job, 0);
        let mut rng = DetRng::new(11);
        let mut counts = vec![0u32; 64];
        let draws = 60_000;
        for _ in 0..draws {
            counts[sel.next_victim(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        // Empirical frequencies must match the analytic distribution.
        for j in 1..64u32 {
            let p = VictimPolicy::DistanceSkewed { alpha: 1.0 }
                .probability(&job, 0, j)
                .expect("skewed policy has probabilities");
            let expect = p * draws as f64;
            if expect > 200.0 {
                let err = (counts[j as usize] as f64 - expect).abs() / expect;
                assert!(
                    err < 0.15,
                    "rank {j}: {} draws vs expected {expect:.0}",
                    counts[j as usize]
                );
            }
        }
    }

    fn histogram(mut sel: VictimSelector, n: usize, draws: u32, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        let mut counts = vec![0f64; n];
        for _ in 0..draws {
            counts[sel.next_victim(&mut rng) as usize] += 1.0;
        }
        counts
    }

    #[test]
    fn alias_and_rejection_samplers_agree() {
        // Non-symmetric compact job: build() picks the per-rank alias
        // table; the standalone rejection sampler is the oracle.
        let job = job(48, RankMapping::OneToOne);
        let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let alias = build(policy, &job, 5);
        assert!(matches!(alias, VictimSelector::SkewedAlias { .. }));
        let a = histogram(alias, 48, 50_000, 3);
        let r = histogram(rejection_oracle(&job, 5, 1.0), 48, 50_000, 4);
        for j in 0..48 {
            let diff = (a[j] - r[j]).abs();
            let scale = a[j].max(r[j]).max(50.0);
            assert!(
                diff / scale < 0.25,
                "rank {j}: alias {} vs rejection {}",
                a[j],
                r[j]
            );
        }
    }

    #[test]
    fn shared_offset_alias_agrees_with_rejection_oracle() {
        // Symmetric TorusFill job: build() activates the shared tables.
        let job = symmetric_job(96, RankMapping::OneToOne);
        let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let ctx = policy.prepare(&job);
        assert!(ctx.uses_shared_table());
        let shared = policy.build(&job, 7, &ctx);
        assert!(matches!(shared, VictimSelector::SkewedShared { .. }));
        let draws = 80_000u32;
        let s = histogram(shared, 96, draws, 3);
        let r = histogram(rejection_oracle(&job, 7, 1.0), 96, draws, 4);
        assert_eq!(s[7], 0.0, "must never pick self");
        // Pearson chi-square of the shared histogram against the
        // rejection sampler's analytic distribution. 94 degrees of
        // freedom; 99.9th percentile is ~143.
        let mut chi2 = 0.0;
        for j in 0..96u32 {
            if j == 7 {
                continue;
            }
            let p = policy.probability(&job, 7, j).expect("skewed pdf");
            let expect = p * draws as f64;
            chi2 += (s[j as usize] - expect).powi(2) / expect;
        }
        assert!(chi2 < 143.0, "chi-square {chi2:.1} rejects agreement");
        // And the two empirical histograms track each other.
        for j in 0..96 {
            let diff = (s[j] - r[j]).abs();
            let scale = s[j].max(r[j]).max(80.0);
            assert!(
                diff / scale < 0.25,
                "rank {j}: shared {} vs rejection {}",
                s[j],
                r[j]
            );
        }
    }

    #[test]
    fn shared_offset_alias_probability_is_exact() {
        // The table-implied probability must match the analytic
        // normalized skew distribution for every (i, j) pair.
        for mapping in [RankMapping::OneToOne, RankMapping::Grouped { ppn: 4 }] {
            let job = symmetric_job(24, mapping);
            let n = job.n_ranks();
            let set = OffsetAliasSet::new(&job, 1.0);
            let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
            for i in (0..n).step_by(7) {
                let mut sum = 0.0;
                for j in 0..n {
                    let want = policy.probability(&job, i, j).expect("skewed pdf");
                    let got = set.rank_probability(i, j);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "p({i},{j}): shared {got} vs analytic {want}"
                    );
                    sum += got;
                }
                assert!((sum - 1.0).abs() < 1e-9, "observer {i}: sum {sum}");
            }
        }
    }

    #[test]
    fn shared_draws_are_translation_equivariant() {
        // Two observers in the same intra-cube slot class but different
        // cubes, fed the same RNG stream, must draw victims at the SAME
        // coordinate offset, slot, and intra-node index every time —
        // the defining property of the shared table. This is the exact
        // per-draw agreement the offset construction guarantees.
        let job = symmetric_job(96, RankMapping::Grouped { ppn: 2 });
        let sym = job.torus_symmetry().expect("TorusFill is symmetric");
        let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let ctx = policy.prepare(&job);
        // Find two ranks with identical (slot_pos, k) in distinct cubes.
        let (c0, s0, k0) = sym.rank_cell[0];
        let other = (0..job.n_ranks())
            .find(|&r| {
                let (c, s, k) = sym.rank_cell[r as usize];
                c != c0 && s == s0 && k == k0
            })
            .expect("a translated twin exists");
        let mut sel_a = policy.build(&job, 0, &ctx);
        let mut sel_b = policy.build(&job, other, &ctx);
        let (mx, my, mz) = {
            let (x, y, z) = job.machine().dims();
            (x as u32, y as u32, z as u32)
        };
        let offset = |from: u32, to: u32| {
            let (fx, fy, fz) = (from % mx, (from / mx) % my, from / (mx * my));
            let (tx, ty, tz) = (to % mx, (to / mx) % my, to / (mx * my));
            (
                (tx + mx - fx) % mx,
                (ty + my - fy) % my,
                (tz + mz - fz) % mz,
            )
        };
        let mut rng_a = DetRng::new(42);
        let mut rng_b = DetRng::new(42);
        for draw in 0..5_000 {
            let va = sel_a.next_victim(&mut rng_a);
            let vb = sel_b.next_victim(&mut rng_b);
            let (ca, sa, ka) = sym.rank_cell[va as usize];
            let (cb, sb, kb) = sym.rank_cell[vb as usize];
            let cother = sym.rank_cell[other as usize].0;
            assert_eq!(
                (offset(c0, ca), sa, ka),
                (offset(cother, cb), sb, kb),
                "draw {draw}: {va} from rank 0 vs {vb} from rank {other}"
            );
        }
    }

    #[test]
    fn shared_same_node_draws_respect_mate_weights() {
        // ppn > 1: node mates carry weight 1 each; never draw self.
        let job = symmetric_job(12, RankMapping::Grouped { ppn: 4 });
        let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let ctx = policy.prepare(&job);
        let me = 5u32;
        let sel = policy.build(&job, me, &ctx);
        let n = job.n_ranks() as usize;
        let h = histogram(sel, n, 60_000, 9);
        assert_eq!(h[me as usize], 0.0, "must never pick self");
        for j in 0..n as u32 {
            if j == me {
                continue;
            }
            let p = policy.probability(&job, me, j).expect("skewed pdf");
            let expect = p * 60_000.0;
            if expect > 300.0 {
                let err = (h[j as usize] - expect).abs() / expect;
                assert!(err < 0.15, "rank {j}: {} vs {expect:.0}", h[j as usize]);
            }
        }
    }

    #[test]
    fn same_node_ranks_get_max_weight() {
        let job = job(4, RankMapping::Grouped { ppn: 4 });
        // All 16 ranks; ranks 0..4 share node 0 with rank 0.
        let w_mate = skew_weight(&job, 0, 1, 1.0);
        let w_far = skew_weight(&job, 0, 15, 1.0);
        assert_eq!(w_mate, 1.0);
        assert!(w_far < 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let job = job(32, RankMapping::OneToOne);
        for policy in [
            VictimPolicy::Uniform,
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
            VictimPolicy::DistanceSkewed { alpha: 2.0 },
        ] {
            let sum: f64 = (0..32)
                .map(|j| policy.probability(&job, 3, j).expect("randomized policy"))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", policy.label());
        }
        assert!(VictimPolicy::RoundRobin.probability(&job, 0, 1).is_none());
    }

    #[test]
    fn alpha_zero_degenerates_to_uniform() {
        let job = job(16, RankMapping::OneToOne);
        let skew = VictimPolicy::DistanceSkewed { alpha: 0.0 };
        for j in 1..16 {
            let p = skew.probability(&job, 0, j).expect("probabilities exist");
            assert!((p - 1.0 / 15.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(VictimPolicy::RoundRobin.label(), "Reference");
        assert_eq!(VictimPolicy::Uniform.label(), "Rand");
        assert_eq!(VictimPolicy::DistanceSkewed { alpha: 1.0 }.label(), "Tofu");
        assert_eq!(
            VictimPolicy::LatencySkewed { alpha: 1.0 }.label(),
            "LatSkew"
        );
        assert_eq!(
            VictimPolicy::Hierarchical { local_tries: 3 }.label(),
            "Hier"
        );
    }

    #[test]
    fn adaptive_labels_are_distinct_from_bases() {
        let bases = [
            BaseVictimPolicy::RoundRobin,
            BaseVictimPolicy::Uniform,
            BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
            BaseVictimPolicy::LatencySkewed { alpha: 1.0 },
            BaseVictimPolicy::Hierarchical { local_tries: 3 },
        ];
        let mut labels = std::collections::HashSet::new();
        for base in bases {
            let adaptive = VictimPolicy::Adaptive { base };
            assert!(adaptive.is_adaptive());
            assert_ne!(
                adaptive.label(),
                base.to_policy().label(),
                "fingerprints distinguish adaptive runs by label alone"
            );
            assert!(labels.insert(adaptive.label()), "labels must be unique");
            assert!(labels.insert(base.to_policy().label()));
        }
        assert_eq!(
            VictimPolicy::Adaptive {
                base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 }
            }
            .label(),
            "AdaptTofu"
        );
    }

    #[test]
    fn adaptive_draw_path_matches_its_base() {
        // The adaptive wrapper's prepare/build must be the base's,
        // bit for bit: the same shared-table decision and the same
        // draw sequence under the same RNG stream.
        let job = symmetric_job(96, RankMapping::OneToOne);
        let base = VictimPolicy::DistanceSkewed { alpha: 1.0 };
        let adaptive = VictimPolicy::Adaptive {
            base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
        };
        let ctx_b = base.prepare(&job);
        let ctx_a = adaptive.prepare(&job);
        assert_eq!(ctx_b.uses_shared_table(), ctx_a.uses_shared_table());
        let mut sel_b = base.build(&job, 7, &ctx_b);
        let mut sel_a = adaptive.build(&job, 7, &ctx_a);
        let mut rng_b = DetRng::new(17);
        let mut rng_a = DetRng::new(17);
        for draw in 0..2_000 {
            assert_eq!(
                sel_b.next_victim(&mut rng_b),
                sel_a.next_victim(&mut rng_a),
                "draw {draw} diverged"
            );
        }
        assert!(adaptive.probability(&job, 0, 1).is_none());
    }

    #[test]
    fn latency_skew_prefers_node_mates_strongly() {
        // Grouped mapping: ranks 0..8 share a node. Same-node latency
        // (600ns) vs cross-machine latency (microseconds) gives the
        // latency skew far more contrast than the coordinate skew.
        let job = job(16, RankMapping::Grouped { ppn: 8 });
        let policy = VictimPolicy::LatencySkewed { alpha: 1.0 };
        let p_mate = policy.probability(&job, 0, 1).expect("probabilities");
        // Rank 127 sits on the last allocated node — one cube over,
        // same rack under the compact allocation (~2.1 us vs ~1.0 us).
        let p_far = policy.probability(&job, 0, 127).expect("probabilities");
        assert!(
            p_mate > 1.8 * p_far,
            "node mate {p_mate} should dominate same-rack rank {p_far}"
        );
        let sum: f64 = (0..128)
            .map(|j| policy.probability(&job, 0, j).expect("probabilities"))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_bursts_locally_then_widens() {
        let job = job(2, RankMapping::Grouped { ppn: 8 });
        // Ranks 0..8 on node 0, ranks 8..16 on node 1.
        let mut sel = build(VictimPolicy::Hierarchical { local_tries: 3 }, &job, 0);
        let mut rng = DetRng::new(5);
        let picks: Vec<Rank> = (0..8).map(|_| sel.next_victim(&mut rng)).collect();
        // First 3 picks are node mates (ranks 1..8).
        for (i, &p) in picks.iter().take(3).enumerate() {
            assert!((1..8).contains(&p), "pick {i} = {p} should be a node mate");
        }
        // The 4th is the global draw; afterwards the local burst restarts.
        for (i, &p) in picks.iter().enumerate().skip(4).take(3) {
            assert!((1..8).contains(&p), "pick {i} = {p} should be a node mate");
        }
        // No pick is ever self.
        assert!(picks.iter().all(|&p| p != 0));
    }

    #[test]
    fn hierarchical_without_mates_is_global() {
        let job = job(8, RankMapping::OneToOne);
        let mut sel = build(VictimPolicy::Hierarchical { local_tries: 4 }, &job, 2);
        let mut rng = DetRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = sel.next_victim(&mut rng);
            assert_ne!(v, 2);
            seen[v as usize] = true;
        }
        assert_eq!(
            seen.iter().filter(|&&s| s).count(),
            7,
            "all others reachable"
        );
    }

    #[test]
    fn extension_policies_have_no_pdf_or_a_valid_one() {
        let job = job(16, RankMapping::OneToOne);
        assert!(VictimPolicy::Hierarchical { local_tries: 2 }
            .probability(&job, 0, 1)
            .is_none());
        assert!(VictimPolicy::LatencySkewed { alpha: 2.0 }
            .probability(&job, 0, 1)
            .is_some());
    }
}
