//! The chunked work stack (UTS `StealStack`).
//!
//! Work items (tree nodes) are managed in fixed-size *chunks* (paper
//! §II-A, default 20 nodes): memory is allocated per chunk rather than
//! per node, and a chunk is also the unit of stealing. The chunk
//! currently being filled or drained by the owner — the newest one — is
//! *private*: "if there is only one incomplete chunk in the stack of a
//! process, no work can be stolen, as the first chunk is always
//! considered private".
//!
//! The owner works LIFO (depth-first) from the newest chunk; thieves
//! take the **oldest** chunks, which hold nodes closest to the root and
//! therefore, in expectation, the largest subtrees — the classic
//! steal-from-the-bottom discipline.

use dws_uts::Node;
use std::collections::VecDeque;

/// One stealable unit of work.
pub type Chunk = Vec<Node>;

/// Upper bound on recycled chunks kept per stack. Bounds the pool's
/// footprint at `POOL_CAP * chunk_size * size_of::<Node>()` while still
/// absorbing the push/pop churn of a depth-first traversal, whose live
/// chunk count oscillates far more slowly than its node count.
const POOL_CAP: usize = 32;

/// A chunked LIFO work stack with steal-from-the-bottom semantics.
#[derive(Debug, Clone)]
pub struct ChunkedStack {
    /// Chunks, oldest at the front. The back chunk is the owner's
    /// private working chunk.
    chunks: VecDeque<Chunk>,
    chunk_size: usize,
    /// Total nodes across all chunks (kept incrementally).
    len: usize,
    /// Recycled empty chunks, reused by `push` so steady-state traversal
    /// does not allocate. Invisible to `check()` and all accounting.
    pool: Vec<Chunk>,
    /// Recycled steal-reply carrier vectors: `receive_chunks` banks the
    /// emptied carrier, `steal_chunks` reuses one. Ranks share a process
    /// in simulation, so carriers circulate instead of being reallocated
    /// per steal.
    carrier_pool: Vec<Vec<Chunk>>,
}

impl ChunkedStack {
    /// Create an empty stack with the given chunk size.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunks: VecDeque::new(),
            chunk_size,
            len: 0,
            pool: Vec::new(),
            carrier_pool: Vec::new(),
        }
    }

    /// Return an emptied chunk to the pool (or drop it if full).
    #[inline]
    fn recycle(&mut self, c: Chunk) {
        debug_assert!(c.is_empty());
        if self.pool.len() < POOL_CAP {
            self.pool.push(c);
        }
    }

    /// The configured chunk size.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Total nodes in the stack.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no work is available.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Push one node (owner side).
    pub fn push(&mut self, node: Node) {
        match self.chunks.back_mut() {
            Some(back) if back.len() < self.chunk_size => back.push(node),
            _ => {
                let mut c = self
                    .pool
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(self.chunk_size));
                c.push(node);
                self.chunks.push_back(c);
            }
        }
        self.len += 1;
    }

    /// Pop the most recently pushed node (owner side, depth-first).
    pub fn pop(&mut self) -> Option<Node> {
        loop {
            let back = self.chunks.back_mut()?;
            if let Some(node) = back.pop() {
                self.len -= 1;
                if back.is_empty() {
                    let c = self.chunks.pop_back().expect("back chunk exists");
                    self.recycle(c);
                }
                return Some(node);
            }
            // Empty working chunk left behind by a previous steal or
            // drain: recycle and continue with the next newest.
            let c = self.chunks.pop_back().expect("back chunk exists");
            self.recycle(c);
        }
    }

    /// Number of chunks a thief may take right now: every chunk except
    /// the newest (private) one.
    #[inline]
    pub fn stealable_chunks(&self) -> usize {
        self.chunks.len().saturating_sub(1)
    }

    /// Steal up to `want` chunks from the bottom (oldest end). Returns
    /// the chunks actually taken; empty if nothing is stealable.
    pub fn steal_chunks(&mut self, want: usize) -> Vec<Chunk> {
        let take = want.min(self.stealable_chunks());
        let mut out = self.carrier_pool.pop().unwrap_or_default();
        out.reserve(take);
        for _ in 0..take {
            let c = self
                .chunks
                .pop_front()
                .expect("stealable_chunks bounds the loop");
            self.len -= c.len();
            out.push(c);
        }
        out
    }

    /// Receive stolen chunks (thief side): they become the oldest
    /// entries of this stack, preserving their root-proximity ordering.
    pub fn receive_chunks(&mut self, mut chunks: Vec<Chunk>) {
        for c in chunks.drain(..).rev() {
            assert!(
                c.len() <= self.chunk_size,
                "received chunk of {} nodes exceeds chunk size {}",
                c.len(),
                self.chunk_size
            );
            if c.is_empty() {
                self.recycle(c);
                continue;
            }
            self.len += c.len();
            self.chunks.push_front(c);
        }
        if self.carrier_pool.len() < POOL_CAP {
            self.carrier_pool.push(chunks);
        }
    }

    /// Nodes contained in the `n` oldest chunks (what a thief would
    /// get), without taking them. Used for message-size accounting.
    /// Iterate over every node currently in the stack, oldest chunk
    /// first (lost-work accounting after a faulty run).
    pub fn iter_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Total nodes in the `n` oldest (most stealable) chunks.
    pub fn nodes_in_oldest(&self, n: usize) -> usize {
        self.chunks.iter().take(n).map(|c| c.len()).sum()
    }

    /// Number of recycled chunks currently pooled (test visibility).
    #[cfg(test)]
    fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// cached length matches contents; no empty stored chunks except
    /// possibly the working chunk; no oversized chunks.
    pub fn check(&self) -> Result<(), String> {
        let actual: usize = self.chunks.iter().map(|c| c.len()).sum();
        if actual != self.len {
            return Err(format!("cached len {} != actual {}", self.len, actual));
        }
        for (i, c) in self.chunks.iter().enumerate() {
            if c.len() > self.chunk_size {
                return Err(format!("chunk {i} oversize: {}", c.len()));
            }
            if c.is_empty() && i + 1 != self.chunks.len() {
                return Err(format!("empty non-working chunk at {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_uts::RngState;

    fn node(tag: u32) -> Node {
        Node {
            state: RngState::from_seed(tag as i32),
            height: tag,
        }
    }

    #[test]
    fn push_pop_is_lifo() {
        let mut s = ChunkedStack::new(3);
        for i in 0..7 {
            s.push(node(i));
        }
        assert_eq!(s.len(), 7);
        for i in (0..7).rev() {
            assert_eq!(s.pop().expect("non-empty").height, i);
        }
        assert!(s.pop().is_none());
        assert!(s.is_empty());
        s.check().expect("consistent");
    }

    #[test]
    fn private_chunk_is_never_stealable() {
        let mut s = ChunkedStack::new(20);
        // 19 nodes: one incomplete chunk -> nothing stealable.
        for i in 0..19 {
            s.push(node(i));
        }
        assert_eq!(s.stealable_chunks(), 0);
        assert!(s.steal_chunks(1).is_empty());
        // 21 nodes: one full + one partial; the full (oldest) is fair game.
        s.push(node(19));
        s.push(node(20));
        assert_eq!(s.stealable_chunks(), 1);
    }

    #[test]
    fn exactly_full_chunk_is_private() {
        let mut s = ChunkedStack::new(20);
        for i in 0..20 {
            s.push(node(i));
        }
        // A single chunk — even complete — is the working chunk.
        assert_eq!(s.stealable_chunks(), 0);
    }

    #[test]
    fn steal_takes_oldest_chunks() {
        let mut s = ChunkedStack::new(2);
        for i in 0..6 {
            s.push(node(i));
        }
        // Chunks: [0,1] [2,3] [4,5]; stealable = 2 oldest.
        let got = s.steal_chunks(1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].iter().map(|n| n.height).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(s.len(), 4);
        // Owner still pops newest first.
        assert_eq!(s.pop().expect("has work").height, 5);
        s.check().expect("consistent");
    }

    #[test]
    fn steal_want_is_clamped() {
        let mut s = ChunkedStack::new(2);
        for i in 0..6 {
            s.push(node(i));
        }
        let got = s.steal_chunks(99);
        assert_eq!(got.len(), 2, "only non-private chunks leave");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn receive_preserves_order_and_count() {
        let mut victim = ChunkedStack::new(2);
        for i in 0..6 {
            victim.push(node(i));
        }
        let loot = victim.steal_chunks(2);
        let mut thief = ChunkedStack::new(2);
        thief.push(node(100));
        thief.receive_chunks(loot);
        assert_eq!(thief.len(), 5);
        thief.check().expect("consistent");
        // Thief pops its own newest work first...
        assert_eq!(thief.pop().expect("work").height, 100);
        // ...then drains received chunks newest-chunk-first.
        assert_eq!(thief.pop().expect("work").height, 3);
        // Received chunks are stealable from the thief in turn
        // ("stealing half... make it possible for a thief to be stolen
        // himself as soon as it retrieves work").
        let mut thief2 = ChunkedStack::new(2);
        let mut victim2 = ChunkedStack::new(2);
        for i in 0..6 {
            victim2.push(node(i));
        }
        thief2.receive_chunks(victim2.steal_chunks(2));
        assert_eq!(thief2.stealable_chunks(), 1);
    }

    #[test]
    fn receive_skips_empty_chunks() {
        let mut s = ChunkedStack::new(4);
        s.receive_chunks(vec![vec![], vec![node(1)]]);
        assert_eq!(s.len(), 1);
        s.check().expect("consistent");
    }

    #[test]
    #[should_panic(expected = "exceeds chunk size")]
    fn receive_rejects_oversized_chunk() {
        let mut s = ChunkedStack::new(1);
        s.receive_chunks(vec![vec![node(1), node(2)]]);
    }

    #[test]
    fn interleaved_push_pop_steal_stays_consistent() {
        let mut s = ChunkedStack::new(3);
        let mut expected_len = 0usize;
        for round in 0..50u32 {
            for i in 0..(round % 7) {
                s.push(node(round * 100 + i));
                expected_len += 1;
            }
            if round % 3 == 0 && s.pop().is_some() {
                expected_len -= 1;
            }
            if round % 5 == 0 {
                let stolen = s.steal_chunks(1);
                expected_len -= stolen.iter().map(|c| c.len()).sum::<usize>();
            }
            assert_eq!(s.len(), expected_len);
            s.check().expect("consistent");
        }
    }

    #[test]
    fn nodes_in_oldest_counts_prefix() {
        let mut s = ChunkedStack::new(2);
        for i in 0..5 {
            s.push(node(i));
        }
        // Chunks: [0,1] [2,3] [4].
        assert_eq!(s.nodes_in_oldest(1), 2);
        assert_eq!(s.nodes_in_oldest(2), 4);
        assert_eq!(s.nodes_in_oldest(10), 5);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        ChunkedStack::new(0);
    }

    #[test]
    fn drained_chunks_are_recycled_and_pool_is_bounded() {
        let mut s = ChunkedStack::new(2);
        // Fill then fully drain: every chunk should land in the pool.
        for i in 0..10 {
            s.push(node(i));
        }
        while s.pop().is_some() {}
        assert_eq!(s.pooled(), 5);
        // Refilling draws from the pool instead of allocating.
        for i in 0..10 {
            s.push(node(i));
        }
        assert_eq!(s.pooled(), 0);
        s.check().expect("consistent");
        // The pool never exceeds its cap no matter how much churn.
        let mut s = ChunkedStack::new(1);
        for i in 0..(POOL_CAP as u32 * 4) {
            s.push(node(i));
        }
        while s.pop().is_some() {}
        assert_eq!(s.pooled(), POOL_CAP);
        // LIFO behavior is unchanged by recycling.
        for i in 0..5 {
            s.push(node(i));
        }
        for i in (0..5).rev() {
            assert_eq!(s.pop().expect("work").height, i);
        }
    }
}
