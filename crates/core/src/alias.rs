//! Walker alias method for O(1) sampling of discrete distributions.
//!
//! The paper samples its skewed victim distribution with the GNU
//! Scientific Library's "general discrete distribution" facility, which
//! is an alias table. This is our equivalent: `O(n)` construction,
//! `O(1)` sampling, exact to floating-point normalization.

use dws_simnet::DetRng;

/// Alias table over `n` outcomes with arbitrary non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each slot's own outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build a table from weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight {i} is invalid: {w}");
            total += w;
        }
        assert!(total > 0.0, "weights sum to zero");
        let n = weights.len();
        // Scaled weights: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True iff the table has no outcomes (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let slot = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }

    /// Exact probability of outcome `i` implied by the table (for
    /// verification and Figure 8's PDF dump).
    pub fn probability(&self, i: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut p = self.prob[i] / n;
        for (slot, &a) in self.alias.iter().enumerate() {
            if a as usize == i && self.prob[slot] < 1.0 {
                p += (1.0 - self.prob[slot]) / n;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let mut rng = DetRng::new(5);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n / 8;
            assert!(
                (c as i64 - expect as i64).abs() < expect as i64 / 10,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        // Structural check.
        for (i, &w) in weights.iter().enumerate() {
            let p = t.probability(i);
            assert!(
                (p - w / total).abs() < 1e-12,
                "outcome {i}: table p={p}, want {}",
                w / total
            );
        }
        // Empirical check.
        let mut rng = DetRng::new(17);
        let mut counts = [0u64; 5];
        let n = 160_000u64;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 * weights[i] / total;
            let err = (c as f64 - expect).abs() / expect;
            assert!(err < 0.05, "outcome {i}: {c} vs {expect:.0} ({err:.3})");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
        assert_eq!(t.probability(0), 0.0);
        assert!((t.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let weights: Vec<f64> = (1..=37).map(|i| 1.0 / i as f64).collect();
        let t = AliasTable::new(&weights);
        let sum: f64 = (0..t.len()).map(|i| t.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn single_outcome_always_wins() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = DetRng::new(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn all_zero_weights_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_weight_rejected() {
        AliasTable::new(&[1.0, -0.1]);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_rejected() {
        AliasTable::new(&[]);
    }
}
