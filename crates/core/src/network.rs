//! Contended network models (NIC-level and link-level).
//!
//! Each compute node has **one** network interface, shared by every
//! rank placed on it. When several MPI processes per node generate
//! steal traffic, their messages serialize through that NIC — the
//! paper's motivating observation that "allocating several MPI
//! processes by compute node results in a worse performance than using
//! a single process per node" (§I) hinges on exactly this contention,
//! which a pure point-to-point latency function cannot express.
//!
//! Both models implement [`NetworkModel`], which splits a delivery into
//! an **egress** half (transmit queueing plus wire time, charged on the
//! sender's shard in send order) and an **ingress** half (receive-NIC
//! admission, charged on the destination's shard in arrival order).
//! The split is what lets the parallel engine run contended models
//! deterministically: each half only touches state owned by one node,
//! and node-aligned sharding guarantees a single shard ever mutates it.

use dws_simnet::NetworkModel;
use dws_topology::Job;
use std::sync::Arc;

/// Per-direction NIC occupancy bookkeeping for every node of a job.
///
/// The model keeps, per node, the time its NIC becomes free in each
/// direction. A message departing at `t` from a node whose transmit
/// NIC is busy until `t' > t` waits `t' − t`, then occupies the NIC for
/// an `occupancy` window (fixed overhead plus serialization of its
/// bytes); reception mirrors this on the destination node. With one
/// rank per node the queues are almost always empty and the model
/// degrades to the plain topology latency.
pub struct NicContendedNetwork {
    job: Arc<Job>,
    /// Fixed NIC occupancy per message, nanoseconds.
    occupancy_ns: u64,
    /// NIC serialization bandwidth, bytes per nanosecond.
    bytes_per_ns: f64,
    /// Transmit-side free time per *node* (indexed by node id).
    tx_free: Vec<u64>,
    /// Receive-side free time per *node*.
    rx_free: Vec<u64>,
}

impl NicContendedNetwork {
    /// Wrap a placed job with NIC contention.
    pub fn new(job: Arc<Job>, occupancy_ns: u64, bytes_per_ns: f64) -> Self {
        assert!(bytes_per_ns > 0.0, "NIC bandwidth must be positive");
        let n_nodes = job.machine().node_count() as usize;
        Self {
            job,
            occupancy_ns,
            bytes_per_ns,
            tx_free: vec![0u64; n_nodes],
            rx_free: vec![0u64; n_nodes],
        }
    }

    fn occupancy(&self, bytes: usize) -> u64 {
        self.occupancy_ns + (bytes as f64 / self.bytes_per_ns) as u64
    }
}

impl NetworkModel for NicContendedNetwork {
    fn egress_ns(&mut self, from: u32, to: u32, bytes: usize, depart_ns: u64) -> u64 {
        // Server-occupancy queueing: an uncontended message pays only
        // the wire latency (whose software/NIC overhead the topology
        // model already includes), but every message reserves the
        // transmit NIC for an occupancy window, delaying whoever comes
        // next.
        let occ = self.occupancy(bytes);
        let src = self.job.node_of(from).index();
        let start = self.tx_free[src].max(depart_ns);
        self.tx_free[src] = start + occ;
        let wire = self.job.latency_ns(from, to, bytes);
        start + wire - depart_ns
    }

    fn ingress_ns(&mut self, to: u32, bytes: usize, arrival_ns: u64) -> u64 {
        let occ = self.occupancy(bytes);
        let dst = self.job.node_of(to).index();
        let start = self.rx_free[dst].max(arrival_ns);
        self.rx_free[dst] = start + occ;
        start - arrival_ns
    }

    fn replicate(&self) -> Box<dyn NetworkModel> {
        // Replicas partition ranks node-aligned, so each per-node slot
        // is only ever touched by one replica; fresh zeroed state is
        // exactly the serial model's initial state restricted to that
        // shard's nodes.
        Box::new(Self::new(
            Arc::clone(&self.job),
            self.occupancy_ns,
            self.bytes_per_ns,
        ))
    }
}

/// Link-level contended network: every message walks its
/// dimension-ordered route and queues at each link.
///
/// Where [`NicContendedNetwork`] folds path contention into a per-hop
/// constant, this model keeps a free-time register per directed link
/// and serializes traffic through it: a message arriving at a busy link
/// waits, then occupies the link for its transmission time. Hotspots
/// emerge naturally — many long routes crossing the same bisection link
/// queue up behind each other, which is precisely the effect that makes
/// distant steals expensive on a loaded torus.
///
/// Link state is global (two distant node pairs can share a bisection
/// link), so the model reports `shardable() == false` and the parallel
/// engine runs it on a single shard.
///
/// Costs O(hops) per message plus a hash lookup per link, so it is the
/// high-fidelity/slow option; `ablation_network_model` compares it to
/// the mean-field default.
pub struct LinkContendedNetwork {
    job: Arc<Job>,
    /// Per-link wire time for one message of `bytes`:
    /// `link_latency_ns + bytes / bytes_per_ns`.
    link_latency_ns: u64,
    bytes_per_ns: f64,
    /// Software/NIC overhead per message (sender + receiver halves).
    overhead_ns: u64,
    /// Free time per directed link.
    free: std::collections::HashMap<dws_topology::Link, u64>,
}

impl LinkContendedNetwork {
    /// Wrap a placed job with per-link queueing.
    pub fn new(job: Arc<Job>, link_latency_ns: u64, bytes_per_ns: f64, overhead_ns: u64) -> Self {
        assert!(bytes_per_ns > 0.0, "link bandwidth must be positive");
        Self {
            job,
            link_latency_ns,
            bytes_per_ns,
            overhead_ns,
            free: std::collections::HashMap::new(),
        }
    }
}

impl NetworkModel for LinkContendedNetwork {
    fn egress_ns(&mut self, from: u32, to: u32, bytes: usize, depart_ns: u64) -> u64 {
        let src = self.job.coord_of(from);
        let dst = self.job.coord_of(to);
        let occupancy = (bytes as f64 / self.bytes_per_ns) as u64;
        if src == dst {
            // Same node: shared-memory transport, no links involved.
            return self.overhead_ns + occupancy;
        }
        let mut cursor = depart_ns + self.overhead_ns / 2;
        for link in dws_topology::route(self.job.machine(), src, dst) {
            let link_free = self.free.entry(link).or_insert(0);
            // Wait for the link, then traverse it.
            let start = cursor.max(*link_free);
            *link_free = start + occupancy;
            cursor = start + self.link_latency_ns + occupancy;
        }
        cursor + self.overhead_ns / 2 - depart_ns
    }

    fn replicate(&self) -> Box<dyn NetworkModel> {
        Box::new(Self::new(
            Arc::clone(&self.job),
            self.link_latency_ns,
            self.bytes_per_ns,
            self.overhead_ns,
        ))
    }

    fn shardable(&self) -> bool {
        // Distant node pairs share bisection links, so per-link state
        // cannot be partitioned by node; run serial.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_topology::RankMapping;

    fn grouped_job() -> Arc<Job> {
        Arc::new(Job::compact(2, RankMapping::Grouped { ppn: 8 }))
    }

    /// Full send→handled delay: egress at `now`, ingress at arrival.
    fn full(net: &mut dyn NetworkModel, from: u32, to: u32, bytes: usize, now: u64) -> u64 {
        let e = net.egress_ns(from, to, bytes, now);
        let i = net.ingress_ns(to, bytes, now + e);
        e + i
    }

    #[test]
    fn uncontended_message_pays_only_wire_latency() {
        let job = grouped_job();
        let mut net = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        let wire = job.latency_ns(0, 8, 64);
        assert_eq!(full(&mut net, 0, 8, 64, 0), wire);
    }

    #[test]
    fn simultaneous_sends_from_one_node_serialize() {
        let job = grouped_job();
        let mut net = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        // Ranks 0..8 share node 0; all send to node 1 at t=0.
        let delays: Vec<u64> = (0..8).map(|r| full(&mut net, r, 8, 64, 0)).collect();
        for pair in delays.windows(2) {
            assert!(
                pair[1] > pair[0],
                "messages through one NIC must queue: {delays:?}"
            );
        }
        // The 8th message waits ~7 occupancy windows on tx and rx.
        assert!(delays[7] >= delays[0] + 7 * 500);
    }

    #[test]
    fn sends_from_distinct_nodes_do_not_tx_queue() {
        let job = Arc::new(Job::compact(4, RankMapping::OneToOne));
        let mut net = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        // Ranks 1, 2, 3 each on their own node, all sending to rank 0:
        // they share only the destination NIC.
        let d1 = full(&mut net, 1, 0, 64, 0);
        let d2 = full(&mut net, 2, 0, 64, 0);
        let _ = d1;
        // Second message queues at most one rx occupancy behind the
        // first (plus any wire-time difference).
        let wire1 = job.latency_ns(1, 0, 64);
        let wire2 = job.latency_ns(2, 0, 64);
        let occ = 500 + 12;
        assert!(
            d2 <= wire2.max(wire1) + 2 * occ,
            "unexpected queueing: {d2}"
        );
    }

    #[test]
    fn nic_frees_up_over_time() {
        let job = grouped_job();
        let mut net = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        let first = full(&mut net, 0, 8, 64, 0);
        // Long after the burst, a new message sees an idle NIC again.
        let later = full(&mut net, 0, 8, 64, 1_000_000);
        assert_eq!(first, later);
    }

    #[test]
    fn replica_starts_from_idle_state() {
        let job = grouped_job();
        let mut net = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        let first = full(&mut net, 0, 8, 64, 0);
        let busy = full(&mut net, 0, 8, 64, 0);
        assert!(busy > first, "second send should queue");
        // A shard replica sees its nodes idle, like a fresh model.
        let mut replica = net.replicate();
        assert_eq!(full(replica.as_mut(), 0, 8, 64, 0), first);
    }

    #[test]
    fn link_model_scales_with_hops() {
        let job = Arc::new(Job::compact(512, RankMapping::OneToOne));
        let mut net = LinkContendedNetwork::new(Arc::clone(&job), 1_000, 5.0, 400);
        // A farther destination crosses more links, each adding its
        // latency.
        let mut best: Option<(u32, u32)> = None;
        for j in 1..512u32 {
            let h = job.hops(0, j);
            best = Some(match best {
                None => (j, h),
                Some((_, bh)) if h > bh => (j, h),
                Some(b) => b,
            });
        }
        let (far, far_hops) = best.expect("some rank");
        let near = (1..512u32).min_by_key(|&j| job.hops(0, j)).expect("near");
        let near_lat = net.egress_ns(0, near, 64, 0);
        let far_lat = net.egress_ns(0, far, 64, 0);
        assert!(
            far_lat > near_lat,
            "{far_hops}-hop path {far_lat} must beat {near_lat}"
        );
    }

    #[test]
    fn link_model_queues_shared_links() {
        let job = Arc::new(Job::compact(512, RankMapping::OneToOne));
        let mut net = LinkContendedNetwork::new(Arc::clone(&job), 1_000, 0.005, 0);
        // Two big messages from rank 0 to the same destination at the
        // same instant share every link: the second queues.
        let first = net.egress_ns(0, 100, 10_000, 0);
        let second = net.egress_ns(0, 100, 10_000, 0);
        assert!(
            second > first,
            "second message must queue ({second} vs {first})"
        );
        // After a long quiet period links are free again.
        let later = net.egress_ns(0, 100, 10_000, u64::MAX / 2);
        assert_eq!(later, first);
    }

    #[test]
    fn link_model_same_node_is_cheap() {
        let job = grouped_job(); // ranks 0..8 share node 0
        let mut net = LinkContendedNetwork::new(Arc::clone(&job), 1_000, 5.0, 400);
        let intra = net.egress_ns(0, 1, 64, 0);
        let inter = net.egress_ns(0, 8, 64, 0);
        assert!(intra < inter);
    }

    #[test]
    fn link_model_is_not_shardable() {
        let job = grouped_job();
        let nic = NicContendedNetwork::new(Arc::clone(&job), 500, 5.0);
        let link = LinkContendedNetwork::new(job, 1_000, 5.0, 400);
        assert!(NetworkModel::shardable(&nic));
        assert!(!NetworkModel::shardable(&link));
    }
}
