//! The per-rank work-stealing scheduler, mirroring the reference UTS
//! `mpi_workstealing.c` (paper §II-A, Algorithm 1).
//!
//! Each rank runs this state machine inside the discrete-event
//! simulator:
//!
//! ```text
//! while not finished:
//!     while node <- GET(stack):          # Working
//!         for child in NEXTCHILD(node):
//!             PUSH(stack, child)
//!     while stack is empty:              # Searching
//!         v <- SELECTVICTIM
//!         STEAL(v)
//! ```
//!
//! Fidelity notes, matching the paper's description of the reference
//! implementation:
//!
//! - **No work-first principle**: a thief *posts a request*; the victim
//!   answers between node expansions. We model the victim's polling
//!   cadence with `poll_interval`: a working rank services buffered
//!   messages every `poll_interval` node expansions. An idle rank
//!   answers immediately.
//! - **Chunked steals**: only whole chunks move; the newest chunk is
//!   private ([`ChunkedStack`]).
//! - **Steal amount**: one chunk (reference) or half the stealable
//!   chunks (§IV-C).
//! - **Work accounting**: expanding a node costs
//!   [`Workload::node_ns`](dws_uts::Workload::node_ns) simulated
//!   nanoseconds; message handling is free for the handler (its cost
//!   lives in the sender-to-receiver latency), which matches the
//!   lightweight-polling assumption of the reference code.
//! - **Batching**: each batch expands up to `poll_interval` nodes
//!   *then* advances the clock by their cost. Thieves arriving
//!   mid-batch see the post-batch stack — a half-batch skew that is
//!   far below the latency scale the paper studies.
//! - **Tracing**: active ⇄ idle transitions are recorded with the
//!   rank's *local* (possibly skewed) clock, as a real tracer would.

use crate::health::{AdaptiveCfg, Gate, HealthTracker};
use crate::stack::{Chunk, ChunkedStack};
use crate::termination::{TerminationState, Token, TokenAction};
use crate::victim::VictimSelector;
use dws_metrics::{trace_id, Histogram, SpanKind, SpanRecord, Tracer};
use dws_simnet::profiler::{prof_record, prof_start, PerfProbe, Phase};
use dws_simnet::{Actor, Ctx, Rank};
use dws_topology::Job;
use dws_uts::{Node, TreeSpec, Workload, NODE_WIRE_BYTES};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// How much of a victim's stealable work one steal transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealAmount {
    /// A single chunk (the reference implementation).
    OneChunk,
    /// Half the stealable chunks, rounded up (§IV-C "Half").
    Half,
}

impl StealAmount {
    /// Chunks to take from a victim exposing `stealable` chunks.
    #[inline]
    pub fn want(&self, stealable: usize) -> usize {
        match self {
            StealAmount::OneChunk => stealable.min(1),
            StealAmount::Half => stealable.div_ceil(2),
        }
    }

    /// Suffix the paper appends to strategy names ("Reference Half").
    pub fn label(&self) -> &'static str {
        match self {
            StealAmount::OneChunk => "",
            StealAmount::Half => " Half",
        }
    }
}

/// Scheduler parameters shared by all ranks.
#[derive(Debug, Clone)]
pub struct SchedulerCfg {
    /// The tree to search.
    pub workload: Workload,
    /// Nodes per chunk (paper default: 20).
    pub chunk_size: usize,
    /// Node expansions between message polls while working.
    pub poll_interval: u32,
    /// Steal granularity.
    pub steal: StealAmount,
    /// Delay before rank 0 relaunches a failed termination probe.
    pub probe_backoff_ns: u64,
    /// Pause between a failed steal reply and the next attempt
    /// (0 = immediate retry, as the reference implementation does).
    pub retry_delay_ns: u64,
    /// CPU cost a *working* rank pays to service one incoming message
    /// at a poll point (MPI probe/recv/reply processing). This is the
    /// mechanism by which failed-steal convoys slow down the very ranks
    /// that hold work — the paper's link between failed-steal counts
    /// (Figures 7, 15) and performance. Idle ranks answer for free:
    /// they have nothing better to do.
    pub msg_handle_ns: u64,
    /// Additional victim-side cost per chunk packaged into a steal
    /// reply (copying nodes out of the stack into the message).
    pub package_chunk_ns: u64,
    /// Extension (Saraswat et al., the paper's §VI comparison point):
    /// lifeline-based load balancing. After this many *consecutive*
    /// failed steals a thief registers with its lifeline buddies
    /// (hypercube neighbours) and goes dormant instead of spamming
    /// steal requests; ranks with surplus work push chunks to their
    /// registered dormant buddies at polling points. `None` disables
    /// lifelines (the paper's protocol).
    pub lifeline_threshold: Option<u32>,
    /// Failure tolerance: steal timeouts with exponential backoff,
    /// acknowledged work transfers with retransmission, termination
    /// tokens with regeneration, and crashed-rank avoidance. `None`
    /// (the default) runs the paper's bare protocol with **zero**
    /// extra timers, messages, or RNG draws — the fault-free event
    /// schedule is untouched.
    pub fault_tolerance: Option<FaultToleranceCfg>,
}

impl SchedulerCfg {
    /// Defaults: 20-node chunks as in the paper; polling every 4
    /// expansions (the reference implementation polls every iteration —
    /// 4 keeps the victim-service wait below the network latency scale
    /// while bounding simulator event counts); a 2 µs retry pause
    /// modelling the thief-side bookkeeping between attempts.
    pub fn new(workload: Workload, steal: StealAmount) -> Self {
        Self {
            workload,
            chunk_size: 20,
            poll_interval: 4,
            steal,
            probe_backoff_ns: 10_000,
            retry_delay_ns: 2_000,
            msg_handle_ns: 600,
            package_chunk_ns: 200,
            lifeline_threshold: None,
            fault_tolerance: None,
        }
    }
}

/// Knobs of the failure-tolerant steal protocol. All time scales are
/// *derived from the topology latency model* at use time (paper-style:
/// no magic wall-clock constants) — these are only the multipliers and
/// the fallback for when no latency model is wired in.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceCfg {
    /// Multiplier on the estimated request→reply round trip (plus one
    /// victim service interval) before a steal request is declared
    /// lost and the thief re-selects a victim.
    pub timeout_mult: u32,
    /// Cap on exponential-backoff doublings applied after consecutive
    /// timeouts (steal requests) or repeated retransmissions.
    pub max_backoff_doublings: u32,
    /// Round-trip estimate used when no [`Job`] latency model is
    /// available (unit tests driving a `Worker` directly).
    pub fallback_rtt_ns: u64,
}

impl Default for FaultToleranceCfg {
    fn default() -> Self {
        Self {
            timeout_mult: 4,
            max_backoff_doublings: 6,
            fallback_rtt_ns: 200_000,
        }
    }
}

/// Messages of the steal protocol.
///
/// Sequence and transfer identifiers exist for the failure-tolerant
/// protocol: `seq` lets a thief match a reply to the request it is
/// still waiting on (anything else is stale or duplicated), and `xfer`
/// identifies a work transfer end-to-end so duplicated deliveries are
/// absorbed exactly once and lost deliveries can be retransmitted
/// until acknowledged. With fault tolerance off they ride along as
/// zeros and change nothing (wire sizes already budget full headers).
#[derive(Debug, Clone)]
pub enum Msg {
    /// "Give me work."
    StealRequest {
        /// Thief-local request sequence number.
        seq: u64,
    },
    /// Reply: the stolen chunks; empty means the steal failed.
    StealReply {
        /// Echo of the request's sequence number (`u64::MAX` on a
        /// retransmission, which can never match a live request and
        /// therefore always takes the stale-reply path).
        seq: u64,
        /// Victim-local transfer id (0 for empty replies).
        xfer: u64,
        /// Chunks transferred to the thief (empty on failure).
        chunks: Vec<Chunk>,
    },
    /// Failure-tolerant protocol: "transfer `xfer` arrived; stop
    /// retransmitting it."
    StealAck {
        /// The victim-local transfer id being acknowledged.
        xfer: u64,
    },
    /// Lifeline extension: "I am dormant; push me work when you have
    /// some." Registers the sender with the receiver.
    LifelineRequest,
    /// Lifeline extension: unsolicited work pushed to a dormant buddy.
    LifelinePush {
        /// Sender-local transfer id (0 with fault tolerance off).
        xfer: u64,
        /// Chunks donated to the dormant rank (never empty).
        chunks: Vec<Chunk>,
    },
    /// Termination-detection token. `seq` is a sender-local sequence
    /// number for per-hop acknowledgement (0 with fault tolerance off).
    Token {
        /// The ring token itself.
        token: Token,
        /// Sender-local hop sequence number.
        seq: u64,
    },
    /// Fault tolerance only: acknowledges receipt of a ring token hop
    /// (the token may still be discarded as stale — receipt is what
    /// stops the sender's retransmission).
    TokenAck {
        /// The hop sequence number being acknowledged.
        seq: u64,
    },
    /// Global termination announcement (broadcast by rank 0).
    Done,
}

impl Msg {
    /// Bytes on the wire, for latency accounting.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Msg::StealRequest { .. }
            | Msg::LifelineRequest
            | Msg::StealAck { .. }
            | Msg::TokenAck { .. } => 16,
            Msg::StealReply { chunks, .. } | Msg::LifelinePush { chunks, .. } => {
                16 + chunks.iter().map(|c| c.len()).sum::<usize>() * NODE_WIRE_BYTES
            }
            Msg::Token { .. } => 24,
            Msg::Done => 8,
        }
    }
}

/// Timer tokens. Plain small values are the paper protocol's timers;
/// the fault-tolerant protocol packs an identifier into the low 56
/// bits under a class tag in the top byte.
const TIMER_WORK: u64 = 1;
const TIMER_PROBE: u64 = 2;
const TIMER_RETRY: u64 = 3;
/// Class tag: steal-request timeout; low bits hold the request `seq`.
const TIMER_CLASS_STEAL_TIMEOUT: u64 = 4;
/// Class tag: work-transfer retransmission; low bits hold the `xfer`.
const TIMER_CLASS_RETRANSMIT: u64 = 5;
/// Class tag: rank 0's probe watchdog; low bits hold the generation.
const TIMER_CLASS_WATCHDOG: u64 = 6;
/// Class tag: token hop retransmission; low bits hold the hop `seq`.
const TIMER_CLASS_TOKEN_RETX: u64 = 7;
/// Low 56 bits of a classed timer token.
const TIMER_ID_MASK: u64 = (1 << 56) - 1;

#[inline]
fn classed_timer(class: u64, id: u64) -> u64 {
    debug_assert!(id <= TIMER_ID_MASK);
    (class << 56) | id
}

/// Per-rank counters mirrored into `dws_metrics::StealStats` after the
/// run (kept local to avoid a hard dependency in the hot path).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Steal requests issued.
    pub steal_attempts: u64,
    /// Requests answered with work.
    pub steals_ok: u64,
    /// Requests answered empty.
    pub steals_failed: u64,
    /// Chunks received.
    pub chunks_received: u64,
    /// Nodes received.
    pub nodes_received: u64,
    /// Chunks given to thieves.
    pub chunks_given: u64,
    /// Nodes given to thieves.
    pub nodes_given: u64,
    /// Time spent waiting for steal answers.
    pub search_ns: u64,
    /// Completed work-discovery sessions.
    pub sessions: u64,
    /// Total session duration.
    pub session_ns: u64,
    /// Nodes expanded locally.
    pub nodes_processed: u64,
    /// Lifeline extension: times this rank went dormant.
    pub lifeline_dormancies: u64,
    /// Lifeline extension: chunks pushed to dormant buddies.
    pub lifeline_pushes: u64,
    /// Fault tolerance: steal requests that timed out (also counted
    /// in `steals_failed` so attempts still balance).
    pub steal_timeouts: u64,
    /// Fault tolerance: work transfers re-sent after an ack timeout.
    pub retransmits: u64,
    /// Fault tolerance: duplicated deliveries of an already-absorbed
    /// transfer, dropped by the `xfer` dedup.
    pub dup_replies_dropped: u64,
    /// Fault tolerance: empty replies to requests that had already
    /// timed out, dropped on arrival.
    pub stale_replies_dropped: u64,
    /// Fault tolerance: work-carrying replies that arrived after their
    /// request timed out and were absorbed anyway (work is work).
    pub late_work_absorbed: u64,
    /// Fault tolerance: termination tokens regenerated by rank 0's
    /// watchdog after the circulating token was presumed lost.
    pub token_regenerations: u64,
    /// Fault tolerance: nodes in transfers addressed to a rank that
    /// crashed before acknowledging (given up on, counted as lost).
    pub nodes_stranded: u64,
    /// Fault tolerance: nodes refused because they straggled in after
    /// degraded (lossy) termination; the sender's unacknowledged
    /// transfer accounts them as lost.
    pub nodes_refused: u64,
    /// Adaptive selection: victims this rank pushed into quarantine.
    pub quarantines: u64,
    /// Adaptive selection: probe steals sent to quarantined victims
    /// whose probation window had expired.
    pub probe_steals: u64,
    /// Adaptive selection: base-policy draws rejected by the health
    /// overlay (quarantined victim, or acceptance-weight miss).
    pub overlay_rejections: u64,
}

/// One rank of the distributed work-stealing computation.
pub struct Worker {
    cfg: Arc<SchedulerCfg>,
    stack: ChunkedStack,
    selector: VictimSelector,
    term: TerminationState,
    /// True while a WORK timer is outstanding (the rank is "computing"
    /// and only polls messages at batch boundaries).
    computing: bool,
    /// Messages that arrived while computing, handled at the next poll.
    /// The third field is the global arrival time — data-only (nothing
    /// scheduled depends on it), kept so the tracer can attribute
    /// queue-at-victim wait exactly.
    pending: VecDeque<(Rank, Msg, u64)>,
    /// Victim of the outstanding steal request, if any.
    outstanding: Option<Rank>,
    /// Global time the outstanding steal request was sent (search-time
    /// accounting: "the portion of the execution time a process was
    /// waiting for a steal answer").
    wait_since_ns: Option<u64>,
    /// Local time at which the current work-discovery session began.
    search_since_ns: Option<u64>,
    /// Global termination flag.
    done: bool,
    /// Accumulated message-service CPU time to charge to the next
    /// batch (see [`SchedulerCfg::msg_handle_ns`]).
    service_debt_ns: u64,
    /// While draining the poll queue: this message's position in the
    /// service order, as a delay applied to any reply it generates. A
    /// deep queue of steal requests is answered serially — the convoy
    /// cost that makes deterministic victim selection collapse at
    /// scale.
    service_offset_ns: u64,
    /// Reusable child buffer.
    scratch: Vec<Node>,
    /// Activity trace: (local time, became-active) pairs.
    trace: Vec<(u64, bool)>,
    /// Last state written to the trace; keeps transitions alternating
    /// even when work arrives in the window between a stack running dry
    /// and the idle transition being recorded.
    traced_active: bool,
    /// Lifeline buddies this rank registers with (hypercube neighbours).
    lifelines: Vec<Rank>,
    /// Dormant buddies waiting for a push from this rank.
    lifeline_waiters: Vec<Rank>,
    /// Consecutive failed steals since the last success.
    consecutive_fails: u32,
    /// Dormant: registered with lifelines, no active steal requests.
    dormant: bool,
    /// Latency oracle for deriving fault-tolerance time scales from
    /// the topology model (only consulted when fault tolerance is on).
    job: Option<Arc<Job>>,
    /// Sequence number of the next steal request.
    req_seq: u64,
    /// Sequence number of the outstanding request (valid while
    /// `outstanding.is_some()`; matches replies under fault tolerance).
    outstanding_seq: u64,
    /// Consecutive steal-request timeouts (drives exponential backoff).
    consecutive_timeouts: u32,
    /// Next transfer id this rank will assign (starts at 1; 0 means
    /// "untracked", the fault-tolerance-off wire value).
    xfer_next: u64,
    /// Work transfers sent but not yet acknowledged:
    /// `(xfer, thief, chunks, attempt)`. Non-empty keeps this rank
    /// non-passive — the unacked-gating that lets degraded termination
    /// drop Safra's message counts without losing soundness.
    unacked: Vec<(u64, Rank, Vec<Chunk>, u32)>,
    /// Transfers whose thief crashed before acknowledging: given up
    /// on, kept for lost-work reconciliation.
    stranded: Vec<(u64, Rank, Vec<Chunk>)>,
    /// Transfers this rank has already absorbed, by `(victim, xfer)`;
    /// duplicated deliveries are dropped and re-acked.
    absorbed: HashSet<(Rank, u64)>,
    /// Next token hop sequence number (starts at 1; 0 is the
    /// fault-tolerance-off wire value).
    token_seq_next: u64,
    /// The ring-token hop awaiting acknowledgement:
    /// `(seq, successor, token, attempt)`.
    pending_token: Option<(u64, Rank, Token, u32)>,
    /// Highest token hop seq processed per predecessor (dedups
    /// retransmitted hops).
    token_seen: HashMap<Rank, u64>,
    /// Rank 0: regenerations of the current probe (backoff driver).
    watchdog_attempts: u32,
    /// Rank 0: a crash has been observed; termination runs lossy.
    crash_seen: bool,
    /// Causal span recorder. Off by default: recording is one branch
    /// and nothing else in the scheduler may depend on it, so the
    /// event schedule is identical with tracing on or off. Spans are
    /// recorded at exactly the sites that bump [`Counters`], which is
    /// what lets `SpanTrace::reconcile` cross-check them exactly.
    tracer: Tracer,
    /// Optional self-profiling probe shared with the engine. Only ever
    /// reads the host clock; one branch per site when absent, so the
    /// event schedule is identical with profiling on or off.
    probe: Option<Arc<PerfProbe>>,
    /// Adaptive victim selection: per-victim health ledger. `None`
    /// (the default) keeps the draw path exactly the base policy's —
    /// zero extra RNG draws, so the schedule is untouched.
    health: Option<HealthTracker>,
    /// Online steal-RTT histogram for streaming runs. Recorded at
    /// exactly the span sites that feed
    /// `SpanTrace::histograms().steal_rtt_ns`, so merging every rank's
    /// histogram in rank order reproduces the post-hoc value.
    rtt_hist: Option<Histogram>,
    /// Statistics counters.
    pub counters: Counters,
}

/// Hypercube lifeline graph: rank `me`'s buddies are `me XOR 2^k` for
/// every bit position below `n`; always non-empty and connected, so
/// pushed work can reach any dormant rank transitively.
fn hypercube_lifelines(me: Rank, n: u32) -> Vec<Rank> {
    let mut out = Vec::new();
    let mut bit = 1u32;
    while bit < n {
        let buddy = me ^ bit;
        if buddy < n {
            out.push(buddy);
        }
        bit <<= 1;
    }
    if out.is_empty() && n > 1 {
        out.push((me + 1) % n);
    }
    out
}

impl Worker {
    /// Build the worker for `me`; rank 0 will seed itself with the root.
    pub fn new(cfg: Arc<SchedulerCfg>, me: Rank, n_ranks: u32, selector: VictimSelector) -> Self {
        Self {
            stack: ChunkedStack::new(cfg.chunk_size),
            selector,
            term: TerminationState::new(me, n_ranks),
            computing: false,
            pending: VecDeque::new(),
            outstanding: None,
            wait_since_ns: None,
            search_since_ns: None,
            done: false,
            service_debt_ns: 0,
            service_offset_ns: 0,
            scratch: Vec::new(),
            trace: Vec::new(),
            traced_active: false,
            lifelines: if cfg.lifeline_threshold.is_some() {
                hypercube_lifelines(me, n_ranks)
            } else {
                Vec::new()
            },
            lifeline_waiters: Vec::new(),
            consecutive_fails: 0,
            dormant: false,
            job: None,
            req_seq: 0,
            outstanding_seq: 0,
            consecutive_timeouts: 0,
            xfer_next: 1,
            token_seq_next: 1,
            pending_token: None,
            token_seen: HashMap::new(),
            unacked: Vec::new(),
            stranded: Vec::new(),
            absorbed: HashSet::new(),
            watchdog_attempts: 0,
            crash_seen: false,
            tracer: Tracer::off(),
            probe: None,
            health: None,
            rtt_hist: None,
            counters: Counters::default(),
            cfg,
        }
    }

    /// Enable the adaptive victim-health overlay (builder style). The
    /// base selector's draws are filtered through learned per-victim
    /// outcome scores and the quarantine state machine — see
    /// [`crate::health`].
    pub fn with_health(mut self, cfg: AdaptiveCfg) -> Self {
        self.health = Some(HealthTracker::new(cfg));
        self
    }

    /// The adaptive health ledger, if the overlay is enabled.
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// Enable causal span recording for this rank (builder style).
    pub fn with_tracing(mut self) -> Self {
        self.tracer = Tracer::on();
        self
    }

    /// The spans recorded so far (empty unless
    /// [`with_tracing`](Self::with_tracing) was used).
    pub fn spans(&self) -> &[SpanRecord] {
        self.tracer.records()
    }

    /// Record steal round-trips into an online histogram (builder
    /// style). One branch per steal reply when off; when on, the
    /// recording sites mirror the span tracer's `StealOk`/`StealEmpty`
    /// exactly, including the duplicated-reply `StealOk` under fault
    /// tolerance, so the merged per-rank histograms are
    /// element-identical to the post-hoc span-derived ones.
    pub fn with_rtt_histogram(mut self) -> Self {
        self.rtt_hist = Some(Histogram::new());
        self
    }

    /// The online steal-RTT histogram, if enabled.
    pub fn rtt_histogram(&self) -> Option<&Histogram> {
        self.rtt_hist.as_ref()
    }

    /// Mirror one steal round-trip into the online histogram. Call
    /// only beside a `StealOk`/`StealEmpty` span site.
    #[inline]
    fn record_rtt(&mut self, rtt_ns: u64) {
        if let Some(h) = self.rtt_hist.as_mut() {
            h.record(rtt_ns);
        }
    }

    /// Share the engine's self-profiling probe with this rank (builder
    /// style): victim draws and span-record time get phase-accounted.
    pub fn with_profiler(mut self, probe: Arc<PerfProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Record one span at the current global time (no-op when tracing
    /// is off).
    #[inline]
    fn span(&mut self, ctx: &Ctx<'_, Msg>, trace: u64, kind: SpanKind) {
        let t0 = if self.tracer.enabled() {
            prof_start(&self.probe)
        } else {
            None
        };
        self.tracer
            .record(ctx.now().ns(), ctx.me() as usize, trace, kind);
        prof_record(&self.probe, Phase::TraceRecord, t0);
    }

    /// Attach the topology latency model so fault-tolerance timeouts
    /// are derived from actual link latencies rather than the fallback.
    pub fn with_job(mut self, job: Arc<Job>) -> Self {
        self.job = Some(job);
        self
    }

    /// The recorded activity trace (local clock).
    pub fn trace(&self) -> &[(u64, bool)] {
        &self.trace
    }

    /// True once this rank has observed global termination.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Nodes remaining in the local stack (0 after a clean run).
    pub fn backlog(&self) -> usize {
        self.stack.len()
    }

    /// Passive in the termination-detection sense: holds no work.
    /// A rank mid-batch is not passive — its expansions may still
    /// produce stealable chunks. Under fault tolerance a rank with an
    /// unacknowledged work transfer is also not passive: until the
    /// thief confirms receipt, that work is "ours" for termination
    /// purposes, which is what makes count-free (lossy) termination
    /// sound — in-flight work always pins a non-passive rank that
    /// parks the token.
    fn passive(&self) -> bool {
        self.stack.is_empty() && !self.computing && self.unacked.is_empty()
    }

    /// Is fault tolerance enabled?
    #[inline]
    fn ft_on(&self) -> bool {
        self.cfg.fault_tolerance.is_some()
    }

    /// Estimated request→reply round trip to `peer`, from the topology
    /// latency model when present.
    fn rtt_ns(&self, me: Rank, peer: Rank) -> u64 {
        let ft = self.cfg.fault_tolerance.as_ref().expect("ft enabled");
        match &self.job {
            Some(job) => {
                let reply_bytes = 16 + self.cfg.chunk_size * NODE_WIRE_BYTES;
                job.latency_ns(me, peer, 16) + job.latency_ns(peer, me, reply_bytes)
            }
            None => ft.fallback_rtt_ns,
        }
    }

    /// One victim-side service interval: a working victim answers at
    /// its next poll point, up to a full batch plus queue service away.
    fn service_slack_ns(&self) -> u64 {
        self.cfg.poll_interval as u64 * self.cfg.workload.node_ns() + 4 * self.cfg.msg_handle_ns
    }

    /// Steal-request timeout: RTT + service slack, scaled by the
    /// safety multiplier, doubled per consecutive timeout (capped).
    fn steal_timeout_ns(&self, me: Rank, victim: Rank) -> u64 {
        let ft = self.cfg.fault_tolerance.as_ref().expect("ft enabled");
        let base = (self.rtt_ns(me, victim) + self.service_slack_ns()) * ft.timeout_mult as u64;
        base << self.consecutive_timeouts.min(ft.max_backoff_doublings)
    }

    /// Ack timeout before retransmitting transfer attempt `attempt`.
    fn retransmit_delay_ns(&self, me: Rank, thief: Rank, attempt: u32) -> u64 {
        let ft = self.cfg.fault_tolerance.as_ref().expect("ft enabled");
        let base = (self.rtt_ns(me, thief) + self.service_slack_ns()) * ft.timeout_mult as u64;
        base << attempt.min(ft.max_backoff_doublings)
    }

    /// Watchdog delay for a full token circulation: every hop can cost
    /// a latency plus one service interval (the token parks at active
    /// ranks, so this is a floor, backed off per regeneration).
    fn watchdog_delay_ns(&self, n_ranks: u32) -> u64 {
        let ft = self.cfg.fault_tolerance.as_ref().expect("ft enabled");
        let hop = match &self.job {
            Some(job) => job.latency_ns(0, n_ranks.saturating_sub(1).max(1), 24),
            None => ft.fallback_rtt_ns / 2,
        };
        let base = n_ranks as u64 * (hop + self.service_slack_ns()) * ft.timeout_mult as u64;
        base << self.watchdog_attempts.min(ft.max_backoff_doublings)
    }

    /// Rank 0: note any crash and switch termination to lossy mode.
    fn refresh_lossy(&mut self, ctx: &Ctx<'_, Msg>) {
        if !self.ft_on() || self.crash_seen {
            return;
        }
        if (0..ctx.n_ranks()).any(|r| ctx.is_crashed(r)) {
            self.crash_seen = true;
            self.term.set_lossy(true);
        }
    }

    /// An ack (or a stranding) may have just made this rank passive:
    /// release a parked token, and let rank 0 probe.
    fn maybe_became_passive(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.done || !self.passive() {
            return;
        }
        if let Some(action) = self.term.on_became_passive() {
            self.apply_token_action(ctx, action);
        }
        if !self.done && ctx.me() == 0 && self.term.should_launch_probe(true) {
            self.launch_probe(ctx);
        }
    }

    /// Rank 0: start a probe (and its loss watchdog, under fault
    /// tolerance).
    fn launch_probe(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.refresh_lossy(ctx);
        let token = self.term.launch_probe();
        self.watchdog_attempts = 0;
        self.forward_token(ctx, token);
        if self.ft_on() && !self.done {
            let delay = self.watchdog_delay_ns(ctx.n_ranks());
            ctx.set_timer(
                delay,
                classed_timer(TIMER_CLASS_WATCHDOG, token.generation as u64),
            );
        }
    }

    /// Send the token down the ring — to the next *live* rank under
    /// fault tolerance. When rank 0 is the only survivor the token is
    /// evaluated locally instead of being sent.
    fn forward_token(&mut self, ctx: &mut Ctx<'_, Msg>, token: Token) {
        let next = if self.ft_on() {
            self.term.next_live_in_ring(|r| ctx.is_crashed(r))
        } else {
            self.term.next_in_ring()
        };
        if next == ctx.me() {
            debug_assert_eq!(ctx.me(), 0, "only rank 0 can be the sole survivor");
            if let Some(action) = self.term.try_handle_token(token, self.passive()) {
                self.apply_token_action(ctx, action);
            }
            return;
        }
        let seq = if self.ft_on() {
            // Per-hop reliability: a lost token would otherwise sink
            // the whole probe (the ring is only as strong as its
            // weakest of n hops). Remember the token and retransmit
            // until the successor acknowledges receipt.
            let seq = self.token_seq_next;
            self.token_seq_next += 1;
            self.pending_token = Some((seq, next, token, 0));
            let delay = self.retransmit_delay_ns(ctx.me(), next, 0);
            ctx.set_timer(delay, classed_timer(TIMER_CLASS_TOKEN_RETX, seq));
            seq
        } else {
            0
        };
        self.span(
            ctx,
            0,
            SpanKind::TokenHop {
                to: next as usize,
                generation: token.generation as u64,
            },
        );
        let msg = Msg::Token { token, seq };
        ctx.send(next, msg.wire_bytes(), msg);
    }

    /// Token-hop retransmission timer: the successor has not
    /// acknowledged this hop yet.
    fn on_token_retx_timer(&mut self, ctx: &mut Ctx<'_, Msg>, seq: u64) {
        if self.done {
            self.pending_token = None;
            return;
        }
        let Some((pending_seq, to, token, attempt)) = self.pending_token else {
            return;
        };
        if pending_seq != seq {
            return; // superseded by a newer token
        }
        if ctx.is_crashed(to) {
            // The successor died holding our hop: route the same token
            // around the corpse instead.
            self.pending_token = None;
            self.forward_token(ctx, token);
            return;
        }
        self.counters.retransmits += 1;
        self.span(
            ctx,
            0,
            SpanKind::Retransmit {
                to: to as usize,
                xfer: seq,
                attempt: (attempt + 1) as u64,
            },
        );
        self.pending_token = Some((seq, to, token, attempt + 1));
        let msg = Msg::Token { token, seq };
        ctx.send(to, msg.wire_bytes(), msg);
        let delay = self.retransmit_delay_ns(ctx.me(), to, attempt + 1);
        ctx.set_timer(delay, classed_timer(TIMER_CLASS_TOKEN_RETX, seq));
    }

    /// Receive work-carrying chunks while already active: count them
    /// and fold them into the stack, with no phase transition.
    fn absorb_chunks(&mut self, chunks: Vec<Chunk>) {
        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
        self.counters.chunks_received += chunks.len() as u64;
        self.counters.nodes_received += nodes as u64;
        self.term.on_work_received();
        self.stack.receive_chunks(chunks);
    }

    /// Lifeline extension: donate one chunk to each registered dormant
    /// buddy, as far as stealable work allows.
    fn serve_lifeline_waiters(&mut self, ctx: &mut Ctx<'_, Msg>) {
        while !self.lifeline_waiters.is_empty() && self.stack.stealable_chunks() > 0 && !self.done {
            let waiter = self.lifeline_waiters.remove(0);
            if self.ft_on() && ctx.is_crashed(waiter) {
                // A dead buddy gets nothing; keep the chunk.
                continue;
            }
            let chunks = self.stack.steal_chunks(1);
            debug_assert_eq!(chunks.len(), 1);
            let nodes: usize = chunks.iter().map(|c| c.len()).sum();
            self.counters.chunks_given += chunks.len() as u64;
            self.counters.nodes_given += nodes as u64;
            self.counters.lifeline_pushes += chunks.len() as u64;
            let package = chunks.len() as u64 * self.cfg.package_chunk_ns;
            self.service_debt_ns += package;
            self.term.on_work_sent();
            let xfer = self.track_transfer(ctx, waiter, &chunks);
            let msg = Msg::LifelinePush { xfer, chunks };
            ctx.send_delayed(waiter, msg.wire_bytes(), self.service_offset_ns, msg);
        }
    }

    /// Under fault tolerance: assign a transfer id to an outgoing
    /// work-carrying message, remember its chunks for retransmission,
    /// and arm the ack timeout. Returns 0 (untracked) otherwise.
    fn track_transfer(&mut self, ctx: &mut Ctx<'_, Msg>, to: Rank, chunks: &[Chunk]) -> u64 {
        if !self.ft_on() {
            return 0;
        }
        let xfer = self.xfer_next;
        self.xfer_next += 1;
        self.unacked.push((xfer, to, chunks.to_vec(), 0));
        let delay = self.retransmit_delay_ns(ctx.me(), to, 0) + self.service_offset_ns;
        ctx.set_timer(delay, classed_timer(TIMER_CLASS_RETRANSMIT, xfer));
        xfer
    }

    /// Expand up to `poll_interval` nodes and charge their cost;
    /// transitions to searching when the stack runs dry.
    fn start_batch(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(!self.computing);
        self.serve_lifeline_waiters(ctx);
        let mut expanded = 0u32;
        while expanded < self.cfg.poll_interval {
            let Some(node) = self.stack.pop() else { break };
            self.cfg.workload.spec.children_into(
                &node,
                self.cfg.workload.gen_rounds,
                &mut self.scratch,
            );
            for child in self.scratch.drain(..) {
                self.stack.push(child);
            }
            expanded += 1;
        }
        if expanded > 0 {
            self.counters.nodes_processed += expanded as u64;
            self.computing = true;
            let cost = expanded as u64 * self.cfg.workload.node_ns()
                + std::mem::take(&mut self.service_debt_ns);
            ctx.set_timer(cost, TIMER_WORK);
        } else {
            self.service_debt_ns = 0;
            self.go_idle(ctx);
        }
    }

    /// The stack ran dry: record the transition, release any parked
    /// token, and begin searching for work.
    fn go_idle(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.stack.is_empty() && !self.computing);
        if self.traced_active {
            let t0 = prof_start(&self.probe);
            self.trace.push((ctx.local_now().ns(), false));
            ctx.record_activity(false);
            self.traced_active = false;
            prof_record(&self.probe, Phase::TraceRecord, t0);
        }
        self.search_since_ns = Some(ctx.now().ns());
        if self.passive() {
            // Under fault tolerance an unacked transfer keeps us
            // non-passive even with an empty stack; the token stays
            // parked until the ack arrives (`maybe_became_passive`).
            if let Some(action) = self.term.on_became_passive() {
                self.apply_token_action(ctx, action);
            }
        }
        if self.done {
            return;
        }
        if ctx.me() == 0 && self.term.should_launch_probe(self.passive()) {
            self.launch_probe(ctx);
        }
        if self.outstanding.is_some() {
            // A request is already out (we were reactivated by pushed
            // work while it was in flight — a buddy may hold a stale
            // lifeline registration from an earlier dormancy); its
            // reply or timeout will drive the next attempt.
            return;
        }
        self.send_steal_request(ctx);
    }

    /// Work arrived: book the session, record the transition, resume.
    fn go_active(&mut self, ctx: &mut Ctx<'_, Msg>, chunks: Vec<Chunk>) {
        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
        self.counters.chunks_received += chunks.len() as u64;
        self.counters.nodes_received += nodes as u64;
        self.consecutive_fails = 0;
        self.dormant = false;
        self.term.on_work_received();
        self.stack.receive_chunks(chunks);
        if let Some(since) = self.search_since_ns.take() {
            let dur = ctx.now().ns().saturating_sub(since);
            self.counters.sessions += 1;
            self.counters.session_ns += dur;
            self.span(ctx, 0, SpanKind::SessionEnd { dur_ns: dur });
        }
        if !self.traced_active {
            let t0 = prof_start(&self.probe);
            self.trace.push((ctx.local_now().ns(), true));
            ctx.record_activity(true);
            self.traced_active = true;
            prof_record(&self.probe, Phase::TraceRecord, t0);
        }
        self.start_batch(ctx);
    }

    /// Draw a victim through the adaptive health overlay: bounded
    /// rejection against the base selector — quarantined victims are
    /// redrawn, non-quarantined ones accepted with probability equal
    /// to their learned score, an expired quarantine turns the draw
    /// into a probe steal. Falls back to a deterministic scan from
    /// `me + 1` when the rejection budget runs out, so the draw stays
    /// O(1) on top of the base policy's O(1) path.
    fn draw_victim_adaptive(&mut self, ctx: &mut Ctx<'_, Msg>) -> Option<Rank> {
        let now = ctx.now().ns();
        let ft = self.ft_on();
        let rounds = {
            let h = self.health.as_ref().expect("adaptive overlay enabled");
            h.cfg().max_overlay_rounds.max(1)
        };
        let mut fallback = None;
        for _ in 0..rounds {
            let v = self.selector.next_victim(ctx.rng());
            debug_assert_ne!(v, ctx.me());
            if ft && ctx.is_crashed(v) {
                // The crash oracle preempts the overlay; the health
                // score learns the same fact from timeouts when the
                // oracle is off.
                self.counters.overlay_rejections += 1;
                continue;
            }
            fallback = Some(v);
            let h = self.health.as_mut().expect("adaptive overlay enabled");
            match h.gate(v, now) {
                Gate::Probe => {
                    self.counters.probe_steals += 1;
                    return Some(v);
                }
                Gate::Reject => {
                    self.counters.overlay_rejections += 1;
                }
                Gate::Allow => {
                    let w = h.accept_weight(v);
                    if w >= 1.0 || ctx.rng().next_f64() < w {
                        return Some(v);
                    }
                    self.counters.overlay_rejections += 1;
                }
            }
        }
        // Rejection budget exhausted: scan deterministically from
        // me + 1 for a live, non-quarantined peer.
        let n = ctx.n_ranks();
        let me = ctx.me();
        for i in 1..n {
            let r = (me + i) % n;
            if ft && ctx.is_crashed(r) {
                continue;
            }
            let h = self.health.as_ref().expect("adaptive overlay enabled");
            if !h.is_quarantined(r, now) {
                return Some(r);
            }
        }
        // Everyone left is quarantined: better to hammer a suspect
        // than to stall — reuse the last non-crashed draw, else any
        // live peer at all.
        fallback.or_else(|| (0..n).find(|&r| r != me && !(ft && ctx.is_crashed(r))))
    }

    fn send_steal_request(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.outstanding.is_none());
        let t_draw = prof_start(&self.probe);
        let victim = if self.health.is_some() {
            match self.draw_victim_adaptive(ctx) {
                Some(v) => v,
                None => {
                    prof_record(&self.probe, Phase::VictimDraw, t_draw);
                    return; // nobody left to steal from
                }
            }
        } else {
            let mut victim = self.selector.next_victim(ctx.rng());
            debug_assert_ne!(victim, ctx.me());
            if self.ft_on() && ctx.is_crashed(victim) {
                // Re-draw past dead victims; a stubbornly deterministic
                // policy (round-robin stuck on a corpse advances on redraw)
                // falls back to a linear scan for any live peer.
                let n = ctx.n_ranks();
                let mut tries = 0;
                while ctx.is_crashed(victim) && tries < 2 * n {
                    victim = self.selector.next_victim(ctx.rng());
                    tries += 1;
                }
                if ctx.is_crashed(victim) {
                    let me = ctx.me();
                    match (0..n).find(|&r| r != me && !ctx.is_crashed(r)) {
                        Some(live) => victim = live,
                        None => {
                            prof_record(&self.probe, Phase::VictimDraw, t_draw);
                            return; // nobody left to steal from
                        }
                    }
                }
            }
            victim
        };
        prof_record(&self.probe, Phase::VictimDraw, t_draw);
        let seq = self.req_seq;
        self.req_seq += 1;
        self.outstanding = Some(victim);
        self.outstanding_seq = seq;
        self.wait_since_ns = Some(ctx.now().ns());
        self.counters.steal_attempts += 1;
        self.span(
            ctx,
            trace_id(ctx.me() as usize, seq),
            SpanKind::StealRequestSent {
                victim: victim as usize,
            },
        );
        let msg = Msg::StealRequest { seq };
        ctx.send(victim, msg.wire_bytes(), msg);
        if self.ft_on() {
            let timeout = self.steal_timeout_ns(ctx.me(), victim);
            ctx.set_timer(timeout, classed_timer(TIMER_CLASS_STEAL_TIMEOUT, seq));
        }
    }

    /// Service one message (either immediately when idle, or from the
    /// pending queue at a poll boundary). `arrived_ns` is the global
    /// time the message was delivered — equal to now for an idle rank,
    /// earlier when it sat in the pending queue (tracing only).
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, from: Rank, msg: Msg, arrived_ns: u64) {
        match msg {
            Msg::StealRequest { seq } => {
                // The thief minted trace_id(from, seq); recomputing it
                // here links both sides of the attempt with no extra
                // wire fields.
                self.span(
                    ctx,
                    trace_id(from as usize, seq),
                    SpanKind::StealRequestRecv {
                        thief: from as usize,
                    },
                );
                if self.done && self.ft_on() {
                    // Termination gossip: the requester evidently missed
                    // the Done broadcast (dropped); repeat it instead of
                    // an empty reply, or it will keep hunting forever.
                    ctx.send(from, Msg::Done.wire_bytes(), Msg::Done);
                    return;
                }
                let want = self.cfg.steal.want(self.stack.stealable_chunks());
                let chunks = if self.done {
                    Vec::new()
                } else {
                    self.stack.steal_chunks(want)
                };
                let mut xfer = 0;
                if !chunks.is_empty() {
                    let nodes: usize = chunks.iter().map(|c| c.len()).sum();
                    self.counters.chunks_given += chunks.len() as u64;
                    self.counters.nodes_given += nodes as u64;
                    let package = chunks.len() as u64 * self.cfg.package_chunk_ns;
                    self.service_debt_ns += package;
                    self.service_offset_ns += package;
                    self.term.on_work_sent();
                    xfer = self.track_transfer(ctx, from, &chunks);
                }
                let reply_nodes: usize = chunks.iter().map(|c| c.len()).sum();
                self.span(
                    ctx,
                    trace_id(from as usize, seq),
                    SpanKind::StealReplySent {
                        thief: from as usize,
                        nodes: reply_nodes as u64,
                    },
                );
                self.span(
                    ctx,
                    trace_id(from as usize, seq),
                    SpanKind::StealServiced {
                        thief: from as usize,
                        queue_ns: ctx.now().ns().saturating_sub(arrived_ns),
                        depart_delay_ns: self.service_offset_ns,
                    },
                );
                let reply = Msg::StealReply { seq, xfer, chunks };
                ctx.send_delayed(from, reply.wire_bytes(), self.service_offset_ns, reply);
            }
            Msg::StealReply { seq, xfer, chunks } => {
                let expected = self.outstanding == Some(from)
                    && (!self.ft_on() || seq == self.outstanding_seq);
                if self.ft_on() && !expected {
                    // The matching request already timed out, or this
                    // is a duplicated / retransmitted delivery.
                    self.handle_unexpected_reply(ctx, from, xfer, chunks);
                    return;
                }
                debug_assert_eq!(self.outstanding, Some(from), "unexpected steal reply");
                self.outstanding = None;
                self.consecutive_timeouts = 0;
                let mut rtt_ns = 0;
                if let Some(sent) = self.wait_since_ns.take() {
                    rtt_ns = ctx.now().ns().saturating_sub(sent);
                    self.counters.search_ns += rtt_ns;
                }
                let attempt_id = trace_id(ctx.me() as usize, seq);
                // Health updates live at exactly the sites that bump
                // the steal counters, so span/counter reconciliation
                // covers them too.
                if let Some(h) = self.health.as_mut() {
                    if chunks.is_empty() {
                        h.on_empty(from, rtt_ns);
                    } else {
                        h.on_success(from, rtt_ns);
                    }
                }
                if self.ft_on() && !chunks.is_empty() {
                    if self.absorbed.contains(&(from, xfer)) {
                        // The retransmission already delivered this
                        // transfer; count the attempt as served.
                        self.counters.steals_ok += 1;
                        self.counters.dup_replies_dropped += 1;
                        self.record_rtt(rtt_ns);
                        self.span(
                            ctx,
                            attempt_id,
                            SpanKind::StealOk {
                                victim: from as usize,
                                rtt_ns,
                                nodes: 0,
                            },
                        );
                        let ack = Msg::StealAck { xfer };
                        ctx.send(from, ack.wire_bytes(), ack);
                        return;
                    }
                    if self.done {
                        // The sender crashed after transmitting (a live
                        // sender's unacked transfer blocks termination);
                        // refuse — its unacked entry books these nodes
                        // as lost. The attempt itself was reconciled as
                        // failed in `finish`.
                        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
                        self.counters.nodes_refused += nodes as u64;
                        return;
                    }
                    self.absorbed.insert((from, xfer));
                    let ack = Msg::StealAck { xfer };
                    ctx.send(from, ack.wire_bytes(), ack);
                }
                if chunks.is_empty() {
                    self.counters.steals_failed += 1;
                    self.consecutive_fails += 1;
                    self.record_rtt(rtt_ns);
                    self.span(
                        ctx,
                        attempt_id,
                        SpanKind::StealEmpty {
                            victim: from as usize,
                            rtt_ns,
                        },
                    );
                    // Only keep hunting if we are still actually idle —
                    // a lifeline push may have reactivated us while
                    // this reply was in flight.
                    if !self.done && self.stack.is_empty() && !self.computing {
                        if let Some(threshold) = self.cfg.lifeline_threshold {
                            if self.consecutive_fails >= threshold && !self.dormant {
                                // Lifeline extension: stop spamming —
                                // register with the buddies and wait to
                                // be pushed work.
                                self.dormant = true;
                                self.counters.lifeline_dormancies += 1;
                                for buddy in self.lifelines.clone() {
                                    ctx.send(
                                        buddy,
                                        Msg::LifelineRequest.wire_bytes(),
                                        Msg::LifelineRequest,
                                    );
                                }
                                if self.ft_on() {
                                    // Registrations can be dropped;
                                    // re-register on a generous backoff.
                                    let buddy = self.lifelines[0];
                                    let delay = self.retransmit_delay_ns(ctx.me(), buddy, 2);
                                    ctx.set_timer(delay, TIMER_RETRY);
                                }
                                return;
                            }
                        }
                        if self.cfg.retry_delay_ns > 0 {
                            ctx.set_timer(self.cfg.retry_delay_ns, TIMER_RETRY);
                        } else {
                            self.send_steal_request(ctx);
                        }
                    }
                } else {
                    self.counters.steals_ok += 1;
                    let nodes: usize = chunks.iter().map(|c| c.len()).sum();
                    self.record_rtt(rtt_ns);
                    self.span(
                        ctx,
                        attempt_id,
                        SpanKind::StealOk {
                            victim: from as usize,
                            rtt_ns,
                            nodes: nodes as u64,
                        },
                    );
                    if self.done {
                        // Termination was announced while work was in
                        // flight toward us — cannot happen with a sound
                        // detector; surface loudly.
                        panic!("rank {} received work after Done", ctx.me());
                    }
                    if self.stack.is_empty() && !self.computing {
                        self.go_active(ctx, chunks);
                    } else {
                        // A lifeline push beat this reply to the punch;
                        // we are already active — just absorb.
                        self.absorb_chunks(chunks);
                    }
                }
            }
            Msg::StealAck { xfer } => {
                if let Some(pos) = self.unacked.iter().position(|(x, ..)| *x == xfer) {
                    self.unacked.swap_remove(pos);
                    self.span(
                        ctx,
                        0,
                        SpanKind::TransferAcked {
                            thief: from as usize,
                            xfer,
                        },
                    );
                    self.maybe_became_passive(ctx);
                }
            }
            Msg::LifelineRequest => {
                if self.done && self.ft_on() {
                    // Termination gossip (see StealRequest).
                    ctx.send(from, Msg::Done.wire_bytes(), Msg::Done);
                    return;
                }
                if !self.lifeline_waiters.contains(&from) {
                    self.lifeline_waiters.push(from);
                }
                // An idle or freshly-polled rank with surplus serves
                // immediately; otherwise the next batch boundary will.
                if !self.computing && self.stack.stealable_chunks() > 0 {
                    self.serve_lifeline_waiters(ctx);
                }
            }
            Msg::LifelinePush { xfer, chunks } => {
                debug_assert!(!chunks.is_empty(), "lifeline pushes always carry work");
                if self.ft_on() {
                    if self.absorbed.contains(&(from, xfer)) {
                        self.counters.dup_replies_dropped += 1;
                        let ack = Msg::StealAck { xfer };
                        ctx.send(from, ack.wire_bytes(), ack);
                        return;
                    }
                    if self.done {
                        // Straggler after lossy termination; the
                        // sender's unacked entry books these as lost.
                        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
                        self.counters.nodes_refused += nodes as u64;
                        return;
                    }
                    self.absorbed.insert((from, xfer));
                    let ack = Msg::StealAck { xfer };
                    ctx.send(from, ack.wire_bytes(), ack);
                } else if self.done {
                    panic!("rank {} received lifeline work after Done", ctx.me());
                }
                if self.stack.is_empty() && !self.computing {
                    // Dormant (or idle mid-search): this is our wake-up.
                    self.go_active(ctx, chunks);
                } else {
                    // Already busy again (e.g. a steal landed first):
                    // just absorb the donation.
                    self.absorb_chunks(chunks);
                }
            }
            Msg::Token { token, seq } => {
                if self.ft_on() {
                    // Acknowledge the hop whatever we decide about the
                    // token, and drop retransmitted duplicates (hop
                    // seqs from one sender are strictly increasing).
                    let ack = Msg::TokenAck { seq };
                    ctx.send(from, ack.wire_bytes(), ack);
                    let last = self.token_seen.get(&from).copied().unwrap_or(0);
                    if seq <= last {
                        return;
                    }
                    self.token_seen.insert(from, seq);
                }
                if ctx.me() == 0 {
                    self.refresh_lossy(ctx);
                }
                let passive = self.passive();
                if let Some(action) = self.term.try_handle_token(token, passive) {
                    self.apply_token_action(ctx, action);
                }
            }
            Msg::TokenAck { seq } => {
                if self.pending_token.map(|(s, ..)| s) == Some(seq) {
                    self.pending_token = None;
                }
            }
            Msg::Done => {
                self.finish(ctx);
            }
        }
    }

    /// A reply whose request is no longer outstanding: stale (empty),
    /// duplicated (already absorbed), a post-termination straggler, or
    /// late work worth absorbing anyway.
    fn handle_unexpected_reply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: Rank,
        xfer: u64,
        chunks: Vec<Chunk>,
    ) {
        // Any reply — stale, duplicated, or late — proves the sender
        // is alive; lift its quarantine.
        if let Some(h) = self.health.as_mut() {
            h.on_alive(from);
        }
        if chunks.is_empty() {
            self.counters.stale_replies_dropped += 1;
            return;
        }
        if self.absorbed.contains(&(from, xfer)) {
            self.counters.dup_replies_dropped += 1;
            // Re-ack: our first ack may itself have been dropped.
            let ack = Msg::StealAck { xfer };
            ctx.send(from, ack.wire_bytes(), ack);
            return;
        }
        if self.done {
            let nodes: usize = chunks.iter().map(|c| c.len()).sum();
            self.counters.nodes_refused += nodes as u64;
            return;
        }
        // The request timed out (and was charged as failed) but its
        // work showed up after all — absorb it, work is work.
        self.absorbed.insert((from, xfer));
        self.counters.late_work_absorbed += 1;
        let ack = Msg::StealAck { xfer };
        ctx.send(from, ack.wire_bytes(), ack);
        if self.stack.is_empty() && !self.computing {
            self.go_active(ctx, chunks);
        } else {
            self.absorb_chunks(chunks);
        }
    }

    fn apply_token_action(&mut self, ctx: &mut Ctx<'_, Msg>, action: TokenAction) {
        match action {
            TokenAction::Forward(token) => {
                self.forward_token(ctx, token);
            }
            TokenAction::Terminate => {
                for r in 0..ctx.n_ranks() {
                    if r != ctx.me() {
                        ctx.send(r, Msg::Done.wire_bytes(), Msg::Done);
                    }
                }
                self.finish(ctx);
            }
            TokenAction::Restart => {
                ctx.set_timer(self.cfg.probe_backoff_ns, TIMER_PROBE);
            }
            TokenAction::Drop => {}
        }
    }

    /// Observe global termination: close the open session and stop.
    fn finish(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.done {
            return;
        }
        self.done = true;
        self.pending_token = None;
        if let Some(since) = self.search_since_ns.take() {
            let dur = ctx.now().ns().saturating_sub(since);
            self.counters.sessions += 1;
            self.counters.session_ns += dur;
            self.span(ctx, 0, SpanKind::SessionEnd { dur_ns: dur });
        }
        if self.ft_on() {
            if let Some(victim) = self.outstanding.take() {
                // A request still in flight at termination will never be
                // served; charge it as failed so attempts stay balanced.
                self.counters.steals_failed += 1;
                self.span(
                    ctx,
                    trace_id(ctx.me() as usize, self.outstanding_seq),
                    SpanKind::StealAbandoned {
                        victim: victim as usize,
                    },
                );
                if let Some(sent) = self.wait_since_ns.take() {
                    self.counters.search_ns += ctx.now().ns().saturating_sub(sent);
                }
            }
        }
        self.span(ctx, 0, SpanKind::Done);
        assert!(
            self.stack.is_empty(),
            "rank {} terminated with {} nodes unprocessed",
            ctx.me(),
            self.stack.len()
        );
    }

    /// The steal request `seq` got no answer in time: charge it as
    /// failed and re-select a victim (the next timeout doubles).
    fn on_steal_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, seq: u64) {
        if self.done || self.outstanding.is_none() || self.outstanding_seq != seq {
            return; // the reply beat the timer, or a newer request is out
        }
        let victim = self.outstanding.expect("checked above");
        self.counters.steal_timeouts += 1;
        self.counters.steals_failed += 1;
        self.consecutive_timeouts += 1;
        self.consecutive_fails += 1;
        if let Some(h) = self.health.as_mut() {
            if h.on_timeout(victim, ctx.now().ns()) {
                self.counters.quarantines += 1;
                self.span(
                    ctx,
                    trace_id(ctx.me() as usize, seq),
                    SpanKind::Quarantined {
                        victim: victim as usize,
                    },
                );
            }
        }
        self.span(
            ctx,
            trace_id(ctx.me() as usize, seq),
            SpanKind::StealTimeout {
                victim: victim as usize,
                backoff_doublings: self.consecutive_timeouts as u64,
            },
        );
        self.outstanding = None;
        if let Some(sent) = self.wait_since_ns.take() {
            self.counters.search_ns += ctx.now().ns().saturating_sub(sent);
        }
        if self.stack.is_empty() && !self.computing {
            self.send_steal_request(ctx);
        }
    }

    /// Transfer `xfer` is still unacknowledged: retransmit it, or give
    /// it up as stranded if the thief has crashed.
    fn on_retransmit_timer(&mut self, ctx: &mut Ctx<'_, Msg>, xfer: u64) {
        let Some(pos) = self.unacked.iter().position(|(x, ..)| *x == xfer) else {
            return; // acked in the meantime
        };
        let to = self.unacked[pos].1;
        if ctx.is_crashed(to) {
            let (xfer, to, chunks, _) = self.unacked.swap_remove(pos);
            let nodes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
            self.counters.nodes_stranded += nodes;
            self.stranded.push((xfer, to, chunks));
            self.maybe_became_passive(ctx);
            return;
        }
        self.unacked[pos].3 += 1;
        let attempt = self.unacked[pos].3;
        self.counters.retransmits += 1;
        self.span(
            ctx,
            0,
            SpanKind::Retransmit {
                to: to as usize,
                xfer,
                attempt: attempt as u64,
            },
        );
        let chunks = self.unacked[pos].2.clone();
        let msg = Msg::StealReply {
            seq: u64::MAX,
            xfer,
            chunks,
        };
        ctx.send(to, msg.wire_bytes(), msg);
        ctx.set_timer(
            self.retransmit_delay_ns(ctx.me(), to, attempt),
            classed_timer(TIMER_CLASS_RETRANSMIT, xfer),
        );
    }

    /// Rank 0's probe watchdog fired with the probe still out: the
    /// token is presumed lost (dropped message or crashed holder) —
    /// regenerate it.
    fn on_watchdog_timer(&mut self, ctx: &mut Ctx<'_, Msg>, generation: u32) {
        if self.done || ctx.me() != 0 {
            return;
        }
        if !self.term.is_probing() || self.term.generation() != generation {
            return; // that probe came home; this watchdog is stale
        }
        self.refresh_lossy(ctx);
        let token = self.term.regenerate_probe();
        self.counters.token_regenerations += 1;
        self.span(
            ctx,
            0,
            SpanKind::TokenRegenerated {
                generation: token.generation as u64,
            },
        );
        self.watchdog_attempts += 1;
        self.forward_token(ctx, token);
        if !self.done {
            let delay = self.watchdog_delay_ns(ctx.n_ranks());
            ctx.set_timer(
                delay,
                classed_timer(TIMER_CLASS_WATCHDOG, token.generation as u64),
            );
        }
    }

    /// Fault tolerance: work transfers this rank sent that were never
    /// acknowledged — unacked plus stranded — as `(thief, xfer, chunks)`.
    /// Consulted for lost-work reconciliation after a degraded run.
    pub fn unconfirmed_transfers(&self) -> impl Iterator<Item = (Rank, u64, &Vec<Chunk>)> + '_ {
        self.unacked
            .iter()
            .map(|(x, to, c, _)| (*to, *x, c))
            .chain(self.stranded.iter().map(|(x, to, c)| (*to, *x, c)))
    }

    /// Fault tolerance: did this rank absorb transfer `xfer` from
    /// `from`? (Distinguishes lost transfers from delivered ones.)
    pub fn has_absorbed(&self, from: Rank, xfer: u64) -> bool {
        self.absorbed.contains(&(from, xfer))
    }

    /// Nodes still sitting in the local stack (lost-work accounting
    /// for crashed ranks).
    pub fn stack_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.stack.iter_nodes()
    }
}

impl Actor for Worker {
    type Msg = Msg;

    fn live_stats(&self) -> dws_simnet::LiveStats {
        dws_simnet::LiveStats {
            ready_chunks: self.stack.stealable_chunks() as u64,
            steals_ok: self.counters.steals_ok,
            steals_empty: self.counters.steals_failed,
            quarantined: self.counters.quarantines,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if ctx.me() == 0 {
            self.stack
                .push(self.cfg.workload.spec.root(self.cfg.workload.seed));
            self.trace.push((ctx.local_now().ns(), true));
            ctx.record_activity(true);
            self.traced_active = true;
            self.start_batch(ctx);
        } else {
            // Everyone else starts idle and hunts immediately. The
            // initial no-work period counts as a work-discovery session
            // from t = 0.
            self.search_since_ns = Some(ctx.now().ns());
            self.send_steal_request(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: Rank, msg: Msg) {
        if self.computing {
            // Arrival is not handling: a working process only answers
            // at its polling points (paper §II-A).
            self.pending.push_back((from, msg, ctx.now().ns()));
        } else {
            // Idle ranks answer immediately, with no queueing delay.
            self.service_offset_ns = 0;
            self.handle(ctx, from, msg, ctx.now().ns());
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TIMER_WORK => {
                self.computing = false;
                while let Some((from, msg, arrived_ns)) = self.pending.pop_front() {
                    // Servicing a message at a poll point costs the
                    // working rank CPU time, billed to the next batch;
                    // replies leave serially, in service order.
                    self.service_debt_ns += self.cfg.msg_handle_ns;
                    self.service_offset_ns += self.cfg.msg_handle_ns;
                    self.handle(ctx, from, msg, arrived_ns);
                }
                self.service_offset_ns = 0;
                // A message handled above may already have resumed work
                // (a lifeline push calls go_active -> start_batch), in
                // which case a batch timer is armed and we must not
                // start another.
                if self.done || self.computing {
                    return;
                }
                if self.stack.is_empty() {
                    self.go_idle(ctx);
                } else {
                    self.start_batch(ctx);
                }
            }
            TIMER_PROBE => {
                if !self.done && self.term.should_launch_probe(self.passive()) {
                    self.launch_probe(ctx);
                }
            }
            TIMER_RETRY => {
                if !self.done && self.outstanding.is_none() && self.stack.is_empty() {
                    if self.dormant {
                        // Fault tolerance only: periodic lifeline
                        // re-registration (a drop may have eaten the
                        // first round — or the push meant for us).
                        for buddy in self.lifelines.clone() {
                            ctx.send(
                                buddy,
                                Msg::LifelineRequest.wire_bytes(),
                                Msg::LifelineRequest,
                            );
                        }
                        let buddy = self.lifelines[0];
                        let delay = self.retransmit_delay_ns(ctx.me(), buddy, 3);
                        ctx.set_timer(delay, TIMER_RETRY);
                    } else {
                        self.send_steal_request(ctx);
                    }
                }
            }
            other => match other >> 56 {
                TIMER_CLASS_STEAL_TIMEOUT => self.on_steal_timeout(ctx, other & TIMER_ID_MASK),
                TIMER_CLASS_RETRANSMIT => self.on_retransmit_timer(ctx, other & TIMER_ID_MASK),
                TIMER_CLASS_WATCHDOG => self.on_watchdog_timer(ctx, (other & TIMER_ID_MASK) as u32),
                TIMER_CLASS_TOKEN_RETX => self.on_token_retx_timer(ctx, other & TIMER_ID_MASK),
                _ => unreachable!("unknown timer token {other}"),
            },
        }
    }
}

/// Convenience: the tree specification this worker expands (used by
/// tests).
pub fn spec_of(worker: &Worker) -> &TreeSpec {
    &worker.cfg.workload.spec
}
