//! The per-rank work-stealing scheduler, mirroring the reference UTS
//! `mpi_workstealing.c` (paper §II-A, Algorithm 1).
//!
//! Each rank runs this state machine inside the discrete-event
//! simulator:
//!
//! ```text
//! while not finished:
//!     while node <- GET(stack):          # Working
//!         for child in NEXTCHILD(node):
//!             PUSH(stack, child)
//!     while stack is empty:              # Searching
//!         v <- SELECTVICTIM
//!         STEAL(v)
//! ```
//!
//! Fidelity notes, matching the paper's description of the reference
//! implementation:
//!
//! - **No work-first principle**: a thief *posts a request*; the victim
//!   answers between node expansions. We model the victim's polling
//!   cadence with `poll_interval`: a working rank services buffered
//!   messages every `poll_interval` node expansions. An idle rank
//!   answers immediately.
//! - **Chunked steals**: only whole chunks move; the newest chunk is
//!   private ([`ChunkedStack`]).
//! - **Steal amount**: one chunk (reference) or half the stealable
//!   chunks (§IV-C).
//! - **Work accounting**: expanding a node costs
//!   [`Workload::node_ns`](dws_uts::Workload::node_ns) simulated
//!   nanoseconds; message handling is free for the handler (its cost
//!   lives in the sender-to-receiver latency), which matches the
//!   lightweight-polling assumption of the reference code.
//! - **Batching**: each batch expands up to `poll_interval` nodes
//!   *then* advances the clock by their cost. Thieves arriving
//!   mid-batch see the post-batch stack — a half-batch skew that is
//!   far below the latency scale the paper studies.
//! - **Tracing**: active ⇄ idle transitions are recorded with the
//!   rank's *local* (possibly skewed) clock, as a real tracer would.

use crate::stack::{Chunk, ChunkedStack};
use crate::termination::{TerminationState, Token, TokenAction};
use crate::victim::VictimSelector;
use dws_simnet::{Actor, Ctx, Rank};
use dws_uts::{Node, TreeSpec, Workload, NODE_WIRE_BYTES};
use std::collections::VecDeque;
use std::sync::Arc;

/// How much of a victim's stealable work one steal transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealAmount {
    /// A single chunk (the reference implementation).
    OneChunk,
    /// Half the stealable chunks, rounded up (§IV-C "Half").
    Half,
}

impl StealAmount {
    /// Chunks to take from a victim exposing `stealable` chunks.
    #[inline]
    pub fn want(&self, stealable: usize) -> usize {
        match self {
            StealAmount::OneChunk => stealable.min(1),
            StealAmount::Half => stealable.div_ceil(2),
        }
    }

    /// Suffix the paper appends to strategy names ("Reference Half").
    pub fn label(&self) -> &'static str {
        match self {
            StealAmount::OneChunk => "",
            StealAmount::Half => " Half",
        }
    }
}

/// Scheduler parameters shared by all ranks.
#[derive(Debug, Clone)]
pub struct SchedulerCfg {
    /// The tree to search.
    pub workload: Workload,
    /// Nodes per chunk (paper default: 20).
    pub chunk_size: usize,
    /// Node expansions between message polls while working.
    pub poll_interval: u32,
    /// Steal granularity.
    pub steal: StealAmount,
    /// Delay before rank 0 relaunches a failed termination probe.
    pub probe_backoff_ns: u64,
    /// Pause between a failed steal reply and the next attempt
    /// (0 = immediate retry, as the reference implementation does).
    pub retry_delay_ns: u64,
    /// CPU cost a *working* rank pays to service one incoming message
    /// at a poll point (MPI probe/recv/reply processing). This is the
    /// mechanism by which failed-steal convoys slow down the very ranks
    /// that hold work — the paper's link between failed-steal counts
    /// (Figures 7, 15) and performance. Idle ranks answer for free:
    /// they have nothing better to do.
    pub msg_handle_ns: u64,
    /// Additional victim-side cost per chunk packaged into a steal
    /// reply (copying nodes out of the stack into the message).
    pub package_chunk_ns: u64,
    /// Extension (Saraswat et al., the paper's §VI comparison point):
    /// lifeline-based load balancing. After this many *consecutive*
    /// failed steals a thief registers with its lifeline buddies
    /// (hypercube neighbours) and goes dormant instead of spamming
    /// steal requests; ranks with surplus work push chunks to their
    /// registered dormant buddies at polling points. `None` disables
    /// lifelines (the paper's protocol).
    pub lifeline_threshold: Option<u32>,
}

impl SchedulerCfg {
    /// Defaults: 20-node chunks as in the paper; polling every 4
    /// expansions (the reference implementation polls every iteration —
    /// 4 keeps the victim-service wait below the network latency scale
    /// while bounding simulator event counts); a 2 µs retry pause
    /// modelling the thief-side bookkeeping between attempts.
    pub fn new(workload: Workload, steal: StealAmount) -> Self {
        Self {
            workload,
            chunk_size: 20,
            poll_interval: 4,
            steal,
            probe_backoff_ns: 10_000,
            retry_delay_ns: 2_000,
            msg_handle_ns: 600,
            package_chunk_ns: 200,
            lifeline_threshold: None,
        }
    }
}

/// Messages of the steal protocol.
#[derive(Debug, Clone)]
pub enum Msg {
    /// "Give me work."
    StealRequest,
    /// Reply: the stolen chunks; empty means the steal failed.
    StealReply {
        /// Chunks transferred to the thief (empty on failure).
        chunks: Vec<Chunk>,
    },
    /// Lifeline extension: "I am dormant; push me work when you have
    /// some." Registers the sender with the receiver.
    LifelineRequest,
    /// Lifeline extension: unsolicited work pushed to a dormant buddy.
    LifelinePush {
        /// Chunks donated to the dormant rank (never empty).
        chunks: Vec<Chunk>,
    },
    /// Termination-detection token.
    Token(Token),
    /// Global termination announcement (broadcast by rank 0).
    Done,
}

impl Msg {
    /// Bytes on the wire, for latency accounting.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Msg::StealRequest | Msg::LifelineRequest => 16,
            Msg::StealReply { chunks } | Msg::LifelinePush { chunks } => {
                16 + chunks.iter().map(|c| c.len()).sum::<usize>() * NODE_WIRE_BYTES
            }
            Msg::Token(_) => 24,
            Msg::Done => 8,
        }
    }
}

/// Timer tokens.
const TIMER_WORK: u64 = 1;
const TIMER_PROBE: u64 = 2;
const TIMER_RETRY: u64 = 3;

/// Per-rank counters mirrored into `dws_metrics::StealStats` after the
/// run (kept local to avoid a hard dependency in the hot path).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Steal requests issued.
    pub steal_attempts: u64,
    /// Requests answered with work.
    pub steals_ok: u64,
    /// Requests answered empty.
    pub steals_failed: u64,
    /// Chunks received.
    pub chunks_received: u64,
    /// Nodes received.
    pub nodes_received: u64,
    /// Chunks given to thieves.
    pub chunks_given: u64,
    /// Nodes given to thieves.
    pub nodes_given: u64,
    /// Time spent waiting for steal answers.
    pub search_ns: u64,
    /// Completed work-discovery sessions.
    pub sessions: u64,
    /// Total session duration.
    pub session_ns: u64,
    /// Nodes expanded locally.
    pub nodes_processed: u64,
    /// Lifeline extension: times this rank went dormant.
    pub lifeline_dormancies: u64,
    /// Lifeline extension: chunks pushed to dormant buddies.
    pub lifeline_pushes: u64,
}

/// One rank of the distributed work-stealing computation.
pub struct Worker {
    cfg: Arc<SchedulerCfg>,
    stack: ChunkedStack,
    selector: VictimSelector,
    term: TerminationState,
    /// True while a WORK timer is outstanding (the rank is "computing"
    /// and only polls messages at batch boundaries).
    computing: bool,
    /// Messages that arrived while computing, handled at the next poll.
    pending: VecDeque<(Rank, Msg)>,
    /// Victim of the outstanding steal request, if any.
    outstanding: Option<Rank>,
    /// Global time the outstanding steal request was sent (search-time
    /// accounting: "the portion of the execution time a process was
    /// waiting for a steal answer").
    wait_since_ns: Option<u64>,
    /// Local time at which the current work-discovery session began.
    search_since_ns: Option<u64>,
    /// Global termination flag.
    done: bool,
    /// Accumulated message-service CPU time to charge to the next
    /// batch (see [`SchedulerCfg::msg_handle_ns`]).
    service_debt_ns: u64,
    /// While draining the poll queue: this message's position in the
    /// service order, as a delay applied to any reply it generates. A
    /// deep queue of steal requests is answered serially — the convoy
    /// cost that makes deterministic victim selection collapse at
    /// scale.
    service_offset_ns: u64,
    /// Reusable child buffer.
    scratch: Vec<Node>,
    /// Activity trace: (local time, became-active) pairs.
    trace: Vec<(u64, bool)>,
    /// Last state written to the trace; keeps transitions alternating
    /// even when work arrives in the window between a stack running dry
    /// and the idle transition being recorded.
    traced_active: bool,
    /// Lifeline buddies this rank registers with (hypercube neighbours).
    lifelines: Vec<Rank>,
    /// Dormant buddies waiting for a push from this rank.
    lifeline_waiters: Vec<Rank>,
    /// Consecutive failed steals since the last success.
    consecutive_fails: u32,
    /// Dormant: registered with lifelines, no active steal requests.
    dormant: bool,
    /// Statistics counters.
    pub counters: Counters,
}

/// Hypercube lifeline graph: rank `me`'s buddies are `me XOR 2^k` for
/// every bit position below `n`; always non-empty and connected, so
/// pushed work can reach any dormant rank transitively.
fn hypercube_lifelines(me: Rank, n: u32) -> Vec<Rank> {
    let mut out = Vec::new();
    let mut bit = 1u32;
    while bit < n {
        let buddy = me ^ bit;
        if buddy < n {
            out.push(buddy);
        }
        bit <<= 1;
    }
    if out.is_empty() && n > 1 {
        out.push((me + 1) % n);
    }
    out
}

impl Worker {
    /// Build the worker for `me`; rank 0 will seed itself with the root.
    pub fn new(cfg: Arc<SchedulerCfg>, me: Rank, n_ranks: u32, selector: VictimSelector) -> Self {
        Self {
            stack: ChunkedStack::new(cfg.chunk_size),
            selector,
            term: TerminationState::new(me, n_ranks),
            computing: false,
            pending: VecDeque::new(),
            outstanding: None,
            wait_since_ns: None,
            search_since_ns: None,
            done: false,
            service_debt_ns: 0,
            service_offset_ns: 0,
            scratch: Vec::new(),
            trace: Vec::new(),
            traced_active: false,
            lifelines: if cfg.lifeline_threshold.is_some() {
                hypercube_lifelines(me, n_ranks)
            } else {
                Vec::new()
            },
            lifeline_waiters: Vec::new(),
            consecutive_fails: 0,
            dormant: false,
            counters: Counters::default(),
            cfg,
        }
    }

    /// The recorded activity trace (local clock).
    pub fn trace(&self) -> &[(u64, bool)] {
        &self.trace
    }

    /// True once this rank has observed global termination.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Nodes remaining in the local stack (0 after a clean run).
    pub fn backlog(&self) -> usize {
        self.stack.len()
    }

    /// Passive in the termination-detection sense: holds no work.
    /// A rank mid-batch is not passive — its expansions may still
    /// produce stealable chunks.
    fn passive(&self) -> bool {
        self.stack.is_empty() && !self.computing
    }

    /// Receive work-carrying chunks while already active: count them
    /// and fold them into the stack, with no phase transition.
    fn absorb_chunks(&mut self, chunks: Vec<Chunk>) {
        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
        self.counters.chunks_received += chunks.len() as u64;
        self.counters.nodes_received += nodes as u64;
        self.term.on_work_received();
        self.stack.receive_chunks(chunks);
    }

    /// Lifeline extension: donate one chunk to each registered dormant
    /// buddy, as far as stealable work allows.
    fn serve_lifeline_waiters(&mut self, ctx: &mut Ctx<'_, Msg>) {
        while !self.lifeline_waiters.is_empty() && self.stack.stealable_chunks() > 0 && !self.done
        {
            let waiter = self.lifeline_waiters.remove(0);
            let chunks = self.stack.steal_chunks(1);
            debug_assert_eq!(chunks.len(), 1);
            let nodes: usize = chunks.iter().map(|c| c.len()).sum();
            self.counters.chunks_given += chunks.len() as u64;
            self.counters.nodes_given += nodes as u64;
            self.counters.lifeline_pushes += chunks.len() as u64;
            let package = chunks.len() as u64 * self.cfg.package_chunk_ns;
            self.service_debt_ns += package;
            self.term.on_work_sent();
            let msg = Msg::LifelinePush { chunks };
            ctx.send_delayed(waiter, msg.wire_bytes(), self.service_offset_ns, msg);
        }
    }

    /// Expand up to `poll_interval` nodes and charge their cost;
    /// transitions to searching when the stack runs dry.
    fn start_batch(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(!self.computing);
        self.serve_lifeline_waiters(ctx);
        let mut expanded = 0u32;
        while expanded < self.cfg.poll_interval {
            let Some(node) = self.stack.pop() else { break };
            self.cfg
                .workload
                .spec
                .children_into(&node, self.cfg.workload.gen_rounds, &mut self.scratch);
            for child in self.scratch.drain(..) {
                self.stack.push(child);
            }
            expanded += 1;
        }
        if expanded > 0 {
            self.counters.nodes_processed += expanded as u64;
            self.computing = true;
            let cost = expanded as u64 * self.cfg.workload.node_ns()
                + std::mem::take(&mut self.service_debt_ns);
            ctx.set_timer(cost, TIMER_WORK);
        } else {
            self.service_debt_ns = 0;
            self.go_idle(ctx);
        }
    }

    /// The stack ran dry: record the transition, release any parked
    /// token, and begin searching for work.
    fn go_idle(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.stack.is_empty() && !self.computing);
        if self.traced_active {
            self.trace.push((ctx.local_now().ns(), false));
            self.traced_active = false;
        }
        self.search_since_ns = Some(ctx.now().ns());
        if let Some(action) = self.term.on_became_passive() {
            self.apply_token_action(ctx, action);
        }
        if self.done {
            return;
        }
        if ctx.me() == 0 && self.term.should_launch_probe(true) {
            let token = self.term.launch_probe();
            let next = self.term.next_in_ring();
            ctx.send(next, Msg::Token(token).wire_bytes(), Msg::Token(token));
        }
        self.send_steal_request(ctx);
    }

    /// Work arrived: book the session, record the transition, resume.
    fn go_active(&mut self, ctx: &mut Ctx<'_, Msg>, chunks: Vec<Chunk>) {
        let nodes: usize = chunks.iter().map(|c| c.len()).sum();
        self.counters.chunks_received += chunks.len() as u64;
        self.counters.nodes_received += nodes as u64;
        self.consecutive_fails = 0;
        self.dormant = false;
        self.term.on_work_received();
        self.stack.receive_chunks(chunks);
        if let Some(since) = self.search_since_ns.take() {
            let dur = ctx.now().ns().saturating_sub(since);
            self.counters.sessions += 1;
            self.counters.session_ns += dur;
        }
        if !self.traced_active {
            self.trace.push((ctx.local_now().ns(), true));
            self.traced_active = true;
        }
        self.start_batch(ctx);
    }

    fn send_steal_request(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.outstanding.is_none());
        let victim = self.selector.next_victim(ctx.rng());
        debug_assert_ne!(victim, ctx.me());
        self.outstanding = Some(victim);
        self.wait_since_ns = Some(ctx.now().ns());
        self.counters.steal_attempts += 1;
        ctx.send(victim, Msg::StealRequest.wire_bytes(), Msg::StealRequest);
    }

    /// Service one message (either immediately when idle, or from the
    /// pending queue at a poll boundary).
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, from: Rank, msg: Msg) {
        match msg {
            Msg::StealRequest => {
                let want = self.cfg.steal.want(self.stack.stealable_chunks());
                let chunks = if self.done { Vec::new() } else { self.stack.steal_chunks(want) };
                if !chunks.is_empty() {
                    let nodes: usize = chunks.iter().map(|c| c.len()).sum();
                    self.counters.chunks_given += chunks.len() as u64;
                    self.counters.nodes_given += nodes as u64;
                    let package = chunks.len() as u64 * self.cfg.package_chunk_ns;
                    self.service_debt_ns += package;
                    self.service_offset_ns += package;
                    self.term.on_work_sent();
                }
                let reply = Msg::StealReply { chunks };
                ctx.send_delayed(from, reply.wire_bytes(), self.service_offset_ns, reply);
            }
            Msg::StealReply { chunks } => {
                debug_assert_eq!(self.outstanding, Some(from), "unexpected steal reply");
                self.outstanding = None;
                if let Some(sent) = self.wait_since_ns.take() {
                    self.counters.search_ns += ctx.now().ns().saturating_sub(sent);
                }
                if chunks.is_empty() {
                    self.counters.steals_failed += 1;
                    self.consecutive_fails += 1;
                    // Only keep hunting if we are still actually idle —
                    // a lifeline push may have reactivated us while
                    // this reply was in flight.
                    if !self.done && self.stack.is_empty() && !self.computing {
                        if let Some(threshold) = self.cfg.lifeline_threshold {
                            if self.consecutive_fails >= threshold && !self.dormant {
                                // Lifeline extension: stop spamming —
                                // register with the buddies and wait to
                                // be pushed work.
                                self.dormant = true;
                                self.counters.lifeline_dormancies += 1;
                                for buddy in self.lifelines.clone() {
                                    ctx.send(
                                        buddy,
                                        Msg::LifelineRequest.wire_bytes(),
                                        Msg::LifelineRequest,
                                    );
                                }
                                return;
                            }
                        }
                        if self.cfg.retry_delay_ns > 0 {
                            ctx.set_timer(self.cfg.retry_delay_ns, TIMER_RETRY);
                        } else {
                            self.send_steal_request(ctx);
                        }
                    }
                } else {
                    self.counters.steals_ok += 1;
                    if self.done {
                        // Termination was announced while work was in
                        // flight toward us — cannot happen with a sound
                        // detector; surface loudly.
                        panic!("rank {} received work after Done", ctx.me());
                    }
                    if self.stack.is_empty() && !self.computing {
                        self.go_active(ctx, chunks);
                    } else {
                        // A lifeline push beat this reply to the punch;
                        // we are already active — just absorb.
                        self.absorb_chunks(chunks);
                    }
                }
            }
            Msg::LifelineRequest => {
                if !self.lifeline_waiters.contains(&from) {
                    self.lifeline_waiters.push(from);
                }
                // An idle or freshly-polled rank with surplus serves
                // immediately; otherwise the next batch boundary will.
                if !self.computing && self.stack.stealable_chunks() > 0 {
                    self.serve_lifeline_waiters(ctx);
                }
            }
            Msg::LifelinePush { chunks } => {
                debug_assert!(!chunks.is_empty(), "lifeline pushes always carry work");
                if self.done {
                    panic!("rank {} received lifeline work after Done", ctx.me());
                }
                if self.stack.is_empty() && !self.computing {
                    // Dormant (or idle mid-search): this is our wake-up.
                    self.go_active(ctx, chunks);
                } else {
                    // Already busy again (e.g. a steal landed first):
                    // just absorb the donation.
                    self.absorb_chunks(chunks);
                }
            }
            Msg::Token(token) => {
                let passive = self.passive();
                if let Some(action) = self.term.try_handle_token(token, passive) {
                    self.apply_token_action(ctx, action);
                }
            }
            Msg::Done => {
                self.finish(ctx);
            }
        }
    }

    fn apply_token_action(&mut self, ctx: &mut Ctx<'_, Msg>, action: TokenAction) {
        match action {
            TokenAction::Forward(token) => {
                let next = self.term.next_in_ring();
                ctx.send(next, Msg::Token(token).wire_bytes(), Msg::Token(token));
            }
            TokenAction::Terminate => {
                for r in 0..ctx.n_ranks() {
                    if r != ctx.me() {
                        ctx.send(r, Msg::Done.wire_bytes(), Msg::Done);
                    }
                }
                self.finish(ctx);
            }
            TokenAction::Restart => {
                ctx.set_timer(self.cfg.probe_backoff_ns, TIMER_PROBE);
            }
        }
    }

    /// Observe global termination: close the open session and stop.
    fn finish(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some(since) = self.search_since_ns.take() {
            let dur = ctx.now().ns().saturating_sub(since);
            self.counters.sessions += 1;
            self.counters.session_ns += dur;
        }
        assert!(
            self.stack.is_empty(),
            "rank {} terminated with {} nodes unprocessed",
            ctx.me(),
            self.stack.len()
        );
    }
}

impl Actor for Worker {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if ctx.me() == 0 {
            self.stack.push(self.cfg.workload.spec.root(self.cfg.workload.seed));
            self.trace.push((ctx.local_now().ns(), true));
            self.traced_active = true;
            self.start_batch(ctx);
        } else {
            // Everyone else starts idle and hunts immediately. The
            // initial no-work period counts as a work-discovery session
            // from t = 0.
            self.search_since_ns = Some(ctx.now().ns());
            self.send_steal_request(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: Rank, msg: Msg) {
        if self.computing {
            // Arrival is not handling: a working process only answers
            // at its polling points (paper §II-A).
            self.pending.push_back((from, msg));
        } else {
            // Idle ranks answer immediately, with no queueing delay.
            self.service_offset_ns = 0;
            self.handle(ctx, from, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TIMER_WORK => {
                self.computing = false;
                while let Some((from, msg)) = self.pending.pop_front() {
                    // Servicing a message at a poll point costs the
                    // working rank CPU time, billed to the next batch;
                    // replies leave serially, in service order.
                    self.service_debt_ns += self.cfg.msg_handle_ns;
                    self.service_offset_ns += self.cfg.msg_handle_ns;
                    self.handle(ctx, from, msg);
                }
                self.service_offset_ns = 0;
                // A message handled above may already have resumed work
                // (a lifeline push calls go_active -> start_batch), in
                // which case a batch timer is armed and we must not
                // start another.
                if self.done || self.computing {
                    return;
                }
                if self.stack.is_empty() {
                    self.go_idle(ctx);
                } else {
                    self.start_batch(ctx);
                }
            }
            TIMER_PROBE => {
                if !self.done && self.term.should_launch_probe(self.passive()) {
                    let token = self.term.launch_probe();
                    let next = self.term.next_in_ring();
                    ctx.send(next, Msg::Token(token).wire_bytes(), Msg::Token(token));
                }
            }
            TIMER_RETRY => {
                if !self.done && self.outstanding.is_none() && self.stack.is_empty() {
                    self.send_steal_request(ctx);
                }
            }
            other => unreachable!("unknown timer token {other}"),
        }
    }
}

/// Convenience: the tree specification this worker expands (used by
/// tests).
pub fn spec_of(worker: &Worker) -> &TreeSpec {
    &worker.cfg.workload.spec
}
