//! # dws-core
//!
//! Distributed work stealing with pluggable victim selection — the
//! primary contribution of Perarnau & Sato, *Victim Selection and
//! Distributed Work Stealing Performance: A Case Study* (IPDPS 2014),
//! rebuilt as a library.
//!
//! The scheduler mirrors the public MPI implementation of UTS the paper
//! studies: chunked work stacks with a private working chunk, steal
//! requests serviced at polling points (no work-first principle), and
//! token-ring termination detection. On top of that substrate sit the
//! paper's three victim-selection strategies and two steal
//! granularities:
//!
//! | paper name       | this crate |
//! |------------------|-----------|
//! | Reference        | [`VictimPolicy::RoundRobin`] |
//! | Rand             | [`VictimPolicy::Uniform`] |
//! | Tofu             | [`VictimPolicy::DistanceSkewed`] |
//! | (one chunk)      | [`StealAmount::OneChunk`] |
//! | … Half           | [`StealAmount::Half`] |
//!
//! ## Example: the paper's headline comparison, in miniature
//!
//! ```
//! use dws_core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
//! use dws_uts::presets;
//!
//! let tree = presets::t3sim_xs();
//! let reference = run_experiment(&ExperimentConfig::new(tree.clone(), 16));
//! let tofu_half = run_experiment(
//!     &ExperimentConfig::new(tree, 16)
//!         .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
//!         .with_steal(StealAmount::Half),
//! );
//! // Both count the same tree...
//! assert_eq!(reference.total_nodes, tofu_half.total_nodes);
//! // ...and report comparable metrics.
//! assert!(tofu_half.perf.speedup() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod health;
pub mod network;
pub mod runner;
pub mod scheduler;
pub mod stack;
pub mod sweep;
pub mod termination;
pub mod victim;

pub use alias::AliasTable;
pub use health::{AdaptiveCfg, Gate, HealthTracker, VictimHealth};
pub use network::{LinkContendedNetwork, NicContendedNetwork};
pub use runner::{
    run_experiment, run_experiment_streamed, sequential_baseline, ExperimentConfig,
    ExperimentResult, FaultReport, StreamingSetup,
};
pub use scheduler::{FaultToleranceCfg, Msg, SchedulerCfg, StealAmount, Worker};
pub use stack::{Chunk, ChunkedStack};
pub use sweep::{Cell, Sweep};
pub use termination::{Colour, TerminationState, Token, TokenAction};
pub use victim::{
    skew_weight, BaseVictimPolicy, OffsetAliasSet, VictimContext, VictimPolicy, VictimSelector,
    FALLBACK_LIMIT,
};
