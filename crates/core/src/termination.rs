//! Distributed termination detection: a token ring.
//!
//! UTS detects global exhaustion "by a token-ring distributed
//! termination algorithm" (paper §II-A). We implement Safra's variant
//! of the Dijkstra token ring, specialized to the steal protocol:
//!
//! Only **work-carrying** messages (steal replies with chunks) can turn
//! a passive process active, so only those are counted. Steal requests
//! and empty replies are invisible to the detector — a crucial
//! specialization, because thieves keep issuing requests right up to
//! termination and counting them would keep the system "non-quiet"
//! forever.
//!
//! Protocol (ring descending from rank 0 through N−1, N−2, … back
//! to 0):
//!
//! - every rank keeps a message-count balance `c_i` (work messages sent
//!   − received) and a colour (black after receiving work);
//! - rank 0, when passive, launches a white token with accumulator 0;
//! - a passive rank forwards the token after adding `c_i`, blackening
//!   the token if the rank is black, then turns white; an active rank
//!   holds the token until it next goes passive;
//! - when the token returns to rank 0: if the token is white, rank 0 is
//!   white and passive, and `q + c_0 == 0`, the system has terminated —
//!   otherwise rank 0 reissues a probe.
//!
//! The struct here is pure protocol state — no I/O — so it can be
//! driven both by the simulator scheduler and by the property tests at
//! the bottom of this file, which hammer it with random schedules and
//! assert it never announces termination while work is in flight.

/// Colour of a rank or token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colour {
    /// No work message received since last token pass.
    White,
    /// Received work since last token pass (or token passed a black rank).
    Black,
}

/// The circulating token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Colour accumulated along the ring.
    pub colour: Colour,
    /// Sum of `c_i` along the ring so far.
    pub count: i64,
    /// Probe generation. Rank 0 bumps it when regenerating a token
    /// presumed lost to a fault; stale generations are discarded on
    /// return. Always 0 on the fault-free path.
    pub generation: u32,
}

/// What to do with a token after [`TerminationState::try_handle_token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenAction {
    /// Forward this token to the next rank down the ring.
    Forward(Token),
    /// Rank 0 only: the probe proves global termination.
    Terminate,
    /// Rank 0 only: probe failed; reissue a fresh probe when passive.
    Restart,
    /// Discard this token: it is stale (an older generation, or a
    /// duplicate of a probe that already returned).
    Drop,
}

/// Per-rank Safra state.
#[derive(Debug, Clone)]
pub struct TerminationState {
    me: u32,
    n: u32,
    colour: Colour,
    /// Work messages sent minus received.
    balance: i64,
    /// Token parked here while this rank is active.
    held: Option<Token>,
    /// Rank 0 only: a probe is circulating.
    probing: bool,
    /// Rank 0 only: generation of the current probe. Bumped by
    /// [`regenerate_probe`](Self::regenerate_probe) when a token is
    /// presumed lost.
    generation: u32,
    /// Lossy mode: at least one rank has crashed, so message-count
    /// balances are no longer meaningful (counts at dead ranks and
    /// in-flight messages to them are gone). The quiet criterion drops
    /// the count check and relies on colour + unacked-transfer gating:
    /// a rank with an unacknowledged work transfer reports non-passive,
    /// which parks the token and keeps the probe from completing while
    /// any work is in flight to a live rank.
    lossy: bool,
}

impl TerminationState {
    /// Fresh state for `me` of `n` ranks.
    pub fn new(me: u32, n: u32) -> Self {
        assert!(n > 0 && me < n, "rank {me} outside 0..{n}");
        Self {
            me,
            n,
            colour: Colour::White,
            balance: 0,
            held: None,
            probing: false,
            generation: 0,
            lossy: false,
        }
    }

    /// The next rank down the ring (0 → N−1 → N−2 → … → 0).
    pub fn next_in_ring(&self) -> u32 {
        if self.me == 0 {
            self.n - 1
        } else {
            self.me - 1
        }
    }

    /// The next *live* rank down the ring, skipping crashed ranks as
    /// reported by the failure detector. Falls back to rank 0 (which
    /// can never crash) when every intermediate rank is dead; returns
    /// `me` only for rank 0 with no other survivor, in which case the
    /// caller evaluates the token locally instead of sending it.
    pub fn next_live_in_ring<F: Fn(u32) -> bool>(&self, crashed: F) -> u32 {
        let mut at = self.next_in_ring();
        for _ in 0..self.n {
            if at == self.me || at == 0 || !crashed(at) {
                return at;
            }
            at = if at == 0 { self.n - 1 } else { at - 1 };
        }
        0
    }

    /// Enter (or leave) lossy mode; see the `lossy` field.
    pub fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
    }

    /// Rank 0: is a probe currently circulating?
    pub fn is_probing(&self) -> bool {
        self.probing
    }

    /// Rank 0: the generation of the current probe.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Record that this rank sent a work-carrying message.
    pub fn on_work_sent(&mut self) {
        self.balance += 1;
    }

    /// Record that this rank received a work-carrying message. The
    /// receiver turns black: it may now activate ranks the token has
    /// already passed.
    pub fn on_work_received(&mut self) {
        self.balance -= 1;
        self.colour = Colour::Black;
    }

    /// Rank 0: should a fresh probe be launched? True when passive, no
    /// probe outstanding and no parked token.
    pub fn should_launch_probe(&self, passive: bool) -> bool {
        self.me == 0 && passive && !self.probing && self.held.is_none()
    }

    /// Rank 0: launch a probe. Returns the token to send to rank N−1.
    ///
    /// # Panics
    /// Panics if called on a non-zero rank or while a probe circulates.
    pub fn launch_probe(&mut self) -> Token {
        assert_eq!(self.me, 0, "only rank 0 launches probes");
        assert!(!self.probing, "probe already outstanding");
        self.probing = true;
        // Each probe gets a fresh generation so a stale watchdog (or a
        // straggling token) from an earlier probe can never confuse
        // this one.
        self.generation += 1;
        // Rank 0 whitens at launch; its own balance is examined at
        // return time.
        self.colour = Colour::White;
        Token {
            colour: Colour::White,
            count: 0,
            generation: self.generation,
        }
    }

    /// Rank 0: the circulating token is presumed lost (watchdog fired
    /// with the probe still out). Bump the generation and issue a
    /// replacement; if the old token later limps home it is dropped as
    /// stale.
    ///
    /// # Panics
    /// Panics if called on a non-zero rank or with no probe outstanding.
    pub fn regenerate_probe(&mut self) -> Token {
        assert_eq!(self.me, 0, "only rank 0 regenerates probes");
        assert!(self.probing, "no probe to regenerate");
        self.generation += 1;
        self.colour = Colour::White;
        Token {
            colour: Colour::White,
            count: 0,
            generation: self.generation,
        }
    }

    /// A token arrived (or this rank just went passive while holding
    /// one). If the rank is active the token parks and `None` is
    /// returned; call again via [`on_became_passive`](Self::on_became_passive)
    /// when work runs out.
    pub fn try_handle_token(&mut self, token: Token, passive: bool) -> Option<TokenAction> {
        if !passive {
            match self.held {
                // Fault-free runs never see two tokens; with token
                // regeneration (or a duplicated delivery) an old and a
                // new token can coexist briefly — keep the newest.
                Some(held) if held.generation >= token.generation => {}
                _ => self.held = Some(token),
            }
            return None;
        }
        Some(self.process_token(token))
    }

    /// The rank just transitioned to passive; release a parked token if
    /// any.
    pub fn on_became_passive(&mut self) -> Option<TokenAction> {
        self.held.take().map(|t| self.process_token(t))
    }

    fn process_token(&mut self, token: Token) -> TokenAction {
        if self.me == 0 {
            if token.generation < self.generation || !self.probing {
                // An older generation straggling home, or a duplicated
                // delivery of a probe already evaluated.
                return TokenAction::Drop;
            }
            self.probing = false;
            let quiet = token.colour == Colour::White
                && self.colour == Colour::White
                && (self.lossy || token.count + self.balance == 0);
            if quiet {
                TokenAction::Terminate
            } else {
                // Next probe starts clean.
                self.colour = Colour::White;
                TokenAction::Restart
            }
        } else {
            let out = Token {
                colour: if self.colour == Colour::Black {
                    Colour::Black
                } else {
                    token.colour
                },
                count: token.count + self.balance,
                generation: token.generation,
            };
            self.colour = Colour::White;
            TokenAction::Forward(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full ring of states through one probe, given each rank's
    /// passivity. Returns the final action at rank 0.
    fn one_probe(states: &mut [TerminationState]) -> TokenAction {
        let n = states.len() as u32;
        let mut token = states[0].launch_probe();
        let mut at = n - 1;
        loop {
            let action = states[at as usize]
                .try_handle_token(token, true)
                .expect("all passive in this helper");
            match action {
                TokenAction::Forward(t) => {
                    token = t;
                    at = states[at as usize].next_in_ring();
                    if at == 0 {
                        return states[0]
                            .try_handle_token(token, true)
                            .expect("rank 0 passive");
                    }
                }
                other => return other,
            }
        }
    }

    fn ring(n: u32) -> Vec<TerminationState> {
        (0..n).map(|i| TerminationState::new(i, n)).collect()
    }

    #[test]
    fn quiet_ring_terminates() {
        let mut states = ring(5);
        assert_eq!(one_probe(&mut states), TokenAction::Terminate);
    }

    #[test]
    fn in_flight_work_blocks_termination() {
        let mut states = ring(5);
        // Rank 2 sent work that nobody has received yet.
        states[2].on_work_sent();
        assert_eq!(one_probe(&mut states), TokenAction::Restart);
        // Work arrives at rank 4: balances cancel but the receiver is
        // black, so the *next* probe must still fail...
        states[4].on_work_received();
        assert_eq!(one_probe(&mut states), TokenAction::Restart);
        // ...and the one after that succeeds (everyone whitened).
        assert_eq!(one_probe(&mut states), TokenAction::Terminate);
    }

    #[test]
    fn active_rank_parks_token_until_passive() {
        let mut s = TerminationState::new(3, 8);
        let token = Token {
            colour: Colour::White,
            count: 0,
            generation: 0,
        };
        assert_eq!(s.try_handle_token(token, false), None);
        // Going passive releases it.
        match s.on_became_passive() {
            Some(TokenAction::Forward(t)) => {
                assert_eq!(t.colour, Colour::White);
                assert_eq!(t.count, 0);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert!(s.on_became_passive().is_none(), "token released only once");
    }

    #[test]
    fn ring_ordering_descends() {
        let s0 = TerminationState::new(0, 4);
        let s3 = TerminationState::new(3, 4);
        let s1 = TerminationState::new(1, 4);
        assert_eq!(s0.next_in_ring(), 3);
        assert_eq!(s3.next_in_ring(), 2);
        assert_eq!(s1.next_in_ring(), 0);
    }

    #[test]
    fn should_launch_probe_gating() {
        let mut s = TerminationState::new(0, 4);
        assert!(s.should_launch_probe(true));
        assert!(!s.should_launch_probe(false));
        let _ = s.launch_probe();
        assert!(!s.should_launch_probe(true), "probe already out");
    }

    #[test]
    #[should_panic(expected = "only rank 0")]
    fn non_zero_rank_cannot_probe() {
        TerminationState::new(1, 4).launch_probe();
    }

    /// Randomized schedule safety: simulate work transfers with random
    /// interleavings of probes; termination must never be announced
    /// while any transfer is unreceived, and must eventually be
    /// announced once the system quiets.
    #[test]
    fn random_schedules_never_terminate_early() {
        use dws_simnet::DetRng;
        for seed in 0..30u64 {
            let mut rng = DetRng::new(seed);
            let n = 2 + rng.next_below(6) as u32;
            let mut states = ring(n);
            let mut in_flight: Vec<u32> = Vec::new(); // destination ranks
                                                      // Random activity phase.
            for _ in 0..rng.next_below(40) {
                match rng.next_below(3) {
                    0 => {
                        let from = rng.next_below(n as u64) as usize;
                        let to = rng.next_below(n as u64) as u32;
                        states[from].on_work_sent();
                        in_flight.push(to);
                    }
                    1 => {
                        if let Some(to) = in_flight.pop() {
                            states[to as usize].on_work_received();
                        }
                    }
                    _ => {
                        let result = one_probe(&mut states);
                        if !in_flight.is_empty() {
                            assert_eq!(
                                result,
                                TokenAction::Restart,
                                "seed {seed}: terminated with {} messages in flight",
                                in_flight.len()
                            );
                        }
                    }
                }
            }
            // Drain and verify liveness: at most two more probes.
            while let Some(to) = in_flight.pop() {
                states[to as usize].on_work_received();
            }
            let first = one_probe(&mut states);
            if first != TokenAction::Terminate {
                assert_eq!(
                    one_probe(&mut states),
                    TokenAction::Terminate,
                    "seed {seed}: quiet ring failed to terminate in two probes"
                );
            }
        }
    }
}
