//! Experiment orchestration: place a job, run the distributed search in
//! the simulator, verify it, and compute the paper's metrics.
//!
//! [`ExperimentConfig`] captures one cell of the paper's experimental
//! grid — workload × node count × rank mapping × victim selection ×
//! steal amount — and [`run_experiment`] produces an
//! [`ExperimentResult`] carrying everything the figures plot.
//!
//! Every run is verified before results are returned:
//!
//! - the sum of nodes processed across ranks must equal the sequential
//!   tree size (when known),
//! - nodes and chunks are conserved across steals,
//! - the activity trace must be well-formed,
//! - every rank must have observed termination with an empty stack.

use crate::health::{AdaptiveCfg, VictimHealth};
use crate::scheduler::{Counters, FaultToleranceCfg, SchedulerCfg, StealAmount, Worker};
use crate::victim::VictimPolicy;
use dws_metrics::export::{chrome_trace_with_critpath, histograms_json, span_counts_json};
use dws_metrics::perflab::{self, ProfileReport};
use dws_metrics::{
    ActivityTrace, BlameReport, CriticalPath, Histogram, JsonValue, LatencyHistograms,
    OccupancyCurve, OnlineOccupancy, Perf, RunStats, SpanTrace, StealStats,
};
use dws_simnet::profiler::{allocation_count, PerfProbe};
use dws_simnet::{
    FaultPlan, FaultStats, NetTrace, NetworkModel, ParallelConfig, PureNetwork, RunReport,
    SimConfig, SimTime, Simulation, StreamingCfg,
};
use dws_topology::routing::LinkLoad;
use dws_topology::{AllocationPolicy, Job, LatencyParams, RankMapping};
use dws_uts::{Node, Workload};
use std::sync::Arc;
use std::time::Instant;

/// Full description of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Tree to search.
    pub workload: Workload,
    /// Physical nodes to allocate.
    pub n_nodes: u32,
    /// Rank placement (1/N, 8RR, 8G, …).
    pub mapping: RankMapping,
    /// Node allocation policy (the K scheduler default is compact).
    pub alloc: AllocationPolicy,
    /// Network latency parameters.
    pub latency: LatencyParams,
    /// Victim-selection strategy.
    pub victim: VictimPolicy,
    /// Steal granularity.
    pub steal: StealAmount,
    /// Nodes per chunk (paper: 20).
    pub chunk_size: usize,
    /// Node expansions between message polls.
    pub poll_interval: u32,
    /// Pause before retrying after a failed steal (0 = immediate).
    pub retry_delay_ns: u64,
    /// Delay before rank 0 reissues a termination probe.
    pub probe_backoff_ns: u64,
    /// Victim-side CPU cost per message serviced while working.
    pub msg_handle_ns: u64,
    /// Victim-side CPU cost per chunk packaged into a reply.
    pub package_chunk_ns: u64,
    /// Extension: lifeline-based load balancing — after this many
    /// consecutive failed steals a thief goes dormant and waits for
    /// pushed work from its hypercube buddies. `None` = paper protocol.
    pub lifeline_threshold: Option<u32>,
    /// Per-message NIC occupancy for the shared per-node interface
    /// (0 disables NIC contention — the `ablation_nic` experiment).
    /// This is what makes 8 ranks per node pay for sharing a link.
    pub nic_occupancy_ns: u64,
    /// NIC serialization bandwidth in bytes per nanosecond.
    pub nic_bytes_per_ns: f64,
    /// High-fidelity alternative to the mean-field contention model:
    /// route every message over its dimension-ordered path and queue at
    /// each link. `Some((link_latency_ns, overhead_ns))` enables it and
    /// replaces both the class-based latency model and the NIC model.
    pub link_level_network: Option<(u64, u64)>,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Latency jitter fraction (0 disables).
    pub jitter: f64,
    /// Maximum per-rank clock skew in ns (0 = synchronized).
    pub clock_skew_max_ns: u64,
    /// Record the activity trace (cheap; disable for huge sweeps).
    pub collect_trace: bool,
    /// Causal observability: record a span per steal-protocol step on
    /// every rank plus an engine-level network trace (delivery-latency
    /// histogram and per-pair traffic matrix). Off by default — and
    /// when off, not a single timer, message, or RNG draw differs from
    /// a build without the subsystem, so figure outputs stay
    /// byte-identical.
    pub collect_spans: bool,
    /// Abort the simulation beyond this simulated time.
    pub max_sim_time_ns: Option<u64>,
    /// Abort beyond this many events.
    pub max_events: Option<u64>,
    /// If known, the tree size to verify against.
    pub expect_nodes: Option<u64>,
    /// Deterministic fault schedule injected by the simulator. The
    /// default plan injects nothing and leaves the event schedule
    /// byte-identical to a fault-free build.
    pub fault_plan: FaultPlan,
    /// Failure-tolerance knobs for the steal protocol. `None` means
    /// *auto*: enabled with defaults exactly when `fault_plan` is
    /// active, off otherwise (so fault-free runs never pay for it).
    /// Set explicitly to measure protocol overhead on a clean network.
    pub fault_tolerance: Option<FaultToleranceCfg>,
    /// Engine self-profiling: wall-clock phase timers, events/sec and
    /// allocations-per-event, reported in the run report's `profile`
    /// section. Off by default; like tracing, turning it on changes
    /// not a single simulated event.
    pub profile: bool,
    /// Simulation worker threads. The engine shards ranks node-aligned
    /// across this many OS threads and advances them in conservative
    /// lookahead windows; the schedule is bit-identical for every
    /// value, so — like the observability switches — `threads` is
    /// excluded from the config fingerprint. Link-level networks keep
    /// global per-link state and silently run on one thread.
    pub threads: u32,
    /// Differential-test hook: run on the reference binary-heap event
    /// queue instead of the calendar queue. The two are required to
    /// produce byte-identical schedules (a property test holds them to
    /// it), so like `threads` this is excluded from the fingerprint.
    #[doc(hidden)]
    pub reference_queue: bool,
}

impl ExperimentConfig {
    /// Paper-faithful defaults: compact allocation, K latencies,
    /// 20-node chunks, reference victim selection and one-chunk steals.
    pub fn new(workload: Workload, n_nodes: u32) -> Self {
        Self {
            workload,
            n_nodes,
            mapping: RankMapping::OneToOne,
            alloc: AllocationPolicy::CompactRectangle,
            latency: LatencyParams::default(),
            victim: VictimPolicy::RoundRobin,
            steal: StealAmount::OneChunk,
            chunk_size: 20,
            poll_interval: 4,
            retry_delay_ns: 2_000,
            probe_backoff_ns: 10_000,
            msg_handle_ns: 600,
            package_chunk_ns: 200,
            lifeline_threshold: None,
            nic_occupancy_ns: 2_000,
            nic_bytes_per_ns: 5.0,
            link_level_network: None,
            seed: 0xD15_7EA1,
            jitter: 0.0,
            clock_skew_max_ns: 0,
            collect_trace: true,
            collect_spans: false,
            max_sim_time_ns: None,
            max_events: None,
            expect_nodes: None,
            fault_plan: FaultPlan::default(),
            fault_tolerance: None,
            profile: false,
            threads: 1,
            reference_queue: false,
        }
    }

    /// Figure-legend label, e.g. `"Tofu Half 8RR"`.
    pub fn label(&self) -> String {
        format!(
            "{}{}{} {}",
            self.victim.label(),
            self.steal.label(),
            if self.lifeline_threshold.is_some() {
                " LL"
            } else {
                ""
            },
            self.mapping.label()
        )
    }

    /// Set the victim policy (builder style).
    pub fn with_victim(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Set the steal amount (builder style).
    pub fn with_steal(mut self, steal: StealAmount) -> Self {
        self.steal = steal;
        self
    }

    /// Set the rank mapping (builder style).
    pub fn with_mapping(mut self, mapping: RankMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Validate the configuration, returning a human-readable error for
    /// every inconsistency a user could plausibly construct.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_nodes == 0 {
            return Err("n_nodes must be positive".into());
        }
        if self.mapping.ppn() == 0 {
            return Err("mapping must place at least one rank per node".into());
        }
        if self.mapping.rank_count(self.n_nodes) < 2 {
            return Err(format!(
                "distributed work stealing needs at least 2 ranks, got {}; \
                 use dws_uts::search for the sequential baseline",
                self.mapping.rank_count(self.n_nodes)
            ));
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be positive".into());
        }
        if self.poll_interval == 0 {
            return Err("poll_interval must be positive".into());
        }
        if self.nic_bytes_per_ns <= 0.0 {
            return Err("nic_bytes_per_ns must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be at least 1".into());
        }
        if !(0.0..10.0).contains(&self.jitter) {
            return Err(format!("jitter {} outside [0, 10)", self.jitter));
        }
        if self.lifeline_threshold == Some(0) {
            return Err("lifeline_threshold of 0 would never steal at all".into());
        }
        self.workload.spec.check()?;
        self.latency.check()?;
        self.fault_plan
            .validate(self.mapping.rank_count(self.n_nodes))?;
        if self.fault_plan.has_crashes() && self.effective_fault_tolerance().is_none() {
            return Err(
                "crash injection without fault tolerance would deadlock the token ring".into(),
            );
        }
        Ok(())
    }

    /// The fault-tolerance configuration actually in effect: the
    /// explicit one if set, else defaults exactly when faults are
    /// injected.
    pub fn effective_fault_tolerance(&self) -> Option<FaultToleranceCfg> {
        self.fault_tolerance.clone().or_else(|| {
            if self.fault_plan.is_active() {
                Some(FaultToleranceCfg::default())
            } else {
                None
            }
        })
    }

    /// Canonical JSON description of everything that shapes the
    /// simulated outcome — including the full fault plan, so two runs
    /// under different fault schedules never fingerprint as "same
    /// config". Observability switches (`collect_trace`,
    /// `collect_spans`, `profile`) and the `threads` count are
    /// deliberately excluded: they are proven not to perturb the
    /// schedule, and reports taken with and without them must stay
    /// diffable as the same configuration.
    pub fn config_json(&self) -> JsonValue {
        let opt_u64 = |v: Option<u64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
        let mut pairs: Vec<(&str, JsonValue)> = vec![
            ("label", self.label().into()),
            ("seed", self.seed.into()),
            (
                "workload",
                JsonValue::obj(vec![
                    ("name", self.workload.name.into()),
                    ("spec", format!("{:?}", self.workload.spec).into()),
                    ("tree_seed", f64::from(self.workload.seed).into()),
                    ("gen_rounds", self.workload.gen_rounds.into()),
                    ("base_node_ns", self.workload.base_node_ns.into()),
                ]),
            ),
            ("n_nodes", self.n_nodes.into()),
            ("n_ranks", self.mapping.rank_count(self.n_nodes).into()),
            ("mapping", self.mapping.label().into()),
            ("alloc", format!("{:?}", self.alloc).into()),
            ("latency", format!("{:?}", self.latency).into()),
            ("victim", self.victim.label().into()),
            ("steal", self.steal.label().into()),
            ("chunk_size", self.chunk_size.into()),
            ("poll_interval", self.poll_interval.into()),
            ("retry_delay_ns", self.retry_delay_ns.into()),
            ("probe_backoff_ns", self.probe_backoff_ns.into()),
            ("msg_handle_ns", self.msg_handle_ns.into()),
            ("package_chunk_ns", self.package_chunk_ns.into()),
            (
                "lifeline_threshold",
                self.lifeline_threshold
                    .map(JsonValue::from)
                    .unwrap_or(JsonValue::Null),
            ),
            ("nic_occupancy_ns", self.nic_occupancy_ns.into()),
            ("nic_bytes_per_ns", self.nic_bytes_per_ns.into()),
            (
                "link_level_network",
                match self.link_level_network {
                    Some((link, overhead)) => JsonValue::Arr(vec![link.into(), overhead.into()]),
                    None => JsonValue::Null,
                },
            ),
            ("jitter", self.jitter.into()),
            ("clock_skew_max_ns", self.clock_skew_max_ns.into()),
            ("max_sim_time_ns", opt_u64(self.max_sim_time_ns)),
            ("max_events", opt_u64(self.max_events)),
            ("fault_plan", fault_plan_json(&self.fault_plan)),
            (
                "fault_tolerance",
                match self.effective_fault_tolerance() {
                    Some(ft) => format!("{ft:?}").into(),
                    None => JsonValue::Null,
                },
            ),
        ];
        let fingerprint = perflab::fingerprint(&JsonValue::obj(pairs.clone()).to_string());
        pairs.insert(0, ("fingerprint", fingerprint.into()));
        JsonValue::obj(pairs)
    }

    /// The configuration fingerprint alone (see
    /// [`config_json`](Self::config_json)).
    pub fn fingerprint(&self) -> String {
        self.config_json()
            .get("fingerprint")
            .and_then(|v| v.as_str())
            .expect("config_json always embeds a fingerprint")
            .to_string()
    }
}

/// The complete fault plan as JSON — every knob that changes what the
/// network does to the run, so it lands in the config fingerprint.
fn fault_plan_json(plan: &FaultPlan) -> JsonValue {
    JsonValue::obj(vec![
        ("active", plan.is_active().into()),
        ("drop_prob", plan.drop_prob.into()),
        ("dup_prob", plan.dup_prob.into()),
        ("spike_prob", plan.spike_prob.into()),
        ("spike_min_ns", plan.spike_min_ns.into()),
        ("spike_alpha", plan.spike_alpha.into()),
        ("spike_cap_ns", plan.spike_cap_ns.into()),
        (
            "slowdowns",
            JsonValue::Arr(
                plan.slowdowns
                    .iter()
                    .map(|w| {
                        JsonValue::Arr(vec![
                            w.rank.into(),
                            w.from_ns.into(),
                            w.until_ns.into(),
                            w.factor.into(),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "brownouts",
            JsonValue::Arr(
                plan.brownouts
                    .iter()
                    .map(|b| {
                        JsonValue::Arr(vec![b.rank.into(), b.from_ns.into(), b.until_ns.into()])
                    })
                    .collect(),
            ),
        ),
        (
            "crashes",
            JsonValue::Arr(
                plan.crashes
                    .iter()
                    .map(|c| JsonValue::Arr(vec![c.rank.into(), c.at_ns.into()]))
                    .collect(),
            ),
        ),
        (
            "partitions",
            JsonValue::Arr(
                plan.partitions
                    .iter()
                    .map(|p| {
                        JsonValue::Arr(vec![p.boundary.into(), p.from_ns.into(), p.until_ns.into()])
                    })
                    .collect(),
            ),
        ),
        (
            "crash_domains",
            JsonValue::Arr(
                plan.crash_domains
                    .iter()
                    .map(|d| {
                        JsonValue::Arr(vec![
                            JsonValue::Arr(d.ranks.iter().map(|&r| r.into()).collect()),
                            d.at_ns.into(),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Everything a figure needs from one run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Legend label of the configuration.
    pub label: String,
    /// Number of ranks that ran.
    pub n_ranks: u32,
    /// Simulated makespan.
    pub makespan: SimTime,
    /// Exact single-process time: tree size × per-node cost.
    pub t1_ns: u64,
    /// Tree size actually searched.
    pub total_nodes: u64,
    /// Speedup/efficiency summary.
    pub perf: Perf,
    /// Per-rank steal statistics.
    pub stats: RunStats,
    /// Skew-corrected activity trace, when collected.
    pub trace: Option<ActivityTrace>,
    /// Engine-level counts (events, messages).
    pub report: RunReport,
    /// False when a limit aborted the run before termination.
    pub completed: bool,
    /// Fault-injection accounting, present when the plan was active.
    pub fault: Option<FaultReport>,
    /// Causal steal-protocol spans, when `collect_spans` was set.
    pub spans: Option<SpanTrace>,
    /// Engine-level network trace, when `collect_spans` was set.
    pub net: Option<NetTrace>,
    /// The placed job (rank → coordinate), kept for offline routing
    /// analysis of the network trace.
    pub job: Arc<Job>,
    /// The full configuration as JSON, fingerprint included — what the
    /// run report's `config` section carries.
    pub config: JsonValue,
    /// Configuration fingerprint (see [`ExperimentConfig::config_json`]).
    pub fingerprint: String,
    /// Engine self-profile, when the run was profiled.
    pub profile: Option<ProfileReport>,
    /// Adaptive victim selection: each rank's learned per-victim health
    /// records at the end of the run, in rank order. `None` unless the
    /// run used a [`VictimPolicy::Adaptive`] policy.
    pub victim_health: Option<VictimHealthLedger>,
    /// Occupancy aggregates folded incrementally at window barriers
    /// (O(ranks) memory, no retained transition log), when the run
    /// streamed telemetry. Element-identical to the post-hoc
    /// [`OccupancyCurve`] built from `trace` — a property test holds
    /// the two paths to it.
    pub online_occupancy: Option<OnlineOccupancy>,
    /// Steal-RTT histogram recorded online at the scheduler's
    /// `StealOk`/`StealEmpty` sites and merged over ranks in rank
    /// order, when the run streamed telemetry. Element-identical to
    /// `latency_histograms().steal_rtt_ns`.
    pub online_steal_rtt: Option<Histogram>,
}

/// Per-rank adaptive health ledgers: `(rank, [(victim, health), …])`.
pub type VictimHealthLedger = Vec<(u32, Vec<(u32, VictimHealth)>)>;

/// What the faults actually did to one run.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Engine-level injection counters.
    pub stats: FaultStats,
    /// Ranks that crashed during the run.
    pub crashed_ranks: Vec<u32>,
    /// Frontier nodes lost with crashed ranks (their stack backlogs
    /// plus transfers never absorbed by a live thief).
    pub lost_frontier_nodes: u64,
    /// Full subtree size under those frontier nodes — the work the
    /// search never performed. `total_nodes + lost_subtree_nodes`
    /// equals the sequential tree size.
    pub lost_subtree_nodes: u64,
}

impl ExperimentResult {
    /// Build the occupancy curve (requires a collected trace).
    pub fn occupancy(&self) -> Option<OccupancyCurve> {
        self.trace
            .as_ref()
            .map(|t| OccupancyCurve::from_trace(t, self.makespan.ns()))
    }

    /// Latency histograms distilled from the spans, with the
    /// message-delivery distribution merged in from the network trace.
    /// `None` unless the run collected spans.
    pub fn latency_histograms(&self) -> Option<LatencyHistograms> {
        let spans = self.spans.as_ref()?;
        let mut h = spans.histograms();
        if let Some(net) = &self.net {
            h.msg_delivery_ns.merge(net.delivery_histogram());
        }
        Some(h)
    }

    /// Route every traced message over its dimension-ordered Tofu path
    /// and accumulate per-link byte loads. `None` unless the run
    /// collected spans (the network trace rides with them).
    pub fn link_load(&self) -> Option<LinkLoad> {
        let net = self.net.as_ref()?;
        let mut pairs: Vec<((u32, u32), u64)> = net
            .pair_tallies()
            .map(|(&(from, to), tally)| ((from, to), tally.bytes))
            .collect();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        let mut load = LinkLoad::new();
        for ((from, to), bytes) in pairs {
            load.add_route(
                self.job.machine(),
                self.job.coord_of(from),
                self.job.coord_of(to),
                bytes,
            );
        }
        Some(load)
    }

    /// The full machine-readable run report (`dws run --json`): config
    /// label, performance summary, per-rank and aggregate steal
    /// statistics, and — when spans were collected — latency
    /// histograms, span counts, and the network-level view.
    pub fn json_report(&self) -> JsonValue {
        let mut pairs: Vec<(&str, JsonValue)> = vec![
            ("label", self.label.as_str().into()),
            ("n_ranks", self.n_ranks.into()),
            ("makespan_ns", self.makespan.ns().into()),
            ("t1_ns", self.t1_ns.into()),
            ("total_nodes", self.total_nodes.into()),
            ("speedup", self.perf.speedup().into()),
            ("efficiency", self.perf.efficiency().into()),
            ("completed", self.completed.into()),
            (
                "engine",
                JsonValue::obj(vec![
                    ("events", self.report.events.into()),
                    ("messages", self.report.messages.into()),
                    ("timers", self.report.timers.into()),
                    ("halted", self.report.halted.into()),
                ]),
            ),
            ("totals", steal_stats_json(&self.stats.total())),
            (
                "per_rank",
                JsonValue::Arr(self.stats.per_rank.iter().map(steal_stats_json).collect()),
            ),
            ("config", self.config.clone()),
        ];
        // Occupancy section: post-hoc curve when a trace was collected;
        // otherwise fall back to the online aggregates from a streamed
        // run (the two are element-identical, so the section is the
        // same either way).
        let occ_values = if let Some(occ) = self.occupancy() {
            Some((
                occ.w_max(),
                occ.average_occupancy(),
                [0.25, 0.50, 0.90].map(|p| occ.starting_latency(p)),
                [0.25, 0.50, 0.90].map(|p| occ.ending_latency(p)),
            ))
        } else {
            self.online_occupancy.as_ref().map(|occ| {
                (
                    occ.w_max(),
                    occ.average_occupancy(),
                    [0.25, 0.50, 0.90].map(|p| occ.starting_latency(p)),
                    [0.25, 0.50, 0.90].map(|p| occ.ending_latency(p)),
                )
            })
        };
        if let Some((w_max, average, sl, el)) = occ_values {
            let latency = |v: Option<f64>| v.map(JsonValue::from).unwrap_or(JsonValue::Null);
            pairs.push((
                "occupancy",
                JsonValue::obj(vec![
                    ("w_max", w_max.into()),
                    ("average", average.into()),
                    (
                        "sl",
                        JsonValue::obj(vec![
                            ("25", latency(sl[0])),
                            ("50", latency(sl[1])),
                            ("90", latency(sl[2])),
                        ]),
                    ),
                    (
                        "el",
                        JsonValue::obj(vec![
                            ("25", latency(el[0])),
                            ("50", latency(el[1])),
                            ("90", latency(el[2])),
                        ]),
                    ),
                ]),
            ));
        }
        if let Some(profile) = &self.profile {
            pairs.push(("profile", profile.to_json()));
        }
        if let Some(h) = self.latency_histograms() {
            pairs.push(("histograms", histograms_json(&h)));
        }
        if let Some(spans) = &self.spans {
            pairs.push(("span_counts", span_counts_json(spans)));
        }
        if let Some(net) = &self.net {
            let load = self.link_load().expect("net implies link_load");
            pairs.push((
                "network",
                JsonValue::obj(vec![
                    ("messages", net.messages().into()),
                    ("links_used", load.links_used().into()),
                    ("total_link_units", load.total_link_units().into()),
                    ("hotspot_factor", load.hotspot_factor().into()),
                ]),
            ));
        }
        if let Some(vh) = &self.victim_health {
            pairs.push((
                "victim_health",
                JsonValue::Arr(
                    vh.iter()
                        .map(|(rank, tracked)| {
                            JsonValue::obj(vec![
                                ("rank", (*rank).into()),
                                (
                                    "victims",
                                    JsonValue::Arr(
                                        tracked
                                            .iter()
                                            .map(|(v, h)| victim_health_json(*v, h))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(fault) = &self.fault {
            pairs.push((
                "fault",
                JsonValue::obj(vec![
                    ("dropped", fault.stats.dropped.into()),
                    ("duplicated", fault.stats.duplicated.into()),
                    ("spiked", fault.stats.spiked.into()),
                    ("brownout_drops", fault.stats.brownout_drops.into()),
                    ("partition_drops", fault.stats.partition_drops.into()),
                    (
                        "crash_lost_deliveries",
                        fault.stats.crash_lost_deliveries.into(),
                    ),
                    ("crash_lost_timers", fault.stats.crash_lost_timers.into()),
                    (
                        "crashed_ranks",
                        JsonValue::Arr(fault.crashed_ranks.iter().map(|&r| r.into()).collect()),
                    ),
                    ("lost_frontier_nodes", fault.lost_frontier_nodes.into()),
                    ("lost_subtree_nodes", fault.lost_subtree_nodes.into()),
                ]),
            ));
        }
        if let Some(blame) = self.blame_report() {
            pairs.push(("blame", blame.to_json()));
        }
        JsonValue::obj(pairs)
    }

    /// Causal makespan attribution for this run: the critical-path
    /// blame report ([`BlameReport`]) behind the `blame` section of
    /// the JSON report and `dws why`. `None` unless the run collected
    /// both spans and the activity trace. Read-only over recorded
    /// data — computing it cannot perturb the schedule.
    pub fn blame_report(&self) -> Option<BlameReport> {
        let spans = self.spans.as_ref()?;
        let trace = self.trace.as_ref()?;
        let mut blame = BlameReport::from_run(spans, trace, self.makespan.ns());
        if let Some(profile) = &self.profile {
            if !profile.shards.is_empty() {
                blame = blame.with_shards(
                    profile
                        .shards
                        .iter()
                        .map(|&(shard, _, _, _, busy_ns, wait_ns)| (shard, busy_ns, wait_ns))
                        .collect(),
                );
            }
        }
        Some(blame)
    }

    /// The Chrome trace-event document for this run (`dws trace`).
    /// `None` unless the run collected spans. When the activity trace
    /// is also present, the document gains a dedicated "critical path"
    /// track with flow arrows hopping rank tracks along the path.
    pub fn chrome_trace_json(&self) -> Option<JsonValue> {
        let spans = self.spans.as_ref()?;
        let cp = self
            .trace
            .as_ref()
            .map(|t| CriticalPath::extract(spans, t, self.makespan.ns()));
        Some(chrome_trace_with_critpath(
            spans,
            self.trace.as_ref(),
            self.makespan.ns(),
            cp.as_ref(),
        ))
    }
}

/// One learned health record as JSON (a row of the report's
/// `victim_health` section).
fn victim_health_json(victim: u32, h: &VictimHealth) -> JsonValue {
    JsonValue::obj(vec![
        ("victim", victim.into()),
        ("score", h.score.into()),
        ("rtt_ewma_ns", h.rtt_ewma_ns.into()),
        ("successes", h.successes.into()),
        ("empties", h.empties.into()),
        ("timeouts", h.timeouts.into()),
        ("quarantines", h.quarantines.into()),
        ("probes", h.probes.into()),
        ("quarantined_until_ns", h.quarantined_until_ns.into()),
    ])
}

fn steal_stats_json(s: &StealStats) -> JsonValue {
    JsonValue::obj(vec![
        ("steal_attempts", s.steal_attempts.into()),
        ("steals_ok", s.steals_ok.into()),
        ("steals_failed", s.steals_failed.into()),
        ("chunks_received", s.chunks_received.into()),
        ("nodes_received", s.nodes_received.into()),
        ("chunks_given", s.chunks_given.into()),
        ("nodes_given", s.nodes_given.into()),
        ("search_ns", s.search_ns.into()),
        ("sessions", s.sessions.into()),
        ("session_ns", s.session_ns.into()),
        ("nodes_processed", s.nodes_processed.into()),
        ("lifeline_dormancies", s.lifeline_dormancies.into()),
        ("lifeline_pushes", s.lifeline_pushes.into()),
        ("steal_timeouts", s.steal_timeouts.into()),
        ("retransmits", s.retransmits.into()),
        ("dup_replies_dropped", s.dup_replies_dropped.into()),
        ("stale_replies_dropped", s.stale_replies_dropped.into()),
        ("late_work_absorbed", s.late_work_absorbed.into()),
        ("token_regenerations", s.token_regenerations.into()),
        ("nodes_stranded", s.nodes_stranded.into()),
        ("nodes_refused", s.nodes_refused.into()),
        ("quarantines", s.quarantines.into()),
        ("probe_steals", s.probe_steals.into()),
        ("overlay_rejections", s.overlay_rejections.into()),
    ])
}

fn to_steal_stats(c: &Counters) -> StealStats {
    StealStats {
        steal_attempts: c.steal_attempts,
        steals_ok: c.steals_ok,
        steals_failed: c.steals_failed,
        chunks_received: c.chunks_received,
        nodes_received: c.nodes_received,
        chunks_given: c.chunks_given,
        nodes_given: c.nodes_given,
        search_ns: c.search_ns,
        sessions: c.sessions,
        session_ns: c.session_ns,
        nodes_processed: c.nodes_processed,
        lifeline_dormancies: c.lifeline_dormancies,
        lifeline_pushes: c.lifeline_pushes,
        steal_timeouts: c.steal_timeouts,
        retransmits: c.retransmits,
        dup_replies_dropped: c.dup_replies_dropped,
        stale_replies_dropped: c.stale_replies_dropped,
        late_work_absorbed: c.late_work_absorbed,
        token_regenerations: c.token_regenerations,
        nodes_stranded: c.nodes_stranded,
        nodes_refused: c.nodes_refused,
        quarantines: c.quarantines,
        probe_steals: c.probe_steals,
        overlay_rejections: c.overlay_rejections,
    }
}

/// Exact number of tree nodes in the subtrees rooted at `roots`
/// (iterative DFS over the deterministic tree spec) — the work a
/// faulty run lost.
fn subtree_nodes(workload: &Workload, roots: Vec<Node>) -> u64 {
    let mut stack = roots;
    let mut buf = Vec::new();
    let mut count = 0u64;
    while let Some(node) = stack.pop() {
        count += 1;
        workload
            .spec
            .children_into(&node, workload.gen_rounds, &mut buf);
        stack.append(&mut buf);
    }
    count
}

/// Streaming-telemetry attachment for one run: the engine-side
/// configuration plus an optional JSONL snapshot sink.
///
/// Deliberately *not* part of [`ExperimentConfig`]: streaming is an
/// observability switch, proven not to perturb the schedule, so — like
/// `collect_spans` and `threads` — it must stay out of the config
/// fingerprint and reports taken with and without it must stay
/// diffable as the same configuration.
pub struct StreamingSetup {
    /// Snapshot cadence, flight-recorder, and budget knobs.
    pub cfg: StreamingCfg,
    /// Where snapshot JSONL lines go (`None` folds accounting without
    /// emitting — still feeds `online_occupancy` and the abort path).
    pub sink: Option<Box<dyn std::io::Write + Send>>,
}

/// Run one experiment to completion (or to its limits) and verify it.
///
/// # Panics
/// Panics on any integrity violation: lost work, malformed traces,
/// mismatched tree size, or a rank that never observed termination in a
/// completed run.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    run_experiment_streamed(cfg, None)
}

/// [`run_experiment`] with streaming telemetry attached: periodic
/// [`dws_metrics::Snapshot`] lines to the sink, online occupancy and
/// steal-RTT aggregates in the result, and the flight-recorder /
/// budget-abort machinery from [`StreamingCfg`].
///
/// # Panics
/// Same integrity panics as [`run_experiment`].
pub fn run_experiment_streamed(
    cfg: &ExperimentConfig,
    streaming: Option<StreamingSetup>,
) -> ExperimentResult {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
    let n_ranks = cfg.mapping.rank_count(cfg.n_nodes);
    let machine = if cfg.alloc == dws_topology::AllocationPolicy::TorusFill {
        // TorusFill needs a machine the job fills uniformly (torus
        // symmetry is the point of the policy).
        dws_topology::Machine::torus_for_nodes(cfg.n_nodes)
    } else if cfg.n_nodes <= dws_topology::Machine::k_computer().node_count() {
        dws_topology::Machine::k_computer()
    } else {
        dws_topology::Machine::with_capacity(cfg.n_nodes)
    };
    let job = Arc::new(Job::place(
        machine,
        cfg.n_nodes,
        cfg.alloc,
        cfg.mapping,
        cfg.latency.clone(),
    ));
    let sched = Arc::new(SchedulerCfg {
        workload: cfg.workload.clone(),
        chunk_size: cfg.chunk_size,
        poll_interval: cfg.poll_interval,
        steal: cfg.steal,
        probe_backoff_ns: cfg.probe_backoff_ns,
        retry_delay_ns: cfg.retry_delay_ns,
        msg_handle_ns: cfg.msg_handle_ns,
        package_chunk_ns: cfg.package_chunk_ns,
        lifeline_threshold: cfg.lifeline_threshold,
        fault_tolerance: cfg.effective_fault_tolerance(),
    });
    let ft_on = sched.fault_tolerance.is_some();
    let probe = if cfg.profile {
        Some(Arc::new(PerfProbe::new()))
    } else {
        None
    };
    // One shared victim context for the whole job (builds the shared
    // offset-alias tables exactly once on symmetric jobs).
    let victim_ctx = cfg.victim.prepare(&job);
    let workers: Vec<Worker> = (0..n_ranks)
        .map(|me| {
            let selector = cfg.victim.build(&job, me, &victim_ctx);
            let mut w = Worker::new(Arc::clone(&sched), me, n_ranks, selector);
            if ft_on {
                // Timeouts derive from the placed job's latency model.
                w = w.with_job(Arc::clone(&job));
            }
            if cfg.victim.is_adaptive() {
                w = w.with_health(AdaptiveCfg::default());
            }
            if cfg.collect_spans {
                w = w.with_tracing();
            }
            if streaming.is_some() {
                w = w.with_rtt_histogram();
            }
            if let Some(p) = &probe {
                w = w.with_profiler(Arc::clone(p));
            }
            w
        })
        .collect();
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        latency_jitter: cfg.jitter,
        clock_skew_max_ns: cfg.clock_skew_max_ns,
        fault: cfg.fault_plan.clone(),
    };
    let net: Box<dyn NetworkModel> = if let Some((link_ns, overhead_ns)) = cfg.link_level_network {
        Box::new(crate::network::LinkContendedNetwork::new(
            Arc::clone(&job),
            link_ns,
            cfg.nic_bytes_per_ns,
            overhead_ns,
        ))
    } else if cfg.nic_occupancy_ns > 0 {
        Box::new(crate::network::NicContendedNetwork::new(
            Arc::clone(&job),
            cfg.nic_occupancy_ns,
            cfg.nic_bytes_per_ns,
        ))
    } else {
        Box::new(PureNetwork(JobLatency(Arc::clone(&job))))
    };
    let mut sim: Simulation<Worker> = Simulation::with_network(workers, net, sim_cfg);
    if cfg.reference_queue {
        sim.use_reference_queue();
    }
    // Always run windowed (even at one thread) with a node-aligned
    // shard map, so the schedule is the same function of the config for
    // every thread count.
    sim.configure_parallel(
        ParallelConfig::new(cfg.threads, job.lookahead_ns())
            .with_shard_map(node_aligned_shards(&job, cfg.threads)),
    );
    if cfg.collect_spans {
        sim.attach_net_trace();
    }
    let streaming_on = streaming.is_some();
    if let Some(s) = streaming {
        sim.attach_streaming(s.cfg, s.sink);
    }
    if let Some(p) = &probe {
        sim.attach_profiler(Arc::clone(p));
    }
    // Wall-clock and allocation accounting bracket only the simulation
    // loop; both reads are no-ops for the simulated schedule.
    let allocs_before = probe.as_ref().map(|_| allocation_count());
    let wall_start = probe.as_ref().map(|_| Instant::now());
    let report = sim.run_parallel_with_limits(cfg.max_sim_time_ns.map(SimTime), cfg.max_events);
    let profile = probe.as_ref().map(|p| ProfileReport {
        wall_ns: wall_start
            .expect("wall_start set whenever probe is")
            .elapsed()
            .as_nanos() as u64,
        events: report.events,
        allocs: allocation_count() - allocs_before.expect("allocs_before set whenever probe is"),
        peak_rss_bytes: perflab::peak_rss_bytes().unwrap_or(0),
        phases: p
            .snapshot()
            .into_iter()
            .map(|(name, calls, total_ns)| (name.to_string(), calls, total_ns))
            .collect(),
        shards: sim
            .shard_profiles()
            .into_iter()
            .map(|s| (s.shard, s.ranks, s.events, s.windows, s.busy_ns, s.wait_ns))
            .collect(),
    });
    let crashed_ranks = sim.crashed_ranks();
    let is_crashed = |r: usize| crashed_ranks.contains(&(r as u32));
    // Crashed ranks can never observe termination; a run is complete
    // when every *survivor* has.
    let completed = sim
        .actors()
        .iter()
        .enumerate()
        .all(|(r, w)| is_crashed(r) || w.is_done());
    if !completed {
        assert!(
            report.halted,
            "simulation drained its event queue but some rank never \
             observed termination — protocol bug"
        );
    }

    let makespan = report.end_time;
    let online_occupancy = sim.finish_streaming(makespan.ns());
    let online_steal_rtt = if streaming_on {
        let mut h = Histogram::new();
        for w in sim.actors() {
            if let Some(r) = w.rtt_histogram() {
                h.merge(r);
            }
        }
        Some(h)
    } else {
        None
    };
    let per_rank: Vec<StealStats> = sim
        .actors()
        .iter()
        .map(|w| to_steal_stats(&w.counters))
        .collect();
    let stats = RunStats::new(per_rank);
    let total_nodes = stats.nodes_processed();

    // Lost-work reconciliation: everything a crash took down — the
    // dead rank's stack backlog plus every transfer no live thief
    // absorbed (sender- or receiver-side of a crash) — rooted at its
    // frontier nodes and expanded to full subtree size.
    let mut lost_frontier: Vec<Node> = Vec::new();
    if completed && !crashed_ranks.is_empty() {
        for (r, w) in sim.actors().iter().enumerate() {
            if is_crashed(r) {
                lost_frontier.extend(w.stack_nodes().copied());
            }
            for (to, xfer, chunks) in w.unconfirmed_transfers() {
                if !sim.actors()[to as usize].has_absorbed(r as u32, xfer) {
                    lost_frontier.extend(chunks.iter().flatten().copied());
                }
            }
        }
    }
    let lost_frontier_nodes = lost_frontier.len() as u64;
    let lost_subtree_nodes = if lost_frontier.is_empty() {
        0
    } else {
        subtree_nodes(&cfg.workload, lost_frontier)
    };

    if completed {
        if crashed_ranks.is_empty() {
            // Exactly-once transfer semantics hold even under message
            // drops and duplications: strict conservation.
            stats
                .check_conservation()
                .expect("steal accounting must conserve work");
            if let Some(expect) = cfg.expect_nodes {
                assert_eq!(
                    total_nodes, expect,
                    "distributed search found {total_nodes} nodes, expected {expect}"
                );
            }
            for (r, w) in sim.actors().iter().enumerate() {
                assert_eq!(w.backlog(), 0, "rank {r} left work behind");
            }
        } else {
            // Degraded run: global node conservation is replaced by
            // explicit loss accounting; per-rank counters must still
            // balance internally.
            for (r, s) in stats.per_rank.iter().enumerate() {
                if is_crashed(r) {
                    // A crashed rank's counters are a snapshot taken
                    // mid-operation (e.g. a steal attempt still in
                    // flight); only survivors must balance.
                    continue;
                }
                s.check()
                    .unwrap_or_else(|e| panic!("rank {r} counters inconsistent: {e}"));
            }
            if let Some(expect) = cfg.expect_nodes {
                assert_eq!(
                    total_nodes + lost_subtree_nodes,
                    expect,
                    "processed {total_nodes} + lost {lost_subtree_nodes} nodes \
                     must add up to the tree size {expect}"
                );
            }
            for (r, w) in sim.actors().iter().enumerate() {
                if !is_crashed(r) {
                    assert_eq!(w.backlog(), 0, "surviving rank {r} left work behind");
                }
            }
        }
    }

    let trace = if cfg.collect_trace {
        let mut t = ActivityTrace::new(n_ranks);
        for (r, w) in sim.actors().iter().enumerate() {
            for &(at, active) in w.trace() {
                t.record(r as u32, at, active);
            }
        }
        t.correct_skew(sim.skews_ns());
        t.check()
            .unwrap_or_else(|e| panic!("scheduler produced a malformed trace: {e}"));
        Some(t)
    } else {
        None
    };

    let t1_ns = total_nodes * cfg.workload.node_ns();
    let perf = Perf {
        n_ranks,
        makespan_ns: makespan.ns().max(1),
        t1_ns,
    };
    let fault = if cfg.fault_plan.is_active() {
        Some(FaultReport {
            stats: sim.fault_stats(),
            crashed_ranks,
            lost_frontier_nodes,
            lost_subtree_nodes,
        })
    } else {
        None
    };
    let spans = if cfg.collect_spans {
        Some(SpanTrace::from_per_rank(
            sim.actors().iter().map(|w| w.spans().to_vec()).collect(),
        ))
    } else {
        None
    };
    let victim_health = if cfg.victim.is_adaptive() {
        Some(
            sim.actors()
                .iter()
                .enumerate()
                .map(|(r, w)| {
                    let tracked: Vec<(u32, VictimHealth)> = w
                        .health()
                        .map(|h| h.iter().map(|(v, e)| (v, e.clone())).collect())
                        .unwrap_or_default();
                    (r as u32, tracked)
                })
                .collect(),
        )
    } else {
        None
    };
    let net = sim.net_trace().cloned();
    let config = cfg.config_json();
    let fingerprint = config
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .expect("config_json always embeds a fingerprint")
        .to_string();
    ExperimentResult {
        label: cfg.label(),
        n_ranks,
        makespan,
        t1_ns,
        total_nodes,
        perf,
        stats,
        trace,
        report,
        completed,
        fault,
        spans,
        net,
        job,
        config,
        fingerprint,
        profile,
        victim_health,
        online_occupancy,
        online_steal_rtt,
    }
}

/// Shard map keeping every rank of a physical node on one shard — the
/// precondition under which per-node NIC state needs no cross-shard
/// synchronization. Nodes are striped over shards in node-id order, so
/// the map is a pure function of the placement and the thread count.
fn node_aligned_shards(job: &Arc<Job>, threads: u32) -> Vec<u32> {
    let n_ranks = job.n_ranks();
    let mut nodes: Vec<u32> = (0..n_ranks).map(|r| job.node_of(r).0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let n_nodes = nodes.len() as u64;
    (0..n_ranks)
        .map(|r| {
            let idx = nodes
                .binary_search(&job.node_of(r).0)
                .expect("rank's node is in the node list") as u64;
            (idx * threads.max(1) as u64 / n_nodes) as u32
        })
        .collect()
}

/// Newtype forwarding latency queries to the placed job (orphan-rule
/// helper so `Simulation` can own it).
#[derive(Clone)]
struct JobLatency(Arc<Job>);

impl dws_simnet::LatencyFn for JobLatency {
    fn latency_ns(&self, from: u32, to: u32, bytes: usize, _now_ns: u64) -> u64 {
        self.0.latency_ns(from, to, bytes)
    }
}

/// Measure the sequential baseline: tree size and exact `T₁`.
pub fn sequential_baseline(workload: &Workload) -> (u64, u64) {
    let stats = dws_uts::search(workload);
    (stats.nodes, stats.nodes * workload.node_ns())
}
