//! Multi-configuration, multi-seed experiment sweeps.
//!
//! The paper reports single runs per configuration; a simulator can
//! afford replication. [`Sweep`] runs a grid of configurations across
//! seeds and aggregates each cell into mean ± deviation summaries, so
//! reports can state which strategy gaps are robust to scheduling
//! noise.

use crate::runner::{run_experiment, ExperimentConfig};
use crate::scheduler::StealAmount;
use crate::victim::VictimPolicy;
use dws_metrics::Summary;
use dws_topology::RankMapping;
use dws_uts::Workload;

/// One cell of a sweep grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Legend label.
    pub label: String,
    /// Rank count of the cell.
    pub ranks: u32,
    /// Speedup across seeds.
    pub speedup: Summary,
    /// Efficiency across seeds.
    pub efficiency: Summary,
    /// Failed steals across seeds.
    pub failed_steals: Summary,
    /// Average work-discovery session duration (µs) across seeds.
    pub session_us: Summary,
}

/// Sweep specification: a grid of (ranks × strategies), replicated over
/// seeds.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Workload to search in every cell.
    pub workload: Workload,
    /// Rank counts to sweep.
    pub ranks: Vec<u32>,
    /// Strategies: (label, victim, steal).
    pub strategies: Vec<(String, VictimPolicy, StealAmount)>,
    /// Rank mapping for every cell.
    pub mapping: RankMapping,
    /// Seeds per cell.
    pub seeds: u64,
    /// Base seed; cell runs use `base_seed + i`.
    pub base_seed: u64,
}

impl Sweep {
    /// A sweep over the paper's three strategies with steal-half.
    pub fn paper_strategies(workload: Workload, ranks: Vec<u32>) -> Self {
        Self {
            workload,
            ranks,
            strategies: vec![
                (
                    "Reference".into(),
                    VictimPolicy::RoundRobin,
                    StealAmount::OneChunk,
                ),
                ("Rand".into(), VictimPolicy::Uniform, StealAmount::OneChunk),
                (
                    "Tofu Half".into(),
                    VictimPolicy::DistanceSkewed { alpha: 1.0 },
                    StealAmount::Half,
                ),
            ],
            mapping: RankMapping::OneToOne,
            seeds: 3,
            base_seed: 0xBA5E,
        }
    }

    /// Execute the sweep, invoking `progress` before each run (for
    /// logging; pass `|_| {}` to stay quiet).
    pub fn run<F: FnMut(&ExperimentConfig)>(&self, mut progress: F) -> Vec<Cell> {
        assert!(self.seeds > 0, "a sweep needs at least one seed");
        assert!(!self.ranks.is_empty() && !self.strategies.is_empty());
        let mut cells = Vec::new();
        for &ranks in &self.ranks {
            for (label, victim, steal) in &self.strategies {
                let mut cell = Cell {
                    label: label.clone(),
                    ranks,
                    speedup: Summary::new(),
                    efficiency: Summary::new(),
                    failed_steals: Summary::new(),
                    session_us: Summary::new(),
                };
                for s in 0..self.seeds {
                    let mut cfg =
                        ExperimentConfig::new(self.workload.clone(), ranks / self.mapping.ppn())
                            .with_victim(*victim)
                            .with_steal(*steal)
                            .with_mapping(self.mapping);
                    cfg.seed = self.base_seed + s;
                    cfg.collect_trace = false;
                    progress(&cfg);
                    let r = run_experiment(&cfg);
                    cell.speedup.add(r.perf.speedup());
                    cell.efficiency.add(r.perf.efficiency());
                    cell.failed_steals.add(r.stats.failed_steals() as f64);
                    cell.session_us.add(r.stats.avg_session_ns() / 1e3);
                }
                cells.push(cell);
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dws_uts::TreeSpec;

    fn tiny() -> Workload {
        Workload {
            name: "tiny",
            spec: TreeSpec::Binomial {
                b0: 60,
                m: 2,
                q: 0.40,
            },
            seed: 5,
            gen_rounds: 1,
            base_node_ns: 1_000,
        }
    }

    #[test]
    fn sweep_fills_every_cell_with_every_seed() {
        let sweep = Sweep {
            workload: tiny(),
            ranks: vec![4, 8],
            strategies: vec![
                ("A".into(), VictimPolicy::Uniform, StealAmount::OneChunk),
                ("B".into(), VictimPolicy::RoundRobin, StealAmount::Half),
            ],
            mapping: RankMapping::OneToOne,
            seeds: 2,
            base_seed: 1,
        };
        let mut runs = 0;
        let cells = sweep.run(|_| runs += 1);
        assert_eq!(cells.len(), 4);
        assert_eq!(runs, 8);
        for cell in &cells {
            assert_eq!(cell.speedup.count(), 2);
            assert!(cell.speedup.mean() > 0.0);
            assert!(cell.efficiency.mean() <= 1.05);
        }
    }

    #[test]
    fn paper_strategy_preset() {
        let sweep = Sweep::paper_strategies(tiny(), vec![4]);
        assert_eq!(sweep.strategies.len(), 3);
        let cells = sweep.run(|_| {});
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].label, "Reference");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let mut sweep = Sweep::paper_strategies(tiny(), vec![4]);
        sweep.seeds = 0;
        sweep.run(|_| {});
    }
}
