//! Behavioural tests of the per-rank scheduler through small, fully
//! controlled simulations.

use dws_core::{run_experiment, ExperimentConfig, Msg, StealAmount, VictimPolicy};
use dws_uts::{TreeSpec, Workload};

fn workload(b0: u32, q: f64) -> Workload {
    Workload {
        name: "test",
        spec: TreeSpec::Binomial { b0, m: 2, q },
        seed: 21,
        gen_rounds: 1,
        base_node_ns: 1_000,
    }
}

#[test]
fn steal_amount_math() {
    assert_eq!(StealAmount::OneChunk.want(0), 0);
    assert_eq!(StealAmount::OneChunk.want(1), 1);
    assert_eq!(StealAmount::OneChunk.want(10), 1);
    assert_eq!(StealAmount::Half.want(0), 0);
    assert_eq!(StealAmount::Half.want(1), 1);
    assert_eq!(StealAmount::Half.want(2), 1);
    assert_eq!(StealAmount::Half.want(3), 2);
    assert_eq!(StealAmount::Half.want(10), 5);
    assert_eq!(StealAmount::Half.want(11), 6);
}

#[test]
fn wire_sizes_scale_with_payload() {
    use dws_uts::{Node, RngState};
    let empty = Msg::StealReply {
        seq: 0,
        xfer: 0,
        chunks: vec![],
    };
    let node = Node {
        state: RngState::from_seed(0),
        height: 0,
    };
    let full = Msg::StealReply {
        seq: 0,
        xfer: 0,
        chunks: vec![vec![node; 20]],
    };
    assert!(full.wire_bytes() > empty.wire_bytes());
    assert_eq!(
        full.wire_bytes() - empty.wire_bytes(),
        20 * dws_uts::NODE_WIRE_BYTES
    );
    assert!(Msg::StealRequest { seq: 0 }.wire_bytes() < 64);
}

#[test]
fn two_rank_run_moves_work_and_finishes() {
    let w = workload(100, 0.3);
    let seq = dws_uts::search(&w).nodes;
    let mut cfg = ExperimentConfig::new(w, 2);
    cfg.expect_nodes = Some(seq);
    let r = run_experiment(&cfg);
    assert!(r.completed);
    let s = &r.stats.per_rank;
    assert!(
        s[1].nodes_received > 0,
        "rank 1 must obtain work by stealing"
    );
    assert!(s[0].nodes_given > 0);
    assert_eq!(s[0].nodes_processed + s[1].nodes_processed, seq);
}

#[test]
fn trace_records_rank0_active_from_start() {
    let w = workload(60, 0.3);
    let r = run_experiment(&ExperimentConfig::new(w, 4));
    let trace = r.trace.expect("trace on");
    let first_rank0 = trace
        .transitions()
        .iter()
        .find(|t| t.rank == 0)
        .expect("rank 0 traced");
    assert!(first_rank0.active);
    assert_eq!(first_rank0.at_ns, 0, "rank 0 is active at t=0");
}

#[test]
fn half_stealing_moves_more_per_steal_when_available() {
    // A wide, shallow tree gives the victim many chunks: half-stealing
    // must average more nodes per successful steal than one-chunk.
    let w = workload(2000, 0.40);
    let per_steal = |steal: StealAmount| {
        let mut cfg = ExperimentConfig::new(w.clone(), 4).with_steal(steal);
        cfg.collect_trace = false;
        let r = run_experiment(&cfg);
        let t = r.stats.total();
        t.nodes_received as f64 / t.steals_ok.max(1) as f64
    };
    let one = per_steal(StealAmount::OneChunk);
    let half = per_steal(StealAmount::Half);
    assert!(
        half > one,
        "steal-half should average more nodes per steal ({half:.1} vs {one:.1})"
    );
}

#[test]
fn retry_delay_reduces_steal_attempts() {
    let w = workload(200, 0.45);
    let attempts = |retry_ns: u64| {
        let mut cfg = ExperimentConfig::new(w.clone(), 8).with_victim(VictimPolicy::Uniform);
        cfg.retry_delay_ns = retry_ns;
        cfg.collect_trace = false;
        run_experiment(&cfg).stats.total().steal_attempts
    };
    let eager = attempts(0);
    let patient = attempts(50_000);
    assert!(
        patient < eager,
        "a 50us retry pause must cut attempt volume ({patient} vs {eager})"
    );
}

#[test]
fn victim_service_cost_slows_victims() {
    let w = workload(400, 0.47);
    let makespan = |handle_ns: u64| {
        let mut cfg = ExperimentConfig::new(w.clone(), 8).with_victim(VictimPolicy::Uniform);
        cfg.msg_handle_ns = handle_ns;
        cfg.collect_trace = false;
        run_experiment(&cfg).makespan.ns()
    };
    let cheap = makespan(0);
    let expensive = makespan(20_000);
    assert!(
        expensive > cheap,
        "20us per serviced message must lengthen the run ({expensive} vs {cheap})"
    );
}

#[test]
fn skewed_selection_prefers_near_victims_in_vivo() {
    // Run with grouped mapping so each rank has same-node peers; the
    // distance-skewed policy must direct more requests to node mates
    // than uniform does. Observable through per-rank given/received
    // asymmetry? Simpler: compare average request latency through the
    // search time per attempt.
    let w = workload(2000, 0.48);
    let search_per_attempt = |victim: VictimPolicy| {
        let mut cfg = ExperimentConfig::new(w.clone(), 64).with_victim(victim);
        cfg.mapping = dws_topology::RankMapping::Grouped { ppn: 8 };
        cfg.collect_trace = false;
        let r = run_experiment(&cfg);
        let t = r.stats.total();
        t.search_ns as f64 / t.steal_attempts.max(1) as f64
    };
    let uniform = search_per_attempt(VictimPolicy::Uniform);
    let skewed = search_per_attempt(VictimPolicy::DistanceSkewed { alpha: 4.0 });
    assert!(
        skewed < uniform,
        "strongly skewed selection must lower per-attempt wait ({skewed:.0} vs {uniform:.0} ns)"
    );
}

#[test]
fn nic_contention_taxes_packed_mappings() {
    let w = workload(2000, 0.48);
    let makespan = |nic_ns: u64| {
        let mut cfg = ExperimentConfig::new(w.clone(), 8)
            .with_mapping(dws_topology::RankMapping::Grouped { ppn: 8 })
            .with_victim(VictimPolicy::Uniform);
        cfg.nic_occupancy_ns = nic_ns;
        cfg.collect_trace = false;
        run_experiment(&cfg).makespan.ns()
    };
    let without = makespan(0);
    let with = makespan(20_000);
    assert!(
        with > without,
        "NIC occupancy must cost packed mappings time ({with} vs {without})"
    );
}

#[test]
fn lifelines_complete_and_reduce_failed_steals() {
    let w = workload(2000, 0.49);
    let seq = dws_uts::search(&w).nodes;
    let run = |threshold: Option<u32>| {
        let mut cfg = ExperimentConfig::new(w.clone(), 32).with_victim(VictimPolicy::Uniform);
        cfg.lifeline_threshold = threshold;
        cfg.expect_nodes = Some(seq);
        cfg.collect_trace = false;
        run_experiment(&cfg)
    };
    let plain = run(None);
    let lifelined = run(Some(8));
    assert!(plain.completed && lifelined.completed);
    assert_eq!(plain.total_nodes, lifelined.total_nodes);
    let p = plain.stats.total();
    let l = lifelined.stats.total();
    assert!(
        l.steals_failed < p.steals_failed,
        "dormancy must cut failed-steal volume ({} vs {})",
        l.steals_failed,
        p.steals_failed
    );
}

#[test]
fn lifeline_label_and_counters() {
    let w = workload(300, 0.45);
    let mut cfg = ExperimentConfig::new(w, 8).with_victim(VictimPolicy::Uniform);
    cfg.lifeline_threshold = Some(3);
    assert!(cfg.label().contains("LL"));
    let r = run_experiment(&cfg);
    assert!(r.completed);
    r.stats.check_conservation().expect("pushes conserve work");
}

#[test]
fn lifelines_work_under_skewed_selection_and_mappings() {
    let w = workload(500, 0.47);
    let seq = dws_uts::search(&w).nodes;
    let mut cfg = ExperimentConfig::new(w, 4)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half)
        .with_mapping(dws_topology::RankMapping::Grouped { ppn: 4 });
    cfg.lifeline_threshold = Some(5);
    cfg.expect_nodes = Some(seq);
    let r = run_experiment(&cfg);
    assert!(r.completed);
}

#[test]
fn config_validation_catches_mistakes() {
    let base = || ExperimentConfig::new(workload(10, 0.3), 4);
    assert!(base().validate().is_ok());
    let mut c = base();
    c.chunk_size = 0;
    assert!(c.validate().is_err());
    let mut c = base();
    c.poll_interval = 0;
    assert!(c.validate().is_err());
    let mut c = base();
    c.n_nodes = 1; // 1 rank under 1/N
    assert!(c.validate().unwrap_err().contains("at least 2 ranks"));
    let mut c = base();
    c.lifeline_threshold = Some(0);
    assert!(c.validate().is_err());
    let mut c = base();
    c.jitter = -1.0;
    assert!(c.validate().is_err());
    let mut c = base();
    c.workload.spec = TreeSpec::Binomial {
        b0: 0,
        m: 2,
        q: 0.5,
    };
    assert!(c.validate().is_err());
}

#[test]
#[should_panic(expected = "invalid experiment configuration")]
fn run_experiment_rejects_invalid_config() {
    let mut cfg = ExperimentConfig::new(workload(10, 0.3), 4);
    cfg.chunk_size = 0;
    run_experiment(&cfg);
}
