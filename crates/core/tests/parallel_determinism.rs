//! The parallel engine's headline invariant, checked end-to-end: a full
//! work-stealing experiment produces a **bit-identical** outcome for
//! every simulation thread count — same makespan, same per-rank steal
//! counters, same spans, same machine-readable report — across seeds,
//! fault plans, and rank mappings.

use dws_core::{
    run_experiment, BaseVictimPolicy, ExperimentConfig, ExperimentResult, VictimPolicy,
};
use dws_simnet::{Crash, CrashDomain, FaultPlan, Partition};
use dws_topology::RankMapping;
use dws_uts::{TreeSpec, Workload};

fn workload(b0: u32) -> Workload {
    Workload {
        name: "par-det",
        spec: TreeSpec::Binomial { b0, m: 2, q: 0.47 },
        seed: 19,
        gen_rounds: 1,
        base_node_ns: 1_000,
    }
}

fn run_at(cfg: &ExperimentConfig, threads: u32) -> ExperimentResult {
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    run_experiment(&cfg)
}

/// Compare two runs field by field, down to the serialized report.
fn assert_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan differs");
    assert_eq!(a.total_nodes, b.total_nodes, "{what}: node count differs");
    assert_eq!(a.completed, b.completed, "{what}: completion differs");
    assert_eq!(
        a.report.events, b.report.events,
        "{what}: event count differs"
    );
    assert_eq!(
        a.report.messages, b.report.messages,
        "{what}: message count differs"
    );
    assert_eq!(
        a.stats.per_rank, b.stats.per_rank,
        "{what}: per-rank steal stats differ"
    );
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "{what}: config fingerprint differs (threads must not be in it)"
    );
    assert_eq!(
        a.json_report().to_string(),
        b.json_report().to_string(),
        "{what}: serialized run report differs"
    );
}

#[test]
fn report_is_identical_across_thread_counts() {
    for seed in [7u64, 0xBEEF] {
        for mapping in [RankMapping::OneToOne, RankMapping::RoundRobin { ppn: 4 }] {
            let mut cfg = ExperimentConfig::new(workload(900), 8).with_mapping(mapping);
            cfg.seed = seed;
            cfg.victim = VictimPolicy::Uniform;
            cfg.jitter = 0.2;
            cfg.clock_skew_max_ns = 1_500;
            cfg.collect_spans = true;
            let baseline = run_at(&cfg, 1);
            for threads in [2, 3, 8] {
                let parallel = run_at(&cfg, threads);
                assert_identical(
                    &baseline,
                    &parallel,
                    &format!("seed {seed} {} threads {threads}", cfg.label()),
                );
            }
        }
    }
}

#[test]
fn faulty_runs_are_identical_across_thread_counts() {
    let mut plan = FaultPlan::message_faults(0.05, 0.02, 0.05);
    plan.crashes.push(Crash {
        rank: 5,
        at_ns: 400_000,
    });
    let mut cfg = ExperimentConfig::new(workload(1200), 8)
        .with_mapping(RankMapping::Grouped { ppn: 2 })
        .with_victim(VictimPolicy::Uniform);
    cfg.fault_plan = plan;
    cfg.collect_spans = true;
    let baseline = run_at(&cfg, 1);
    let fr = baseline.fault.as_ref().expect("fault plan was active");
    assert!(
        fr.stats.dropped + fr.stats.spiked + fr.stats.duplicated > 0,
        "faults must actually fire for this test to mean anything"
    );
    assert_eq!(fr.crashed_ranks, vec![5]);
    for threads in [2, 3, 8] {
        let parallel = run_at(&cfg, threads);
        assert_identical(&baseline, &parallel, &format!("faulty, {threads} threads"));
        let pf = parallel.fault.as_ref().expect("fault plan was active");
        assert_eq!(pf.stats, fr.stats, "fault counters differ at {threads}");
        assert_eq!(
            pf.lost_subtree_nodes, fr.lost_subtree_nodes,
            "loss reconciliation differs at {threads}"
        );
    }
}

/// The adaptive overlay joins the bit-identity matrix: its health
/// updates and overlay redraws must be the same function of the config
/// for every thread count, across seeds and correlated fault plans
/// (whole-node crash domains plus a network partition).
#[test]
fn adaptive_runs_are_identical_across_thread_counts() {
    for seed in [11u64, 0xFEED] {
        for plan in [FaultPlan::default(), {
            let mut p = FaultPlan::message_faults(0.03, 0.01, 0.03);
            // Node 3 of the 2-rank-per-node job dies whole: ranks
            // 6 and 7 share its crash domain.
            p.crash_domains.push(CrashDomain {
                ranks: vec![6, 7],
                at_ns: 300_000,
            });
            p.partitions.push(Partition {
                boundary: 4,
                from_ns: 100_000,
                until_ns: 900_000,
            });
            p
        }] {
            let mut cfg = ExperimentConfig::new(workload(1200), 8)
                .with_mapping(RankMapping::Grouped { ppn: 2 })
                .with_victim(VictimPolicy::Adaptive {
                    base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
                });
            cfg.seed = seed;
            cfg.fault_plan = plan.clone();
            cfg.collect_spans = true;
            let baseline = run_at(&cfg, 1);
            if plan.is_active() {
                let fr = baseline.fault.as_ref().expect("fault plan was active");
                assert_eq!(fr.crashed_ranks, vec![6, 7], "domain crash must fire");
                assert!(fr.stats.partition_drops > 0, "partition must fire");
                assert!(
                    baseline.stats.total().quarantines > 0,
                    "crash domain must trigger quarantines"
                );
            }
            for threads in [2, 3, 8] {
                let parallel = run_at(&cfg, threads);
                assert_identical(
                    &baseline,
                    &parallel,
                    &format!("adaptive seed {seed} threads {threads}"),
                );
            }
        }
    }
}

#[test]
fn span_traces_reconcile_across_thread_counts() {
    let mut cfg = ExperimentConfig::new(workload(800), 8);
    cfg.victim = VictimPolicy::DistanceSkewed { alpha: 1.0 };
    cfg.collect_spans = true;
    let a = run_at(&cfg, 1);
    let b = run_at(&cfg, 4);
    let (sa, sb) = (a.spans.as_ref().unwrap(), b.spans.as_ref().unwrap());
    assert_eq!(sa.records(), sb.records(), "span streams differ");
    sa.reconcile(&a.stats)
        .expect("serial spans reconcile with steal counters");
    sb.reconcile(&b.stats)
        .expect("parallel spans reconcile with steal counters");
    let (na, nb) = (a.net.as_ref().unwrap(), b.net.as_ref().unwrap());
    assert_eq!(na.messages(), nb.messages(), "net trace message count");
    let tally = |n: &dws_simnet::NetTrace| {
        let mut v: Vec<_> = n.pair_tallies().map(|(k, t)| (*k, *t)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    };
    assert_eq!(tally(na), tally(nb), "traffic matrices differ");
}
