//! End-to-end behavior of the failure-aware adaptive victim overlay.
//!
//! Crashes are visible to every scheduler through the engine's crash
//! oracle (the static policies already re-draw past corpses), but a
//! network partition is invisible: requests into it just vanish. The
//! static policy keeps hammering unreachable victims for the whole
//! partition window, while adaptive thieves quarantine them after two
//! timeouts and only send bounded probe steals until the network heals.

use dws_core::{
    run_experiment, BaseVictimPolicy, ExperimentConfig, ExperimentResult, VictimPolicy,
};
use dws_metrics::SpanKind;
use dws_simnet::{CrashDomain, FaultPlan, Partition};
use dws_topology::RankMapping;
use dws_uts::{TreeSpec, Workload};

const BOUNDARY: u32 = 4;
const FROM_NS: u64 = 300_000;
const UNTIL_NS: u64 = 3_000_000;

fn run(victim: VictimPolicy) -> ExperimentResult {
    let workload = Workload {
        name: "adaptive-e2e",
        spec: TreeSpec::Binomial {
            b0: 2_000,
            m: 2,
            q: 0.47,
        },
        seed: 23,
        gen_rounds: 1,
        base_node_ns: 1_000,
    };
    // 8 nodes, one rank each; ranks 0..4 are cut off from ranks 4..8
    // for most of the run's midgame.
    let mut cfg = ExperimentConfig::new(workload, 8).with_victim(victim);
    cfg.fault_plan = FaultPlan {
        partitions: vec![Partition {
            boundary: BOUNDARY,
            from_ns: FROM_NS,
            until_ns: UNTIL_NS,
        }],
        ..FaultPlan::default()
    };
    cfg.collect_spans = true;
    run_experiment(&cfg)
}

/// Steal requests that crossed the partition boundary while it was up
/// (every one of them is doomed to time out).
fn doomed_requests(r: &ExperimentResult) -> u64 {
    r.spans
        .as_ref()
        .expect("spans were collected")
        .records()
        .iter()
        .filter(|s| {
            (FROM_NS..UNTIL_NS).contains(&s.at_ns)
                && matches!(s.kind, SpanKind::StealRequestSent { victim }
                    if ((s.rank as u32) < BOUNDARY) != ((victim as u32) < BOUNDARY))
        })
        .count() as u64
}

#[test]
fn adaptive_quarantines_partitioned_victims() {
    let static_run = run(VictimPolicy::DistanceSkewed { alpha: 1.0 });
    let adaptive_run = run(VictimPolicy::Adaptive {
        base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
    });

    assert!(static_run.completed && adaptive_run.completed);
    assert_eq!(static_run.total_nodes, adaptive_run.total_nodes);
    assert!(
        static_run
            .fault
            .as_ref()
            .expect("faults on")
            .stats
            .partition_drops
            > 0,
        "partition never fired"
    );

    let static_doomed = doomed_requests(&static_run);
    let adaptive_doomed = doomed_requests(&adaptive_run);
    assert!(
        static_doomed >= 50,
        "static policy must keep stealing across the partition for this \
         test to discriminate (saw {static_doomed} doomed requests)"
    );
    // The fault-tolerant steal protocol's own per-victim timeout
    // backoff already throttles the static policy, so the overlay's
    // margin on top of it is a solid fraction, not an order of
    // magnitude: require at least a 20% cut.
    assert!(
        adaptive_doomed * 5 <= static_doomed * 4,
        "adaptive sent {adaptive_doomed} requests into the partition vs \
         {static_doomed} static — quarantine is not engaging"
    );

    // The mechanism, visible in the counters: quarantines fired, probe
    // steals re-checked the cut-off ranks, and the static run saw none.
    let t = adaptive_run.stats.total();
    assert!(t.quarantines > 0, "no quarantines recorded");
    assert!(t.probe_steals > 0, "no probe steals recorded");
    let s = static_run.stats.total();
    assert_eq!(s.quarantines, 0);
    assert_eq!(s.probe_steals, 0);
    assert_eq!(s.overlay_rejections, 0);

    // The final health ledger agrees: some cross-boundary victim was
    // quarantined and probed, and the victims a thief quarantined sit
    // on the far side of the cut.
    let vh = adaptive_run
        .victim_health
        .as_ref()
        .expect("adaptive runs report victim health");
    let mut cross_quarantines = 0u64;
    let mut cross_probes = 0u64;
    for (rank, tracked) in vh {
        for (victim, h) in tracked {
            if h.quarantines > 0 {
                assert!(
                    (*rank < BOUNDARY) != (*victim < BOUNDARY),
                    "rank {rank} quarantined same-side victim {victim}"
                );
                cross_quarantines += h.quarantines;
                cross_probes += h.probes;
            }
        }
    }
    assert!(
        cross_quarantines > 0,
        "health ledger records no quarantines"
    );
    assert!(cross_probes > 0, "health ledger records no probes");
    assert!(t.probe_steals >= cross_probes);
}

/// The chaos-stress acceptance run CI drives: 128 ranks (16 nodes, 8G)
/// under the adaptive overlay with message faults, a whole-node crash
/// domain, *and* a mid-run partition, all at once. Beyond termination
/// (run_experiment panics internally on a stalled protocol or
/// inconsistent survivor counters), this pins the two global ledgers:
/// the span stream reconciles exactly with the steal counters, and
/// processed + lost-subtree nodes add up to the sequential tree size.
#[test]
fn chaos_stress_128_ranks_reconciles() {
    let workload = Workload {
        name: "adaptive-chaos",
        spec: TreeSpec::Binomial {
            b0: 15_000,
            m: 2,
            q: 0.47,
        },
        seed: 41,
        gen_rounds: 1,
        base_node_ns: 1_000,
    };
    let expect = dws_uts::search(&workload).nodes;
    let mapping = RankMapping::Grouped { ppn: 8 };
    let n_nodes = 16;
    let domain = mapping.ranks_on_slot(5, n_nodes);
    let mut cfg = ExperimentConfig::new(workload, n_nodes)
        .with_mapping(mapping)
        .with_victim(VictimPolicy::Adaptive {
            base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
        });
    cfg.expect_nodes = Some(expect);
    cfg.collect_spans = true;
    let mut plan = FaultPlan::message_faults(0.02, 0.01, 0.02);
    plan.crash_domains.push(CrashDomain {
        ranks: domain.clone(),
        at_ns: 400_000,
    });
    plan.partitions.push(Partition {
        boundary: 64,
        from_ns: 200_000,
        until_ns: 900_000,
    });
    cfg.fault_plan = plan;
    let r = run_experiment(&cfg);

    assert!(r.completed, "chaos run must terminate");
    let fr = r.fault.as_ref().expect("fault plan was active");
    assert_eq!(fr.crashed_ranks, domain, "whole node 5 dies together");
    assert!(fr.stats.partition_drops > 0, "partition never fired");
    assert!(r.stats.total().quarantines > 0, "overlay never engaged");
    r.spans
        .as_ref()
        .expect("spans were collected")
        .reconcile(&r.stats)
        .expect("span stream reconciles with steal counters under chaos");
    assert_eq!(
        r.total_nodes + fr.lost_subtree_nodes,
        expect,
        "lost-subtree accounting must balance the tree size"
    );
}
