//! Differential property for the hot-path scheduler overhaul, checked
//! end-to-end: a full work-stealing experiment run on the calendar
//! queue is **bit-identical** to the same experiment on the retired
//! reference `BinaryHeap` (kept behind the hidden
//! `ExperimentConfig::reference_queue` hook as an oracle). Both are
//! exact priority queues over the canonical `(time, dst, src, sseq)`
//! key, so the schedule — and therefore every derived artifact: report,
//! steal counters, span stream, fault ledger, serialized JSON — must
//! not differ by a single byte.

use dws_core::{run_experiment, ExperimentConfig, ExperimentResult, VictimPolicy};
use dws_simnet::{Crash, FaultPlan};
use dws_topology::RankMapping;
use dws_uts::{TreeSpec, Workload};

fn workload(b0: u32) -> Workload {
    Workload {
        name: "queue-diff",
        spec: TreeSpec::Binomial { b0, m: 2, q: 0.47 },
        seed: 23,
        gen_rounds: 1,
        base_node_ns: 1_000,
    }
}

fn run_on(cfg: &ExperimentConfig, reference: bool, threads: u32) -> ExperimentResult {
    let mut cfg = cfg.clone();
    cfg.reference_queue = reference;
    cfg.threads = threads;
    run_experiment(&cfg)
}

/// Compare two runs field by field, down to the serialized report.
fn assert_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan differs");
    assert_eq!(a.total_nodes, b.total_nodes, "{what}: node count differs");
    assert_eq!(a.completed, b.completed, "{what}: completion differs");
    assert_eq!(
        a.report.events, b.report.events,
        "{what}: event count differs"
    );
    assert_eq!(
        a.stats.per_rank, b.stats.per_rank,
        "{what}: per-rank steal stats differ"
    );
    assert_eq!(
        a.json_report().to_string(),
        b.json_report().to_string(),
        "{what}: serialized run report differs"
    );
}

#[test]
fn calendar_and_reference_heap_schedules_agree() {
    for seed in [3u64, 0xACE] {
        for threads in [1u32, 4] {
            let mut cfg = ExperimentConfig::new(workload(900), 8)
                .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 });
            cfg.seed = seed;
            cfg.jitter = 0.2;
            cfg.clock_skew_max_ns = 1_500;
            cfg.collect_spans = true;
            let cal = run_on(&cfg, false, threads);
            let heap = run_on(&cfg, true, threads);
            assert_identical(&cal, &heap, &format!("seed {seed}, {threads} threads"));
            let (sc, sh) = (cal.spans.as_ref().unwrap(), heap.spans.as_ref().unwrap());
            assert_eq!(
                sc.records(),
                sh.records(),
                "span streams differ at seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn calendar_and_reference_heap_agree_under_faults() {
    let mut plan = FaultPlan::message_faults(0.05, 0.02, 0.05);
    plan.crashes.push(Crash {
        rank: 5,
        at_ns: 400_000,
    });
    let mut cfg = ExperimentConfig::new(workload(1200), 8)
        .with_mapping(RankMapping::Grouped { ppn: 2 })
        .with_victim(VictimPolicy::Uniform);
    cfg.fault_plan = plan;
    cfg.collect_spans = true;
    let cal = run_on(&cfg, false, 1);
    let fc = cal.fault.as_ref().expect("fault plan was active");
    assert!(
        fc.stats.dropped + fc.stats.spiked + fc.stats.duplicated > 0,
        "faults must actually fire for this test to mean anything"
    );
    for threads in [1u32, 4] {
        let heap = run_on(&cfg, true, threads);
        assert_identical(&cal, &heap, &format!("faulty, {threads} threads"));
        let fh = heap.fault.as_ref().expect("fault plan was active");
        assert_eq!(fh.stats, fc.stats, "fault ledgers differ at {threads}");
        assert_eq!(
            fh.crashed_ranks, fc.crashed_ranks,
            "crash ledgers differ at {threads}"
        );
        assert_eq!(
            fh.lost_subtree_nodes, fc.lost_subtree_nodes,
            "loss reconciliation differs at {threads}"
        );
    }
}
