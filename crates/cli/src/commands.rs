//! Subcommand implementations.

use crate::args::{parse, parse_duration_ns, parse_mapping, parse_steal, parse_victim, Flags};
use dws_core::{
    run_experiment, run_experiment_streamed, ExperimentConfig, ExperimentResult, FaultToleranceCfg,
    StreamingSetup,
};
use dws_simnet::{
    Brownout, Crash, CrashDomain, FaultPlan, Partition, SlowdownWindow, StreamingCfg,
};

use dws_metrics::export::link_matrix_json;
use dws_metrics::perflab::{self, BenchMetric, BenchRecord, MetricDelta, Verdict};
use dws_metrics::{lifestory, render_table, write_csv, JsonValue, Summary};
use dws_topology::routing::Link;
use dws_topology::{Job, LatencyParams};
use dws_uts::Workload;

/// Flags every experiment-running subcommand understands.
const CONFIG_FLAGS: &[&str] = &[
    "tree",
    "nodes",
    "ranks",
    "mapping",
    "victim",
    "alpha",
    "local-tries",
    "steal",
    "lifelines",
    "seed",
    "chunk",
    "poll",
    "gen-rounds",
    "jitter",
    "skew-ns",
    "fault-drop",
    "fault-dup",
    "fault-spike",
    "fault-spike-min-ns",
    "fault-spike-cap-ns",
    "fault-crash",
    "fault-brownout",
    "fault-slowdown",
    "fault-partition",
    "fault-node-crash",
    "fault-timeout-mult",
    "threads",
    "alloc",
];

fn workload_flag(flags: &Flags, default: &str) -> Result<Workload, String> {
    let name = flags.get("tree").unwrap_or(default);
    dws_uts::presets::by_name(name).ok_or_else(|| {
        format!(
            "unknown preset {name:?}; available: {}",
            dws_uts::presets::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

/// Split a `rank@rest` fault spec.
fn rank_at(spec: &str) -> Result<(u32, &str), String> {
    let (r, rest) = spec
        .split_once('@')
        .ok_or_else(|| format!("bad fault spec {spec:?} (expected rank@...)"))?;
    let rank = r
        .parse()
        .map_err(|_| format!("bad rank in fault spec {spec:?}"))?;
    Ok((rank, rest))
}

/// Build a [`FaultPlan`] from `--fault-*` flags (inactive when absent).
/// The mapping and node count expand `--fault-node-crash` node indices
/// into full per-node rank crash domains.
fn fault_plan_from(
    flags: &Flags,
    mapping: dws_topology::RankMapping,
    n_nodes: u32,
) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan {
        drop_prob: flags.parse_or("fault-drop", 0.0)?,
        dup_prob: flags.parse_or("fault-dup", 0.0)?,
        spike_prob: flags.parse_or("fault-spike", 0.0)?,
        ..FaultPlan::default()
    };
    plan.spike_min_ns = flags.parse_or("fault-spike-min-ns", plan.spike_min_ns)?;
    plan.spike_cap_ns = flags.parse_or("fault-spike-cap-ns", plan.spike_cap_ns)?;
    if let Some(list) = flags.get("fault-crash") {
        for spec in list.split(',') {
            let (rank, at) = rank_at(spec.trim())?;
            let at_ns = at
                .parse()
                .map_err(|_| format!("bad crash time in {spec:?} (expected rank@ns)"))?;
            plan.crashes.push(Crash { rank, at_ns });
        }
    }
    if let Some(list) = flags.get("fault-brownout") {
        for spec in list.split(',') {
            let (rank, rest) = rank_at(spec.trim())?;
            let (from, until) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad brownout {spec:?} (expected rank@from:until)"))?;
            plan.brownouts.push(Brownout {
                rank,
                from_ns: from.parse().map_err(|_| format!("bad brownout {spec:?}"))?,
                until_ns: until
                    .parse()
                    .map_err(|_| format!("bad brownout {spec:?}"))?,
            });
        }
    }
    if let Some(list) = flags.get("fault-slowdown") {
        for spec in list.split(',') {
            let (rank, rest) = rank_at(spec.trim())?;
            let parts: Vec<&str> = rest.split(':').collect();
            let [from, until, factor] = parts[..] else {
                return Err(format!(
                    "bad slowdown {spec:?} (expected rank@from:until:factor)"
                ));
            };
            plan.slowdowns.push(SlowdownWindow {
                rank,
                from_ns: from.parse().map_err(|_| format!("bad slowdown {spec:?}"))?,
                until_ns: until
                    .parse()
                    .map_err(|_| format!("bad slowdown {spec:?}"))?,
                factor: factor
                    .parse()
                    .map_err(|_| format!("bad slowdown {spec:?}"))?,
            });
        }
    }
    if let Some(list) = flags.get("fault-partition") {
        for spec in list.split(',') {
            let (boundary, rest) = rank_at(spec.trim())?;
            let (from, until) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad partition {spec:?} (expected boundary@from:until)"))?;
            plan.partitions.push(Partition {
                boundary,
                from_ns: from
                    .parse()
                    .map_err(|_| format!("bad partition {spec:?}"))?,
                until_ns: until
                    .parse()
                    .map_err(|_| format!("bad partition {spec:?}"))?,
            });
        }
    }
    if let Some(list) = flags.get("fault-node-crash") {
        for spec in list.split(',') {
            let (node, at) = rank_at(spec.trim())?;
            if node >= n_nodes {
                return Err(format!(
                    "--fault-node-crash: node {node} out of range ({n_nodes} nodes)"
                ));
            }
            plan.crash_domains.push(CrashDomain {
                ranks: mapping.ranks_on_slot(node as usize, n_nodes),
                at_ns: at
                    .parse()
                    .map_err(|_| format!("bad node crash in {spec:?} (expected node@ns)"))?,
            });
        }
    }
    Ok(plan)
}

/// Parse `--alloc`: `compact`, `strip`, `scatter[:seed]`, or `torus`.
fn parse_alloc(name: &str) -> Result<dws_topology::AllocationPolicy, String> {
    use dws_topology::AllocationPolicy;
    Ok(match name {
        "compact" => AllocationPolicy::CompactRectangle,
        "strip" => AllocationPolicy::LinearStrip,
        "torus" => AllocationPolicy::TorusFill,
        other => {
            if let Some(rest) = other.strip_prefix("scatter") {
                let seed = match rest.strip_prefix(':') {
                    None if rest.is_empty() => 0,
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("bad scatter seed in --alloc {other:?}"))?,
                    None => return Err(format!("unknown --alloc {other:?}")),
                };
                AllocationPolicy::Scattered { seed }
            } else {
                return Err(format!(
                    "unknown --alloc {other:?}; expected compact, strip, \
                     scatter[:seed], or torus"
                ));
            }
        }
    })
}

fn config_from(flags: &Flags) -> Result<ExperimentConfig, String> {
    let workload =
        workload_flag(flags, "t3wl")?.with_gen_rounds(flags.parse_or("gen-rounds", 1u32)?);
    let n_nodes: u32 = flags.parse_or("nodes", 128)?;
    let mut cfg = ExperimentConfig::new(workload, n_nodes);
    cfg.mapping = parse_mapping(flags.get("mapping").unwrap_or("1/N"))?;
    if let Some(ranks) = flags.parse_opt::<u32>("ranks")? {
        // `--ranks` talks about the quantity the paper plots; convert
        // through the mapping's ranks-per-node to physical nodes.
        let ppn = cfg.mapping.ppn();
        if ranks == 0 || ranks % ppn != 0 {
            return Err(format!(
                "--ranks {ranks} must be a positive multiple of the mapping's \
                 {ppn} ranks per node"
            ));
        }
        cfg.n_nodes = ranks / ppn;
    }
    let alpha: f64 = flags.parse_or("alpha", 1.0)?;
    let local_tries: u32 = flags.parse_or("local-tries", 4)?;
    cfg.victim = parse_victim(
        flags.get("victim").unwrap_or("reference"),
        alpha,
        local_tries,
    )?;
    cfg.steal = parse_steal(flags.get("steal").unwrap_or("one"))?;
    cfg.lifeline_threshold = flags.parse_opt("lifelines")?;
    cfg.seed = flags.parse_or("seed", cfg.seed)?;
    cfg.chunk_size = flags.parse_or("chunk", cfg.chunk_size)?;
    cfg.poll_interval = flags.parse_or("poll", cfg.poll_interval)?;
    cfg.jitter = flags.parse_or("jitter", 0.0)?;
    cfg.clock_skew_max_ns = flags.parse_or("skew-ns", 0u64)?;
    if let Some(name) = flags.get("alloc") {
        cfg.alloc = parse_alloc(name)?;
    }
    if flags.has("no-trace") {
        cfg.collect_trace = false;
    }
    cfg.fault_plan = fault_plan_from(flags, cfg.mapping, cfg.n_nodes)?;
    if flags.has("fault-tolerant") {
        cfg.fault_tolerance = Some(FaultToleranceCfg::default());
    }
    if let Some(mult) = flags.parse_opt::<u32>("fault-timeout-mult")? {
        let mut ft = cfg.effective_fault_tolerance().unwrap_or_default();
        ft.timeout_mult = mult;
        cfg.fault_tolerance = Some(ft);
    }
    if let Some(threads) = flags.parse_opt::<u32>("threads")? {
        if threads == 0 {
            return Err("--threads must be at least 1".into());
        }
        let ranks = cfg.mapping.rank_count(cfg.n_nodes);
        if threads > ranks {
            eprintln!(
                "warning: --threads {threads} exceeds the job's {ranks} ranks; \
                 extra threads will idle"
            );
        }
        cfg.threads = threads;
    }
    // Surface config mistakes (bad probabilities, unknown ranks, a
    // rank-0 crash) as CLI errors instead of a panic inside the run.
    cfg.validate()?;
    Ok(cfg)
}

/// Pretty-print `Link` as e.g. `(1,0,2,0,0,0)+x`.
fn link_label(l: &Link) -> String {
    let axis = ["x", "y", "z", "a", "b", "c"][l.axis as usize];
    let sign = if l.positive { '+' } else { '-' };
    let c = l.from;
    format!(
        "({},{},{},{},{},{}){}{}",
        c.x, c.y, c.z, c.a, c.b, c.c, sign, axis
    )
}

/// Write a JSON document to `path` with a trailing newline.
fn write_json(path: &str, doc: &JsonValue) -> Result<(), String> {
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("{path}: {e}"))
}

/// Emit the `--trace`, `--json`, and `--links` artifacts of a traced run.
fn write_observability(flags: &Flags, r: &ExperimentResult) -> Result<(), String> {
    if let Some(path) = flags.get("trace") {
        let doc = r
            .chrome_trace_json()
            .expect("observability outputs imply collected spans");
        write_json(path, &doc)?;
        println!("[chrome trace written to {path} — load in Perfetto or chrome://tracing]");
    }
    if let Some(path) = flags.get("json") {
        write_json(path, &r.json_report())?;
        println!("[run report written to {path}]");
    }
    if let Some(path) = flags.get("links") {
        let load = r
            .link_load()
            .expect("observability outputs imply a network trace");
        let rows: Vec<(String, u64)> = load
            .hottest(load.links_used())
            .iter()
            .map(|(l, units)| (link_label(l), *units))
            .collect();
        write_json(path, &link_matrix_json(&rows, load.hotspot_factor()))?;
        println!("[per-link load matrix written to {path}]");
    }
    Ok(())
}

/// Build the streaming-telemetry attachment from the `dws run` flags,
/// or `None` when no streaming flag was given.
fn streaming_from(flags: &Flags) -> Result<Option<StreamingSetup>, String> {
    let wanted = flags.has("live")
        || [
            "snapshot",
            "snapshot-every",
            "snapshot-events",
            "flight-dump",
            "wall-budget",
        ]
        .iter()
        .any(|f| flags.get(f).is_some())
        || flags.get("rss-budget-mb").is_some();
    if !wanted {
        return Ok(None);
    }
    let mut cfg = StreamingCfg::default();
    if let Some(every) = flags.get("snapshot-every") {
        cfg.snapshot_every_sim_ns = Some(parse_duration_ns(every)?);
    }
    cfg.snapshot_every_events = flags.parse_opt("snapshot-events")?;
    if cfg.snapshot_every_events.is_some() && flags.get("snapshot-every").is_none() {
        // An explicit event cadence replaces the default sim-time one.
        cfg.snapshot_every_sim_ns = None;
    }
    cfg.live = flags.has("live");
    cfg.flight_ring = flags.parse_or("flight-ring", cfg.flight_ring)?;
    cfg.flight_dump_path = flags.get("flight-dump").map(std::path::PathBuf::from);
    if let Some(budget) = flags.get("wall-budget") {
        cfg.wall_budget = Some(std::time::Duration::from_nanos(parse_duration_ns(budget)?));
    }
    if let Some(mb) = flags.parse_opt::<u64>("rss-budget-mb")? {
        cfg.rss_budget_bytes = Some(mb * 1024 * 1024);
    }
    let sink: Option<Box<dyn std::io::Write + Send>> = match flags.get("snapshot") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some(Box::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    Ok(Some(StreamingSetup { cfg, sink }))
}

/// Valued streaming-telemetry flags of `dws run`.
const STREAM_FLAGS: &[&str] = &[
    "snapshot",
    "snapshot-every",
    "snapshot-events",
    "flight-dump",
    "flight-ring",
    "wall-budget",
    "rss-budget-mb",
];

/// `dws run`
pub fn run(rest: &[String]) -> Result<(), String> {
    let valued: Vec<&str> = CONFIG_FLAGS
        .iter()
        .chain(["csv", "trace", "json", "links"].iter())
        .chain(STREAM_FLAGS.iter())
        .copied()
        .collect();
    let flags = parse(
        rest,
        &valued,
        &["lifestory", "fault-tolerant", "profile", "no-trace", "live"],
    )?;
    let mut cfg = config_from(&flags)?;
    // Any observability artifact turns the span/network tracer on.
    cfg.collect_spans =
        flags.get("trace").is_some() || flags.get("json").is_some() || flags.get("links").is_some();
    cfg.profile = flags.has("profile");
    let streaming = streaming_from(&flags)?;
    eprintln!(
        "running {} on {} nodes ({} ranks), tree {}...",
        cfg.label(),
        cfg.n_nodes,
        cfg.mapping.rank_count(cfg.n_nodes),
        cfg.workload.name
    );
    let r = run_experiment_streamed(&cfg, streaming);
    println!("configuration : {}", r.label);
    println!("tree nodes    : {}", r.total_nodes);
    println!("makespan      : {}", r.makespan);
    println!("T1 (exact)    : {:.3}s", r.t1_ns as f64 / 1e9);
    println!("speedup       : {:.1}", r.perf.speedup());
    println!("efficiency    : {:.3}", r.perf.efficiency());
    let t = r.stats.total();
    println!(
        "steals        : {} ok, {} failed",
        t.steals_ok, t.steals_failed
    );
    println!(
        "sessions      : {:.0} per rank, avg {:.1} us",
        r.stats.avg_sessions_per_rank(),
        r.stats.avg_session_ns() / 1e3
    );
    println!(
        "search time   : avg {:.2} ms per rank",
        r.stats.avg_search_ns() / 1e6
    );
    if t.lifeline_pushes > 0 || t.lifeline_dormancies > 0 {
        println!(
            "lifelines     : {} dormancies, {} pushed chunks",
            t.lifeline_dormancies, t.lifeline_pushes
        );
    }
    if let Some(fr) = &r.fault {
        println!(
            "faults        : {} dropped, {} duplicated, {} spiked, {} brownout-lost, \
             {} partition-lost",
            fr.stats.dropped,
            fr.stats.duplicated,
            fr.stats.spiked,
            fr.stats.brownout_drops,
            fr.stats.partition_drops
        );
        println!(
            "recovery      : {} timeouts, {} retransmits, {} dup + {} stale replies dropped",
            t.steal_timeouts, t.retransmits, t.dup_replies_dropped, t.stale_replies_dropped
        );
        println!(
            "              : {} late-work absorptions, {} token regenerations",
            t.late_work_absorbed, t.token_regenerations
        );
        if !fr.crashed_ranks.is_empty() {
            println!(
                "crashed       : ranks {:?} — {} frontier nodes lost ({} nodes with subtrees)",
                fr.crashed_ranks, fr.lost_frontier_nodes, fr.lost_subtree_nodes
            );
        }
    }
    if t.quarantines > 0 || t.probe_steals > 0 || t.overlay_rejections > 0 {
        println!(
            "adaptive      : {} quarantines, {} probe steals, {} overlay rejections",
            t.quarantines, t.probe_steals, t.overlay_rejections
        );
    }
    if let Some(occ) = r.occupancy() {
        println!(
            "occupancy     : Wmax {}/{} ({:.0}%), average {:.1}%",
            occ.w_max(),
            occ.n_ranks(),
            100.0 * occ.w_max() as f64 / occ.n_ranks() as f64,
            100.0 * occ.average_occupancy()
        );
        for pct in [25u32, 50, 90] {
            let x = pct as f64 / 100.0;
            if let (Some(sl), Some(el)) = (occ.starting_latency(x), occ.ending_latency(x)) {
                println!(
                    "  SL({pct:2}%) = {:5.2}%   EL({pct:2}%) = {:5.2}%",
                    sl * 100.0,
                    el * 100.0
                );
            }
        }
    }
    if flags.has("lifestory") {
        if let Some(trace) = &r.trace {
            println!("\n{}", lifestory::render(trace, r.makespan.ns(), 72, 24));
        }
    }
    if r.profile.is_some() {
        print_profile(&r);
    }
    if let Some(path) = flags.get("csv") {
        let header = [
            "rank",
            "nodes",
            "steals_ok",
            "steals_failed",
            "nodes_given",
            "nodes_received",
            "search_ns",
            "sessions",
        ];
        let rows: Vec<Vec<String>> = r
            .stats
            .per_rank
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    i.to_string(),
                    s.nodes_processed.to_string(),
                    s.steals_ok.to_string(),
                    s.steals_failed.to_string(),
                    s.nodes_given.to_string(),
                    s.nodes_received.to_string(),
                    s.search_ns.to_string(),
                    s.sessions.to_string(),
                ]
            })
            .collect();
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        write_csv(std::io::BufWriter::new(file), &header, &rows)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("[per-rank stats written to {path}]");
    }
    write_observability(&flags, &r)?;
    if let Some(path) = flags.get("snapshot") {
        println!("[snapshot stream written to {path}; replay with `dws top {path}`]");
    }
    Ok(())
}

/// `dws trace` — run one experiment with the causal tracer on and
/// write the Chrome trace-event document (plus, optionally, the JSON
/// run report and per-link load matrix).
pub fn trace(rest: &[String]) -> Result<(), String> {
    let valued: Vec<&str> = CONFIG_FLAGS
        .iter()
        .chain(["out", "json", "links"].iter())
        .copied()
        .collect();
    let flags = parse(rest, &valued, &["fault-tolerant", "no-trace"])?;
    let mut cfg = config_from(&flags)?;
    cfg.collect_spans = true;
    eprintln!(
        "tracing {} on {} nodes ({} ranks), tree {}...",
        cfg.label(),
        cfg.n_nodes,
        cfg.mapping.rank_count(cfg.n_nodes),
        cfg.workload.name
    );
    let r = run_experiment(&cfg);
    let out = flags.get("out").unwrap_or("trace.json");
    let doc = r.chrome_trace_json().expect("spans were collected");
    write_json(out, &doc)?;
    let spans = r.spans.as_ref().expect("spans were collected");
    println!(
        "traced {} spans across {} ranks over {} — chrome trace written to {out}",
        spans.records().len(),
        r.n_ranks,
        r.makespan
    );
    println!("load it in Perfetto (https://ui.perfetto.dev) or chrome://tracing");
    // `--json` / `--links` ride along exactly as on `dws run`.
    write_observability(&flags, &r)?;
    Ok(())
}

/// `dws sweep`
pub fn sweep(rest: &[String]) -> Result<(), String> {
    let flags = parse(
        rest,
        &["tree", "ranks", "seeds", "mapping", "steal", "gen-rounds"],
        &[],
    )?;
    let ranks: Vec<u32> = flags
        .get("ranks")
        .unwrap_or("64,128,256")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad rank count {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    let seeds: u64 = flags.parse_or("seeds", 3u64)?;
    let mapping = parse_mapping(flags.get("mapping").unwrap_or("1/N"))?;
    let steal = parse_steal(flags.get("steal").unwrap_or("half"))?;
    let workload =
        workload_flag(&flags, "t3wl")?.with_gen_rounds(flags.parse_or("gen-rounds", 1u32)?);
    let sweep = dws_core::Sweep {
        workload,
        ranks,
        strategies: vec![
            (
                "Reference".into(),
                dws_core::VictimPolicy::RoundRobin,
                steal,
            ),
            ("Rand".into(), dws_core::VictimPolicy::Uniform, steal),
            (
                "Tofu".into(),
                dws_core::VictimPolicy::DistanceSkewed { alpha: 1.0 },
                steal,
            ),
        ],
        mapping,
        seeds,
        base_seed: 0xBA5E,
    };
    let cells = sweep.run(|cfg| {
        eprint!(
            "  {} ranks={} seed={}...        \r",
            cfg.label(),
            cfg.mapping.rank_count(cfg.n_nodes),
            cfg.seed
        );
    });
    eprintln!();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                c.ranks.to_string(),
                c.speedup.display(1),
                format!("{:.0}", c.failed_steals.mean()),
                format!("{:.0}", c.session_us.mean()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "ranks",
                "speedup (mean ± sd)",
                "failed steals",
                "session (us)"
            ],
            &rows
        )
    );
    Ok(())
}

/// `dws chaos`
pub fn chaos(rest: &[String]) -> Result<(), String> {
    let flags = parse(
        rest,
        &[
            "tree",
            "nodes",
            "mapping",
            "steal",
            "seeds",
            "rates",
            "dup-frac",
            "spike-frac",
            "gen-rounds",
            "victim",
            "alpha",
            "local-tries",
            "fault-partition",
            "fault-node-crash",
            "threads",
        ],
        &[],
    )?;
    let workload =
        workload_flag(&flags, "t3sim-l")?.with_gen_rounds(flags.parse_or("gen-rounds", 1u32)?);
    let n_nodes: u32 = flags.parse_or("nodes", 64)?;
    let mapping = parse_mapping(flags.get("mapping").unwrap_or("1/N"))?;
    let steal = parse_steal(flags.get("steal").unwrap_or("half"))?;
    let seeds: u64 = flags.parse_or("seeds", 2u64)?;
    let threads: u32 = flags.parse_or("threads", 1u32)?;
    let rates: Vec<f64> = flags
        .get("rates")
        .unwrap_or("0,0.01,0.02,0.05")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad rate {s:?}")))
        .collect::<Result<_, _>>()?;
    // Duplication and spike probabilities ride along as fractions of
    // the drop rate, so one knob sweeps the whole fault mix.
    let dup_frac: f64 = flags.parse_or("dup-frac", 0.5)?;
    let spike_frac: f64 = flags.parse_or("spike-frac", 1.0)?;
    // Structural faults (partitions, whole-node crash domains) apply on
    // top of every rate in the sweep.
    let structural = fault_plan_from(&flags, mapping, n_nodes)?;
    // `--victim` narrows the sweep to one policy (e.g. `adaptive` for
    // the failure-aware overlay); default is the paper's static trio.
    let strategies: Vec<(String, dws_core::VictimPolicy)> = if let Some(name) = flags.get("victim")
    {
        let alpha: f64 = flags.parse_or("alpha", 1.0)?;
        let local_tries: u32 = flags.parse_or("local-tries", 4)?;
        let victim = parse_victim(name, alpha, local_tries)?;
        vec![(victim.label().to_string(), victim)]
    } else {
        vec![
            ("Reference".into(), dws_core::VictimPolicy::RoundRobin),
            ("Rand".into(), dws_core::VictimPolicy::Uniform),
            (
                "Tofu".into(),
                dws_core::VictimPolicy::DistanceSkewed { alpha: 1.0 },
            ),
        ]
    };
    let mut rows = Vec::new();
    for &rate in &rates {
        for (label, victim) in &strategies {
            let mut makespan_ms = Summary::new();
            let mut timeouts = Summary::new();
            let mut retransmits = Summary::new();
            let mut stale = Summary::new();
            let mut quarantines = Summary::new();
            for k in 0..seeds {
                let mut cfg = ExperimentConfig::new(workload.clone(), n_nodes);
                cfg.mapping = mapping;
                cfg.victim = *victim;
                cfg.steal = steal;
                cfg.seed = 0xC4A0_5000 + k;
                cfg.collect_trace = false;
                cfg.threads = threads;
                let mut plan = FaultPlan::message_faults(rate, rate * dup_frac, rate * spike_frac);
                plan.partitions = structural.partitions.clone();
                plan.crash_domains = structural.crash_domains.clone();
                cfg.fault_plan = plan;
                cfg.validate()?;
                eprint!("  {label} rate={rate} seed={k}...        \r");
                let r = run_experiment(&cfg);
                let t = r.stats.total();
                makespan_ms.add(r.makespan.ns() as f64 / 1e6);
                timeouts.add(t.steal_timeouts as f64);
                retransmits.add(t.retransmits as f64);
                stale.add((t.stale_replies_dropped + t.dup_replies_dropped) as f64);
                quarantines.add(t.quarantines as f64);
            }
            rows.push(vec![
                format!("{rate}"),
                label.to_string(),
                makespan_ms.display(2),
                format!("{:.0}", timeouts.mean()),
                format!("{:.0}", retransmits.mean()),
                format!("{:.0}", stale.mean()),
                format!("{:.0}", quarantines.mean()),
            ]);
        }
    }
    eprintln!();
    println!(
        "{}",
        render_table(
            &[
                "drop rate",
                "strategy",
                "makespan ms (mean ± sd)",
                "timeouts",
                "retransmits",
                "dup+stale dropped",
                "quarantines",
            ],
            &rows
        )
    );
    Ok(())
}

/// `dws tree`
pub fn tree(rest: &[String]) -> Result<(), String> {
    let flags = parse(rest, &["tree", "limit", "gen-rounds"], &[])?;
    let w = workload_flag(&flags, "t3sim-l")?.with_gen_rounds(flags.parse_or("gen-rounds", 1u32)?);
    let limit: u64 = flags.parse_or("limit", 60_000_000u64)?;
    eprintln!("measuring {}...", w.name);
    let shape = dws_uts::measure_shape(&w, limit)
        .ok_or_else(|| format!("tree exceeds --limit {limit} nodes"))?;
    println!("preset          : {}", w.name);
    println!("spec            : {:?}", w.spec);
    println!("nodes           : {}", shape.nodes);
    println!("max depth       : {}", shape.max_depth);
    println!("root subtrees   : {}", shape.root_subtree_sizes.len());
    println!(
        "largest subtree : {} nodes ({:.1}% of tree)",
        shape.root_subtree_sizes.first().copied().unwrap_or(0),
        100.0 * shape.largest_subtree_fraction()
    );
    println!("subtree gini    : {:.3}", shape.subtree_gini());
    println!("peak frontier   : {} nodes", shape.peak_frontier);
    println!(
        "feedable ranks  : ~{} (at 2 chunks of 20 per rank)",
        shape.feedable_ranks(40)
    );
    Ok(())
}

/// `dws topo`
pub fn topo(rest: &[String]) -> Result<(), String> {
    let flags = parse(rest, &["nodes", "mapping", "rank"], &[])?;
    let n_nodes: u32 = flags.parse_or("nodes", 1024)?;
    let mapping = parse_mapping(flags.get("mapping").unwrap_or("1/N"))?;
    let job = Job::place(
        dws_topology::Machine::k_computer(),
        n_nodes,
        dws_topology::AllocationPolicy::CompactRectangle,
        mapping,
        LatencyParams::default(),
    );
    let me: u32 = flags.parse_or("rank", 0u32)?;
    if me >= job.n_ranks() {
        return Err(format!(
            "--rank {me} out of range ({} ranks)",
            job.n_ranks()
        ));
    }
    println!(
        "job: {} nodes, {} ranks ({}), machine {:?} cubes",
        n_nodes,
        job.n_ranks(),
        mapping.label(),
        job.machine().dims()
    );
    println!("rank {me} at {:?}", job.coord_of(me));
    let mut dist = Summary::new();
    let mut lat = Summary::new();
    for j in 0..job.n_ranks() {
        if j == me {
            continue;
        }
        dist.add(job.euclidean(me, j));
        lat.add(job.latency_ns(me, j, 16) as f64 / 1000.0);
    }
    println!(
        "distance e({me},*) : mean {:.2}, max {:.2}",
        dist.mean(),
        dist.max()
    );
    println!(
        "latency  (us)     : mean {:.2}, min {:.2}, max {:.2}",
        lat.mean(),
        lat.min(),
        lat.max()
    );
    // Nearest and farthest ranks.
    let mut by_dist: Vec<(u32, f64)> = (0..job.n_ranks())
        .filter(|&j| j != me)
        .map(|j| (j, job.euclidean(me, j)))
        .collect();
    by_dist.sort_by(|a, b| a.1.total_cmp(&b.1));
    let near: Vec<String> = by_dist
        .iter()
        .take(5)
        .map(|(j, d)| format!("{j}({d:.1})"))
        .collect();
    let far: Vec<String> = by_dist
        .iter()
        .rev()
        .take(5)
        .map(|(j, d)| format!("{j}({d:.1})"))
        .collect();
    println!("nearest ranks     : {}", near.join(" "));
    println!("farthest ranks    : {}", far.join(" "));
    Ok(())
}

/// Render the engine self-profile of a run: per-phase wall time,
/// throughput, allocation rate, peak RSS.
fn print_profile(r: &ExperimentResult) {
    let p = r.profile.as_ref().expect("print_profile needs a profile");
    println!();
    println!(
        "profile       : {:.1} ms wall, {} events, {:.0} events/s",
        p.wall_ns as f64 / 1e6,
        p.events,
        p.events_per_sec()
    );
    if p.allocs > 0 {
        println!(
            "allocations   : {} total, {:.2} per event",
            p.allocs,
            p.allocs_per_event()
        );
    } else {
        println!("allocations   : unavailable (counting allocator not installed)");
    }
    if p.peak_rss_bytes > 0 {
        println!(
            "peak RSS      : {:.1} MiB",
            p.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    let rows: Vec<Vec<String>> = p
        .phases
        .iter()
        .map(|(name, calls, total_ns)| {
            let per_call = if *calls > 0 {
                *total_ns as f64 / *calls as f64
            } else {
                0.0
            };
            vec![
                name.clone(),
                calls.to_string(),
                format!("{:.2}", *total_ns as f64 / 1e6),
                format!("{per_call:.0}"),
                format!("{:.1}", 100.0 * *total_ns as f64 / p.wall_ns.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["phase", "calls", "total ms", "ns/call", "% of wall"],
            &rows
        )
    );
    if !p.shards.is_empty() {
        let rows: Vec<Vec<String>> = p
            .shards
            .iter()
            .map(|(shard, ranks, events, windows, busy_ns, wait_ns)| {
                let turnaround = busy_ns + wait_ns;
                vec![
                    shard.to_string(),
                    ranks.to_string(),
                    events.to_string(),
                    windows.to_string(),
                    format!("{:.2}", *busy_ns as f64 / 1e6),
                    format!("{:.2}", *wait_ns as f64 / 1e6),
                    format!("{:.1}", 100.0 * *busy_ns as f64 / turnaround.max(1) as f64),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["shard", "ranks", "events", "windows", "busy ms", "wait ms", "% busy"],
                &rows
            )
        );
    }
}

/// `dws profile` — run one experiment with the engine self-profiler on
/// and report where the harness itself spends host time.
pub fn profile(rest: &[String]) -> Result<(), String> {
    let valued: Vec<&str> = CONFIG_FLAGS
        .iter()
        .chain(["json"].iter())
        .copied()
        .collect();
    let flags = parse(rest, &valued, &["spans", "fault-tolerant", "no-trace"])?;
    let mut cfg = config_from(&flags)?;
    cfg.profile = true;
    // `--spans` turns the causal tracer on so the trace_record phase
    // measures real recording cost (off, the phase stays near zero).
    cfg.collect_spans = flags.has("spans");
    eprintln!(
        "profiling {} on {} nodes ({} ranks), tree {}...",
        cfg.label(),
        cfg.n_nodes,
        cfg.mapping.rank_count(cfg.n_nodes),
        cfg.workload.name
    );
    let r = run_experiment(&cfg);
    println!("configuration : {}", r.label);
    println!("fingerprint   : {}", r.fingerprint);
    println!("makespan      : {}", r.makespan);
    println!("speedup       : {:.1}", r.perf.speedup());
    print_profile(&r);
    if let Some(path) = flags.get("json") {
        write_json(path, &r.json_report())?;
        println!("[run report written to {path}]");
    }
    Ok(())
}

/// One side of a `dws diff`: its comparable metrics, its config
/// fingerprint when known, and a human label.
struct DiffSide {
    metrics: Vec<BenchMetric>,
    fingerprint: Option<String>,
    label: String,
}

/// Load a diffable artifact. `spec` is a path to a run report
/// (`dws run --json`), a single bench record, or a trajectory file —
/// optionally suffixed `@N` to pick entry `N` of a trajectory
/// (negative counts from the end; a bare trajectory means `@-1`).
fn load_diff_side(spec: &str) -> Result<DiffSide, String> {
    let (path, index) = match spec.rsplit_once('@') {
        Some((p, idx)) if idx.parse::<i64>().is_ok() && !p.is_empty() => {
            (p, Some(idx.parse::<i64>().expect("checked")))
        }
        _ => (spec, None),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let from_record = |rec: &BenchRecord, label: String| DiffSide {
        metrics: rec.metrics.clone(),
        fingerprint: Some(rec.fingerprint.clone()),
        label,
    };
    let pick = |records: &[BenchRecord], idx: i64| -> Result<DiffSide, String> {
        let n = records.len() as i64;
        let at = if idx < 0 { n + idx } else { idx };
        if at < 0 || at >= n {
            return Err(format!(
                "{spec}: index {idx} out of range (trajectory has {n} entries)"
            ));
        }
        let rec = &records[at as usize];
        Ok(from_record(
            rec,
            format!("{path}@{at} ({}, {})", rec.bench, rec.git_rev),
        ))
    };
    if let Some(idx) = index {
        return pick(&perflab::read_trajectory(path)?, idx);
    }
    if let Ok(doc) = dws_metrics::export::parse(text.trim()) {
        if perflab::is_run_report(&doc) {
            let label = doc
                .get("label")
                .and_then(|v| v.as_str())
                .unwrap_or("run report");
            return Ok(DiffSide {
                metrics: perflab::metrics_from_run_report(&doc),
                fingerprint: perflab::fingerprint_of_doc(&doc),
                label: format!("{path} ({label})"),
            });
        }
        if let Ok(rec) = BenchRecord::from_json(&doc) {
            let label = format!("{path} ({}, {})", rec.bench, rec.git_rev);
            return Ok(from_record(&rec, label));
        }
    }
    // Multi-line trajectory without an index: compare its latest entry.
    pick(
        &perflab::parse_trajectory(&text).map_err(|e| format!("{path}: {e}"))?,
        -1,
    )
}

/// Compact number formatting for the diff table.
fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e7 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// `dws diff <a> <b>` — per-metric deltas between two runs with a
/// noise-aware verdict. Exits 2 when any metric regresses, so CI can
/// gate on it.
pub fn diff(rest: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            flag_args.push(a.clone());
            if a == "--tol" {
                if let Some(v) = it.next() {
                    flag_args.push(v.clone());
                }
            }
        } else {
            paths.push(a);
        }
    }
    let flags = parse(&flag_args, &["tol"], &[])?;
    let tol: f64 = flags.parse_or("tol", 0.02)?;
    if !(0.0..10.0).contains(&tol) {
        return Err(format!("--tol {tol} outside [0, 10)"));
    }
    let [a_spec, b_spec] = paths[..] else {
        return Err("diff needs exactly two artifacts: dws diff <a> <b> [--tol f]".into());
    };
    let a = load_diff_side(a_spec)?;
    let b = load_diff_side(b_spec)?;
    println!("A: {}", a.label);
    println!("B: {}", b.label);
    if let (Some(fa), Some(fb)) = (&a.fingerprint, &b.fingerprint) {
        if fa != fb {
            println!(
                "note: config fingerprints differ ({fa} vs {fb}) — deltas may \
                 reflect configuration changes, not code changes"
            );
        }
    }
    let deltas = perflab::compare(&a.metrics, &b.metrics, tol);
    if deltas.is_empty() {
        return Err("the two artifacts share no metric names — nothing to compare".into());
    }
    let skipped = a.metrics.len().max(b.metrics.len()) - deltas.len();
    if skipped > 0 {
        println!("({skipped} metrics present on only one side were skipped)");
    }
    let rows: Vec<Vec<String>> = deltas
        .iter()
        .map(|d: &MetricDelta| {
            vec![
                d.name.clone(),
                fmt_num(d.a),
                fmt_num(d.b),
                format!("{:+.2}%", 100.0 * d.rel),
                fmt_num(d.threshold),
                d.verdict.label().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["metric", "A", "B", "delta", "threshold", "verdict"],
            &rows
        )
    );
    let regressions = deltas
        .iter()
        .filter(|d| d.verdict == Verdict::Regression)
        .count();
    let improvements = deltas
        .iter()
        .filter(|d| d.verdict == Verdict::Improvement)
        .count();
    let overall = if regressions > 0 {
        "REGRESSION"
    } else if improvements > 0 {
        "improvement"
    } else {
        "within-noise"
    };
    println!(
        "verdict: {overall} ({regressions} regressed, {improvements} improved, \
         {} within noise, tol {tol})",
        deltas.len() - regressions - improvements
    );
    if regressions > 0 {
        // Exit 2 distinguishes "a metric regressed" from usage errors
        // (exit 1), so CI can gate precisely.
        std::process::exit(2);
    }
    Ok(())
}

/// `dws top <snapshots.jsonl>` — replay a snapshot stream (or the
/// snapshot line of a flight dump) as the `--live` terminal view, then
/// summarize it. A run report (`dws run --json`) is accepted too: its
/// histogram quantiles are summarized instead of a replay. Errors when
/// the file holds neither, so CI can use it as a stream validator.
pub fn top(rest: &[String]) -> Result<(), String> {
    let (path, flag_rest) = match rest.split_first() {
        Some((p, r)) if !p.starts_with("--") => (p.as_str(), r),
        _ => return Err("usage: dws top <snapshots.jsonl | report.json> [--tail <n>]".into()),
    };
    let flags = parse(flag_rest, &["tail"], &[])?;
    let tail: usize = flags.parse_or("tail", usize::MAX)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut snaps: Vec<dws_metrics::Snapshot> = Vec::new();
    let mut histograms: Option<JsonValue> = None;
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match dws_metrics::export::parse(line)
            .ok()
            .and_then(|doc| dws_metrics::Snapshot::from_json(&doc).ok())
        {
            Some(snap) => snaps.push(snap),
            // Flight dumps interleave header and event lines with the
            // snapshot; anything non-snapshot is skipped, not fatal —
            // except a run report, whose histograms we summarize.
            None => match dws_metrics::export::parse(line)
                .ok()
                .and_then(|doc| doc.get("histograms").cloned())
            {
                Some(h) => histograms = Some(h),
                None => skipped += 1,
            },
        }
    }
    if snaps.is_empty() && histograms.is_none() {
        return Err(format!(
            "{path}: no well-formed snapshot lines (schema {}; {skipped} other lines)",
            dws_metrics::SNAPSHOT_SCHEMA_VERSION
        ));
    }
    if !snaps.is_empty() {
        let start = snaps.len().saturating_sub(tail);
        for snap in &snaps[start..] {
            println!("{}", snap.progress_line());
        }
        let last = snaps.last().expect("non-empty");
        println!(
            "---\n{} snapshots ({} other lines) | wall {:.1}s | final: {} events, {} ranks busy (peak {}), \
             {} steals ok / {} empty",
            snaps.len(),
            skipped,
            last.wall_ms as f64 / 1e3,
            last.events,
            last.active_workers,
            last.w_max,
            last.steals_ok,
            last.steals_empty,
        );
    }
    if let Some(h) = &histograms {
        print_histogram_quantiles(h);
    }
    Ok(())
}

/// Print the quantile summary (p50/p95/p99) of every log-bucketed
/// histogram in a run report's `histograms` section.
fn print_histogram_quantiles(histograms: &JsonValue) {
    let JsonValue::Obj(pairs) = histograms else {
        return;
    };
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .filter_map(|(name, hist)| {
            let q = |k: &str| hist.get(k).and_then(|v| v.as_u64());
            Some(vec![
                name.clone(),
                q("count")?.to_string(),
                q("p50")?.to_string(),
                q("p95")?.to_string(),
                q("p99")?.to_string(),
                q("max")?.to_string(),
            ])
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    println!(
        "{}",
        render_table(&["histogram", "count", "p50", "p95", "p99", "max"], &rows)
    );
}

/// `dws why` — explain where a run's makespan went. With a positional
/// run-report path (from `dws run --json`), render its blame section;
/// with configuration flags, run the experiment with the causal tracer
/// on and explain it directly. Exits 2 when the attribution-sum
/// invariant fails, so CI can gate on it.
pub fn why(rest: &[String]) -> Result<(), String> {
    if let Some((p, flag_rest)) = rest.split_first() {
        if !p.starts_with("--") {
            // Report mode: a positional path, no further flags.
            parse(flag_rest, &[], &[])?;
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let doc = dws_metrics::export::parse(text.trim()).map_err(|e| format!("{p}: {e}"))?;
            return render_blame(&doc);
        }
    }
    // Run mode: the same configuration flags as `dws run`.
    let valued: Vec<&str> = CONFIG_FLAGS
        .iter()
        .chain(["json", "trace", "links"].iter())
        .copied()
        .collect();
    let flags = parse(rest, &valued, &["fault-tolerant"])?;
    let mut cfg = config_from(&flags)?;
    // Blame needs both the causal spans and the activity trace; the
    // analyzer is read-only, so turning them on cannot change the
    // simulated schedule.
    cfg.collect_spans = true;
    cfg.collect_trace = true;
    eprintln!(
        "explaining {} on {} nodes ({} ranks), tree {}...",
        cfg.label(),
        cfg.n_nodes,
        cfg.mapping.rank_count(cfg.n_nodes),
        cfg.workload.name
    );
    let r = run_experiment(&cfg);
    write_observability(&flags, &r)?;
    render_blame(&r.json_report())
}

/// Verify and render a report's blame section. An attribution-sum
/// violation exits 2 (distinct from usage errors at 1) so CI can gate
/// on the exactness invariant.
fn render_blame(doc: &JsonValue) -> Result<(), String> {
    if let Err(e) = dws_metrics::blame::verify_report(doc) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let text = dws_metrics::blame::render_report(doc)?;
    print!("{text}");
    Ok(())
}

/// `dws shmem`
pub fn shmem(rest: &[String]) -> Result<(), String> {
    let flags = parse(rest, &["tree", "workers", "gen-rounds"], &[])?;
    let w = workload_flag(&flags, "t3sim-l")?.with_gen_rounds(flags.parse_or("gen-rounds", 1u32)?);
    let workers: usize = flags.parse_or("workers", 4usize)?;
    eprintln!("searching {} with {workers} threads...", w.name);
    let result = dws_shmem::parallel_search(&w, workers);
    println!("nodes      : {}", result.stats.nodes);
    println!("leaves     : {}", result.stats.leaves);
    println!("max depth  : {}", result.stats.max_depth);
    println!("elapsed    : {:?}", result.elapsed);
    let rows: Vec<Vec<String>> = result
        .workers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                i.to_string(),
                s.nodes.to_string(),
                s.steals.to_string(),
                s.failed_steals.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["worker", "nodes", "steals", "failed"], &rows)
    );
    Ok(())
}
