//! `dws` — the command-line interface to the reproduction.
//!
//! ```text
//! dws run    --tree t3wl --nodes 256 --victim tofu --steal half [--lifestory]
//! dws trace  --tree t3sim-l --ranks 64 --out trace.json --json report.json
//! dws sweep  --tree t3wl --ranks 64,128,256 --seeds 3
//! dws chaos  --tree t3sim-l --nodes 64 --rates 0,0.01,0.05
//! dws tree   --tree t3sim-l
//! dws topo   --nodes 1024 [--rank 0]
//! dws shmem  --tree t3sim-l --workers 8
//! dws top    snapshots.jsonl
//! dws why    report.json
//! ```

mod args;
mod commands;

/// Counting allocator so `dws profile` can report allocations-per-event.
/// Delegates straight to the system allocator; the only overhead is one
/// relaxed atomic increment per allocation.
#[global_allocator]
static ALLOC: dws_simnet::CountingAlloc = dws_simnet::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    let result = match cmd {
        "run" => commands::run(rest),
        "trace" => commands::trace(rest),
        "sweep" => commands::sweep(rest),
        "chaos" => commands::chaos(rest),
        "tree" => commands::tree(rest),
        "topo" | "topology" => commands::topo(rest),
        "shmem" => commands::shmem(rest),
        "profile" => commands::profile(rest),
        "diff" => commands::diff(rest),
        "top" => commands::top(rest),
        "why" => commands::why(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() -> &'static str {
    "dws — distributed work stealing with latency-aware victim selection

commands:
  run     run one simulated experiment and report the paper's metrics
          --tree <preset>      workload (default t3wl; see `dws tree`)
          --nodes <n>          physical nodes (default 128)
          --mapping <m>        1/N | 8RR | 8G | <k>RR | <k>G (default 1/N)
          --victim <v>         reference | rand | tofu | latskew | hier
          --alpha <f>          skew exponent (default 1.0)
          --local-tries <n>    hier: local burst length (default 4)
          --steal <s>          one | half (default one)
          --lifelines <n>      enable lifelines after n failed steals
          --seed <n>           master seed
          --chunk <n>          chunk size (default 20)
          --poll <n>           poll interval in node expansions
          --gen-rounds <n>     SHA rounds per node creation (default 1)
          --jitter <f>         latency jitter fraction
          --skew-ns <n>        max per-rank clock skew
          --threads <n>        simulation worker threads (default 1);
                               results are bit-identical for every n
          --lifestory          print the per-rank activity chart
          --csv <path>         write per-rank statistics as CSV
          --fault-drop/-dup/-spike <p> message fault probabilities
          --fault-spike-min-ns / --fault-spike-cap-ns   spike tail shape
          --fault-crash <r@ns,..>       crash rank r at time ns
          --fault-brownout <r@a:b,..>   NIC brownout window on rank r
          --fault-slowdown <r@a:b:f,..> slow rank r by factor f in [a,b)
          --fault-tolerant     force the failure-tolerant protocol on
          --fault-timeout-mult <n>      steal-timeout RTT multiplier
          --ranks <n>          rank count (converted via the mapping's
                               ranks per node; overrides --nodes)
          --trace <path>       write a Chrome trace-event file (Perfetto)
          --json <path>        write the machine-readable run report
          --links <path>       write the per-link Tofu load matrix
          --live               print a live progress line per snapshot
          --snapshot <path>    stream periodic JSONL snapshots to a file
          --snapshot-every <d> simulated-time cadence (500ms, 2s, ... ;
                               default 1ms of simulated time)
          --snapshot-events <n> event-count cadence instead
          --flight-dump <path> crash flight recorder: dump the last
                               --flight-ring events per shard (default
                               1024) on panic, budget overrun, or SIGTERM
          --wall-budget <d>    abort (with dump) past this wall time
          --rss-budget-mb <n>  abort (with dump) past this peak RSS
  trace   run once with the causal steal-protocol tracer on
          (accepts the same configuration flags as run)
          --out <path>         Chrome trace output (default trace.json)
          --json / --links     as on run
  sweep   sweep rank counts x strategies, multiple seeds, mean +/- sd
          --tree --seeds <k> --ranks <a,b,c> --mapping as above
  chaos   sweep message-fault rates x victim policies
          --tree --nodes --steal --seeds <k> --rates <p,p,..>
          --dup-frac <f> --spike-frac <f>  dup/spike rate as a
                                           fraction of the drop rate
  tree    measure a workload preset (size, depth, imbalance, frontier)
          --tree <preset> [--limit <nodes>]
  topo    inspect a placed job's distances and latencies
          --nodes <n> [--mapping <m>] [--rank <r>]
  shmem   run the threaded shared-memory executor
          --tree <preset> --workers <n>
  profile run once with the engine self-profiler on: per-phase wall
          time (dispatch, fault_eval, victim_draw, trace_record),
          events/sec, allocations per event, peak RSS, and — when
          --threads > 1 — a per-shard table (ranks, events, windows,
          busy vs barrier-wait time)
          (accepts the same configuration flags as run)
          --spans              also enable the causal tracer so the
                               trace_record phase measures real cost
          --json <path>        write the run report (includes profile)
  diff    compare two runs or bench records metric by metric
          dws diff <a> <b> [--tol <f>]
          each side is a run report (dws run --json), a bench record,
          or a trajectory file; <path>@N picks trajectory entry N
          (negative counts from the end; bare trajectory means @-1)
          verdict per metric: regression / improvement / within-noise,
          significant iff |delta| > max(ci95_a + ci95_b, tol*|a|)
          exit code 2 if any metric regressed (for CI gating)
  top     replay a snapshot stream as the --live terminal view
          dws top <snapshots.jsonl> [--tail <n>]
          errors if the file holds no well-formed snapshot line, so CI
          can use it to validate a stream or flight dump; a run report
          (dws run --json) prints its histogram quantiles instead
  why     explain where a run's makespan went: critical-path makespan
          attribution (components sum to the makespan exactly), the
          per-rank idle waterfall, top critical-path segments, and a
          Coz-style what-if table of predicted speedups
          dws why <report.json>      render an existing run report
          dws why --tree ... [run flags]  run + explain in one step
          exit code 2 if the attribution-sum invariant fails (CI gate)
  help    this text"
}
