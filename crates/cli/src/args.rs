//! Minimal flag parser shared by the subcommands.
//!
//! Deliberately dependency-free: flags are `--name value` or boolean
//! `--name`, every unknown flag is an error, and each subcommand
//! declares which flags it understands.

use std::collections::BTreeMap;

/// Parsed flags of one invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    bools: Vec<String>,
}

/// Parse `args` against the allowed flag lists. `valued` flags take one
/// argument, `boolean` flags take none.
pub fn parse(args: &[String], valued: &[&str], boolean: &[&str]) -> Result<Flags, String> {
    let mut out = Flags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {a:?}"));
        };
        if boolean.contains(&name) {
            out.bools.push(name.to_string());
        } else if valued.contains(&name) {
            let v = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            out.values.insert(name.to_string(), v.clone());
        } else {
            return Err(format!(
                "unknown flag --{name} (valid: {})",
                valued
                    .iter()
                    .chain(boolean.iter())
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    Ok(out)
}

impl Flags {
    /// A valued flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A boolean flag.
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    /// A parsed valued flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// A parsed optional flag.
    pub fn parse_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

/// Parse a duration with a unit suffix (`ns`, `us`, `ms`, `s`) into
/// nanoseconds; a bare number is nanoseconds. Used for both simulated
/// cadences (`--snapshot-every 500ms`) and wall budgets
/// (`--wall-budget 30s`).
pub fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (num, mult) = if let Some(x) = t.strip_suffix("ns") {
        (x, 1u64)
    } else if let Some(x) = t.strip_suffix("us") {
        (x, 1_000)
    } else if let Some(x) = t.strip_suffix("ms") {
        (x, 1_000_000)
    } else if let Some(x) = t.strip_suffix('s') {
        (x, 1_000_000_000)
    } else {
        (t, 1)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?} (expected e.g. 500ms, 2s, 250us)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad duration {s:?} (must be non-negative)"));
    }
    Ok((v * mult as f64) as u64)
}

/// Parse a mapping name (`1/N`, `8RR`, `8G`, `<k>RR`, `<k>G`).
pub fn parse_mapping(s: &str) -> Result<dws_topology::RankMapping, String> {
    use dws_topology::RankMapping;
    if s.eq_ignore_ascii_case("1/n") || s == "1" {
        return Ok(RankMapping::OneToOne);
    }
    let lower = s.to_ascii_lowercase();
    if let Some(k) = lower.strip_suffix("rr") {
        let ppn: u32 = k.parse().map_err(|_| format!("bad mapping {s:?}"))?;
        return Ok(RankMapping::RoundRobin { ppn });
    }
    if let Some(k) = lower.strip_suffix('g') {
        let ppn: u32 = k.parse().map_err(|_| format!("bad mapping {s:?}"))?;
        return Ok(RankMapping::Grouped { ppn });
    }
    Err(format!("bad mapping {s:?} (expected 1/N, 8RR, 8G, ...)"))
}

/// Parse a victim-policy name with an optional `--alpha`/`--local-tries`.
/// An `adaptive-` prefix (or bare `adaptive`, which defaults to the
/// Tofu base) wraps the base policy in the failure-aware health
/// overlay.
pub fn parse_victim(
    name: &str,
    alpha: f64,
    local_tries: u32,
) -> Result<dws_core::VictimPolicy, String> {
    use dws_core::{BaseVictimPolicy, VictimPolicy};
    let lower = name.to_ascii_lowercase();
    if let Some(base) = lower.strip_prefix("adaptive") {
        let base = match base.strip_prefix('-').unwrap_or(base) {
            // Bare `adaptive`: the paper's best static policy, learned.
            "" | "tofu" | "skew" | "distance" => BaseVictimPolicy::DistanceSkewed { alpha },
            "reference" | "roundrobin" | "rr" => BaseVictimPolicy::RoundRobin,
            "rand" | "uniform" => BaseVictimPolicy::Uniform,
            "latskew" | "latency" => BaseVictimPolicy::LatencySkewed { alpha },
            "hier" | "hierarchical" => BaseVictimPolicy::Hierarchical { local_tries },
            other => return Err(format!("unknown adaptive base policy {other:?}")),
        };
        return Ok(VictimPolicy::Adaptive { base });
    }
    Ok(match lower.as_str() {
        "reference" | "roundrobin" | "rr" => VictimPolicy::RoundRobin,
        "rand" | "uniform" => VictimPolicy::Uniform,
        "tofu" | "skew" | "distance" => VictimPolicy::DistanceSkewed { alpha },
        "latskew" | "latency" => VictimPolicy::LatencySkewed { alpha },
        "hier" | "hierarchical" => VictimPolicy::Hierarchical { local_tries },
        other => return Err(format!("unknown victim policy {other:?}")),
    })
}

/// Parse a steal-amount name.
pub fn parse_steal(name: &str) -> Result<dws_core::StealAmount, String> {
    use dws_core::StealAmount;
    Ok(match name.to_ascii_lowercase().as_str() {
        "one" | "onechunk" | "1" => StealAmount::OneChunk,
        "half" => StealAmount::Half,
        other => return Err(format!("unknown steal amount {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_valued_and_boolean_flags() {
        let f = parse(
            &args(&["--tree", "t3wl", "--full", "--nodes", "128"]),
            &["tree", "nodes"],
            &["full"],
        )
        .expect("valid");
        assert_eq!(f.get("tree"), Some("t3wl"));
        assert!(f.has("full"));
        assert_eq!(f.parse_or::<u32>("nodes", 0).expect("number"), 128);
        assert_eq!(f.parse_or::<u32>("missing", 7).expect("default"), 7);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse(&args(&["--bogus"]), &["tree"], &[]).is_err());
        assert!(parse(&args(&["--tree"]), &["tree"], &[]).is_err());
        assert!(parse(&args(&["positional"]), &["tree"], &[]).is_err());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration_ns("500ms").expect("ok"), 500_000_000);
        assert_eq!(parse_duration_ns("2s").expect("ok"), 2_000_000_000);
        assert_eq!(parse_duration_ns("250us").expect("ok"), 250_000);
        assert_eq!(parse_duration_ns("40ns").expect("ok"), 40);
        assert_eq!(parse_duration_ns("1234").expect("ok"), 1234);
        assert_eq!(parse_duration_ns("0.5ms").expect("ok"), 500_000);
        assert!(parse_duration_ns("fast").is_err());
        assert!(parse_duration_ns("-1s").is_err());
    }

    #[test]
    fn mapping_names() {
        use dws_topology::RankMapping;
        assert_eq!(parse_mapping("1/N").expect("ok"), RankMapping::OneToOne);
        assert_eq!(
            parse_mapping("8RR").expect("ok"),
            RankMapping::RoundRobin { ppn: 8 }
        );
        assert_eq!(
            parse_mapping("4g").expect("ok"),
            RankMapping::Grouped { ppn: 4 }
        );
        assert!(parse_mapping("wat").is_err());
    }

    #[test]
    fn victim_names() {
        assert_eq!(parse_victim("tofu", 2.0, 4).expect("ok").label(), "Tofu");
        assert_eq!(
            parse_victim("reference", 1.0, 4).expect("ok").label(),
            "Reference"
        );
        assert!(parse_victim("nope", 1.0, 4).is_err());
    }

    #[test]
    fn adaptive_victim_names() {
        assert_eq!(
            parse_victim("adaptive", 1.0, 4).expect("ok").label(),
            "AdaptTofu"
        );
        assert_eq!(
            parse_victim("adaptive-rand", 1.0, 4).expect("ok").label(),
            "AdaptRand"
        );
        assert_eq!(
            parse_victim("adaptive-reference", 1.0, 4)
                .expect("ok")
                .label(),
            "AdaptRef"
        );
        assert!(parse_victim("adaptive-nope", 1.0, 4).is_err());
    }

    #[test]
    fn steal_names() {
        use dws_core::StealAmount;
        assert_eq!(parse_steal("half").expect("ok"), StealAmount::Half);
        assert_eq!(parse_steal("one").expect("ok"), StealAmount::OneChunk);
        assert!(parse_steal("all").is_err());
    }
}
