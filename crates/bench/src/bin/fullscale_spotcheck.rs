//! Full-scale spot check: the paper's literal rank counts for the three
//! headline configurations. Slow (minutes per run) — this is the
//! deep-starvation regime where the strategy gaps are largest.
//!
//! Not part of the default suite; run explicitly:
//! `cargo run --release -p dws-bench --bin fullscale_spotcheck`

use dws_bench::{emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks: &[u32] = if args.full {
        &[2048, 4096, 8192]
    } else {
        &[1024, 2048, 4096]
    };
    let mut rows = Vec::new();
    for &r in ranks {
        for name in ["Reference", "Rand", "Tofu Half"] {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), r)
                .with_victim(victim)
                .with_steal(steal);
            cfg.collect_trace = false;
            let res = run_logged(&cfg);
            let t = res.stats.total();
            rows.push(vec![
                name.to_string(),
                r.to_string(),
                f(res.perf.speedup(), 1),
                f(res.stats.avg_session_ns() / 1000.0, 0),
                t.steals_failed.to_string(),
            ]);
        }
    }
    emit(
        &args,
        "fullscale_spotcheck",
        "Paper-scale rank counts, headline strategies (T3WL, 1/N)",
        &[
            "strategy",
            "ranks",
            "speedup",
            "session_us",
            "failed_steals",
        ],
        &rows,
        None,
    );
}
