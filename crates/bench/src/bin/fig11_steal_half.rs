//! Figure 11: speedup of the half-stealing variants (all 1/N). The
//! paper's headline: skewed selection + steal-half restores scaling and
//! beats the original by ~3x at its largest scale.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for name in [
        "Reference",
        "Reference Half",
        "Tofu",
        "Rand Half",
        "Tofu Half",
    ] {
        let (victim, steal) = strategy(name);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                format!("{name} 1/N"),
                r.n_ranks.to_string(),
                f(r.perf.speedup(), 1),
            ]);
            pts.push((r.n_ranks as f64, r.perf.speedup()));
        }
        series.push((format!("{name} 1/N"), pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig11",
        "Speedup of half-stealing variants (1/N)",
        &["config", "ranks", "speedup"],
        &rows,
        Some(chart("speedup vs ranks", &refs)),
    );
}
