//! Ablation: per-node NIC contention on/off, across rank mappings.
//! With the shared-NIC model disabled, packing 8 ranks per node looks
//! free (the 8-rank job is physically smaller); with it enabled, the
//! paper's observation that one rank per node wins at scale emerges.

use dws_bench::{emit, f, run_logged, strategy, FigArgs, MAPPINGS};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 512 };
    let mut rows = Vec::new();
    for (nic, occupancy) in [("on", 2_000u64), ("off", 0)] {
        for mapping in MAPPINGS {
            let (victim, steal) = strategy("Rand");
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(*mapping);
            cfg.nic_occupancy_ns = occupancy;
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                nic.to_string(),
                mapping.label(),
                r.n_ranks.to_string(),
                f(r.perf.speedup(), 1),
            ]);
        }
    }
    emit(
        &args,
        "ablation_nic",
        "Shared-NIC contention vs rank mapping (Rand)",
        &["nic", "mapping", "ranks", "speedup"],
        &rows,
        None,
    );
}
