//! Ablation: flat network. With every pair of nodes equidistant, the
//! distance-skewed selection degenerates to uniform random, so the
//! Tofu-vs-Rand gap must vanish — a consistency check that the gap
//! observed on the Tofu topology really comes from latency structure.

use dws_bench::{emit, f, run_logged, strategy, FigArgs};
use dws_topology::LatencyParams;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    for (net, latency) in [
        ("tofu", LatencyParams::default()),
        ("flat", LatencyParams::flat(8_000)),
    ] {
        for name in ["Rand", "Tofu"] {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.latency = latency.clone();
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                net.to_string(),
                name.to_string(),
                f(r.perf.speedup(), 1),
                f(r.stats.avg_session_ns() / 1000.0, 1),
            ]);
        }
    }
    emit(
        &args,
        "ablation_flat_network",
        "Flat vs Tofu network: skew only helps when latency has structure",
        &["network", "strategy", "speedup", "avg_session_us"],
        &rows,
        None,
    );
}
