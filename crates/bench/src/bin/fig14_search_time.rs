//! Figure 14: average per-rank search time (total time waiting for
//! steal answers) — the original vs skewed-selection-with-half-steal
//! across allocations.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs, MAPPINGS};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut configs: Vec<(String, &str, RankMapping)> =
        vec![("Reference 1/N".into(), "Reference", RankMapping::OneToOne)];
    for m in MAPPINGS {
        configs.push((format!("Tofu Half {}", m.label()), "Tofu Half", *m));
    }
    for (label, strat, mapping) in configs {
        let (victim, steal) = strategy(strat);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            let secs = r.stats.avg_search_ns() / 1e9;
            rows.push(vec![label.clone(), r.n_ranks.to_string(), f(secs * 1e3, 3)]);
            pts.push((r.n_ranks as f64, secs * 1e3));
        }
        series.push((label, pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig14",
        "Average per-rank search time (ms)",
        &["config", "ranks", "avg_search_ms"],
        &rows,
        Some(chart("search time (ms) vs ranks", &refs)),
    );
}
