//! Figure 16: runtime improvement of Rand-Half and Tofu-Half over
//! Reference-Half as per-node work granularity grows (SHA rounds per
//! node creation). As each steal carries more compute time, the
//! latency-awareness advantage shrinks.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let ranks = args.flagship_ranks();
    let rounds = [1u32, 2, 4, 8, 16, 24];
    let mut rows = Vec::new();
    let mut rand_pts = Vec::new();
    let mut tofu_pts = Vec::new();
    for &g in &rounds {
        let tree = args.large_tree().with_gen_rounds(g);
        let runtime = |name: &str| {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.collect_trace = false;
            run_logged(&cfg).makespan.ns() as f64
        };
        let base = runtime("Reference Half");
        let rand = runtime("Rand Half");
        let tofu = runtime("Tofu Half");
        let rand_improv = 100.0 * (base - rand) / base;
        let tofu_improv = 100.0 * (base - tofu) / base;
        rows.push(vec![g.to_string(), f(rand_improv, 2), f(tofu_improv, 2)]);
        rand_pts.push((g as f64, rand_improv));
        tofu_pts.push((g as f64, tofu_improv));
    }
    emit(
        &args,
        "fig16",
        "Runtime improvement over Reference Half vs work granularity",
        &["sha_rounds", "rand_half_improv_%", "tofu_half_improv_%"],
        &rows,
        Some(chart(
            "improvement (%) vs SHA rounds",
            &[("Rand Half", rand_pts), ("Tofu Half", tofu_pts)],
        )),
    );
}
