//! Figure 2: efficiency of the reference implementation, 8–128 ranks,
//! under the three process allocations (1/N, 8RR, 8G), on T3XXL.

use dws_bench::{chart, emit, f, run_logged, FigArgs, MAPPINGS};

fn main() {
    let args = FigArgs::parse();
    let tree = args.small_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for mapping in MAPPINGS {
        let mut pts = Vec::new();
        for &ranks in &args.small_ranks() {
            let n_nodes = ranks / mapping.ppn();
            if n_nodes == 0 {
                continue;
            }
            let mut cfg = args.config(tree.clone(), n_nodes).with_mapping(*mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                format!("Reference {}", mapping.label()),
                r.n_ranks.to_string(),
                f(r.perf.efficiency(), 4),
                f(r.makespan.as_secs_f64(), 4),
            ]);
            pts.push((r.n_ranks as f64, r.perf.efficiency()));
        }
        series.push((format!("Reference {}", mapping.label()), pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig02",
        "Efficiency of the reference implementation, 8-128 ranks",
        &["config", "ranks", "efficiency", "makespan_s"],
        &rows,
        Some(chart("efficiency vs ranks", &refs)),
    );
}
