//! Extension experiment (paper §VII future work): alternative victim
//! selection strategies beyond the paper's three —
//!
//! - `LatSkew`: weight by inverse *modelled latency* rather than
//!   coordinate distance (sees blade/cube/rack structure and same-node
//!   transport, not just geometry);
//! - `Hier`: two-level hierarchical selection (burst of same-node
//!   attempts, then a global draw), the scheme the related-work section
//!   contrasts against.
//!
//! Compared under 1/N (no node mates — Hier degenerates to Rand) and
//! 8G (8 node mates each).

use dws_bench::{emit, f, run_logged, FigArgs};
use dws_core::{StealAmount, VictimPolicy};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let policies: [(&str, VictimPolicy); 4] = [
        ("Rand", VictimPolicy::Uniform),
        ("Tofu", VictimPolicy::DistanceSkewed { alpha: 1.0 }),
        ("LatSkew", VictimPolicy::LatencySkewed { alpha: 1.0 }),
        ("Hier(4)", VictimPolicy::Hierarchical { local_tries: 4 }),
    ];
    let mut rows = Vec::new();
    for mapping in [RankMapping::OneToOne, RankMapping::Grouped { ppn: 8 }] {
        for (name, victim) in policies {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(StealAmount::Half)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                name.to_string(),
                mapping.label(),
                f(r.perf.speedup(), 1),
                f(r.stats.avg_session_ns() / 1000.0, 0),
                r.stats.failed_steals().to_string(),
            ]);
        }
    }
    emit(
        &args,
        "ablation_future_selection",
        "Extended victim-selection strategies (all steal-half)",
        &[
            "policy",
            "mapping",
            "speedup",
            "session_us",
            "failed_steals",
        ],
        &rows,
        None,
    );
}
