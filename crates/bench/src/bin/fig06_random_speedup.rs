//! Figure 6: speedup with uniform random victim selection ("Rand")
//! under the three allocations, with Reference 1/N for comparison.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs, MAPPINGS};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut configs: Vec<(String, &str, RankMapping)> =
        vec![("Reference 1/N".into(), "Reference", RankMapping::OneToOne)];
    for m in MAPPINGS {
        configs.push((format!("Rand {}", m.label()), "Rand", *m));
    }
    for (label, strat, mapping) in configs {
        let (victim, steal) = strategy(strat);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                label.clone(),
                r.n_ranks.to_string(),
                f(r.perf.speedup(), 1),
            ]);
            pts.push((r.n_ranks as f64, r.perf.speedup()));
        }
        series.push((label, pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig06",
        "Speedup with random victim selection",
        &["config", "ranks", "speedup"],
        &rows,
        Some(chart("speedup vs ranks", &refs)),
    );
}
