//! Figure 4: starting and ending latencies of the reference
//! implementation at 128 ranks (1/N): both stay tiny — the scheduler
//! fills and drains the machine almost instantly at small scale.

use dws_bench::{chart, emit, f, run_logged, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let cfg = args.config(args.small_tree(), 128);
    let r = run_logged(&cfg);
    let occ = r.occupancy().expect("trace collected by default");
    let mut rows = Vec::new();
    let mut sl_pts = Vec::new();
    let mut el_pts = Vec::new();
    for (pct, sl, el) in occ.latency_series(90) {
        let (Some(sl), Some(el)) = (sl, el) else {
            continue;
        };
        rows.push(vec![pct.to_string(), f(sl * 100.0, 3), f(el * 100.0, 3)]);
        sl_pts.push((pct as f64, sl * 100.0));
        el_pts.push((pct as f64, el * 100.0));
    }
    println!("Wmax = {} of {} ranks", occ.w_max(), occ.n_ranks());
    emit(
        &args,
        "fig04",
        "Starting/ending latency, Reference 1/N, 128 ranks",
        &["occupancy_%", "SL_%runtime", "EL_%runtime"],
        &rows,
        Some(chart(
            "latency (% of runtime) vs occupancy (%)",
            &[("SL", sl_pts), ("EL", el_pts)],
        )),
    );
}
