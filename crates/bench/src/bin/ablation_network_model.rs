//! Ablation: contention model fidelity. The default network folds path
//! contention into a per-hop constant plus shared-NIC queueing
//! (mean-field); the link-level model routes every message over its
//! dimension-ordered path and queues at each directed link. If the
//! paper's qualitative orderings hold under both, they do not hinge on
//! the contention shortcut.

use dws_bench::{emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    for (model, link_level) in [
        ("mean-field", None),
        ("link-level", Some((1_000u64, 800u64))),
    ] {
        for name in ["Reference", "Rand", "Tofu Half"] {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.link_level_network = link_level;
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                model.to_string(),
                name.to_string(),
                f(r.perf.speedup(), 1),
                f(r.stats.avg_session_ns() / 1000.0, 0),
            ]);
        }
    }
    emit(
        &args,
        "ablation_network_model",
        "Mean-field vs link-level contention model",
        &["model", "strategy", "speedup", "session_us"],
        &rows,
        None,
    );
}
