//! Figure 5: starting and ending latencies of the reference
//! implementation at the largest scale — the paper's smoking gun: the
//! scheduler "struggles to provide work to most workers" (their 8,192
//! rank run never exceeded 43% occupancy).

use dws_bench::{chart, emit, f, run_logged, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let cfg = args.config(args.large_tree(), args.flagship_ranks());
    let r = run_logged(&cfg);
    let occ = r.occupancy().expect("trace collected by default");
    let wmax_pct = 100.0 * occ.w_max() as f64 / occ.n_ranks() as f64;
    println!(
        "Wmax = {} of {} ranks ({:.1}% peak occupancy)",
        occ.w_max(),
        occ.n_ranks(),
        wmax_pct
    );
    let mut rows = Vec::new();
    let mut sl_pts = Vec::new();
    let mut el_pts = Vec::new();
    for (pct, sl, el) in occ.latency_series(wmax_pct as u32) {
        let (Some(sl), Some(el)) = (sl, el) else {
            continue;
        };
        rows.push(vec![pct.to_string(), f(sl * 100.0, 2), f(el * 100.0, 2)]);
        sl_pts.push((pct as f64, sl * 100.0));
        el_pts.push((pct as f64, el * 100.0));
    }
    emit(
        &args,
        "fig05",
        "Starting/ending latency, Reference 1/N, largest scale",
        &["occupancy_%", "SL_%runtime", "EL_%runtime"],
        &rows,
        Some(chart(
            "latency (% of runtime) vs occupancy (%)",
            &[("SL", sl_pts), ("EL", el_pts)],
        )),
    );
}
