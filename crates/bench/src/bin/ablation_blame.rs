//! Ablation: causal makespan attribution across victim policies.
//!
//! Figures 6 and 9 show *that* 1/d-skew ("Tofu") beats uniform random
//! victim selection; this ablation shows *why*, by decomposing each
//! cell's makespan along its critical path into {compute, steal
//! travel, queue-at-victim, timeout+retry, quarantine, termination
//! tail, other idle} — components that sum to the measured makespan
//! exactly. The `whatif_rtt_ms` column is the Coz-style first-order
//! prediction for eliminating steal travel from the critical path
//! entirely: the paper's thesis says uniform selection pays more
//! long-haul RTT, so its predicted win must be at least Tofu's in
//! every comparable cell.
//!
//! Cells: {Rand, Tofu} × {steal-1, steal-half} × {no faults, 2%
//! message faults}. The analyzer is read-only — the makespans here are
//! bit-identical to the same cells run without it.

use dws_bench::{emit, f, run_logged, FigArgs};
use dws_core::{ExperimentResult, StealAmount, VictimPolicy};
use dws_metrics::Component;
use dws_simnet::FaultPlan;

/// Percent of the makespan attributed to `c` on the critical path.
fn share(r: &ExperimentResult, totals: &[(Component, u64)], c: Component) -> f64 {
    let ns = totals
        .iter()
        .find(|&&(x, _)| x == c)
        .map(|&(_, v)| v)
        .unwrap_or(0);
    100.0 * ns as f64 / r.makespan.ns().max(1) as f64
}

fn main() {
    let args = FigArgs::parse();
    let tree = args.small_tree();
    let ranks = if args.full { 1024 } else { 128 };

    let policies: [(&str, VictimPolicy); 2] = [
        ("Rand", VictimPolicy::Uniform),
        ("Tofu", VictimPolicy::DistanceSkewed { alpha: 1.0 }),
    ];
    let steals: [(&str, StealAmount); 2] =
        [("one", StealAmount::OneChunk), ("half", StealAmount::Half)];
    let faults: [(&str, FaultPlan); 2] = [
        ("none", FaultPlan::default()),
        ("drop-2%", FaultPlan::message_faults(0.02, 0.01, 0.02)),
    ];

    let mut rows = Vec::new();
    for (fname, plan) in &faults {
        for (pname, policy) in &policies {
            for (sname, steal) in &steals {
                let mut cfg = args
                    .config(tree.clone(), ranks)
                    .with_victim(*policy)
                    .with_steal(*steal);
                cfg.fault_plan = plan.clone();
                cfg.collect_spans = true;
                let r = run_logged(&cfg);
                let blame = r
                    .blame_report()
                    .expect("spans + activity trace were collected");
                blame
                    .check()
                    .expect("attribution must sum to the makespan exactly");
                let totals = &blame.components;
                let travel = share(&r, totals, Component::RequestTravel)
                    + share(&r, totals, Component::ReplyTravel);
                // Predicted makespan reduction for "steal rtt −100%".
                let rtt_delta_ns = blame
                    .whatif
                    .iter()
                    .find(|w| w.scenario == "steal rtt" && w.scale_pct == 100)
                    .map(|w| w.predicted_delta_ns)
                    .unwrap_or(0);
                rows.push(vec![
                    pname.to_string(),
                    sname.to_string(),
                    fname.to_string(),
                    f(r.makespan.ns() as f64 / 1e6, 2),
                    f(share(&r, totals, Component::Compute), 1),
                    f(travel, 1),
                    f(share(&r, totals, Component::QueueAtVictim), 1),
                    f(share(&r, totals, Component::TimeoutRetry), 1),
                    f(share(&r, totals, Component::QuarantineReselect), 1),
                    f(share(&r, totals, Component::TerminationTail), 1),
                    f(share(&r, totals, Component::IdleOther), 1),
                    f(rtt_delta_ns as f64 / 1e6, 3),
                ]);
            }
        }
    }

    emit(
        &args,
        "ablation_blame",
        "Critical-path makespan attribution by victim policy",
        &[
            "policy",
            "steal",
            "fault",
            "makespan_ms",
            "compute_pct",
            "travel_pct",
            "queue_pct",
            "retry_pct",
            "quarantine_pct",
            "term_pct",
            "other_pct",
            "whatif_rtt_ms",
        ],
        &rows,
        None,
    );
}
