//! Figure 3: speedup of the reference implementation at large scale
//! (paper: 1,024–8,192 ranks on T3WL) under the three allocations.

use dws_bench::{chart, emit, f, run_logged, FigArgs, MAPPINGS};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for mapping in MAPPINGS {
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let n_nodes = ranks / mapping.ppn();
            let mut cfg = args.config(tree.clone(), n_nodes).with_mapping(*mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                format!("Reference {}", mapping.label()),
                r.n_ranks.to_string(),
                f(r.perf.speedup(), 1),
                f(r.makespan.as_secs_f64(), 4),
            ]);
            pts.push((r.n_ranks as f64, r.perf.speedup()));
        }
        series.push((format!("Reference {}", mapping.label()), pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig03",
        "Speedup of the reference implementation at large scale",
        &["config", "ranks", "speedup", "makespan_s"],
        &rows,
        Some(chart("speedup vs ranks", &refs)),
    );
}
