//! 8,192-rank smoke run: the paper's full scale on the overhauled hot
//! path. One untraced skewed + steal-half experiment on a `TorusFill`
//! allocation, which is torus-symmetric by construction — victim draws
//! come from the **shared offset-alias table** (O(N) total memory, one
//! table set for all ranks; no per-rank tables, no rejection fallback).
//!
//! The binary asserts its own budget so CI fails loudly when the hot
//! path regresses:
//!
//! - the job must be torus-symmetric and take the shared-table path;
//! - the run must complete (every surviving rank observes
//!   termination);
//! - wall clock must stay under [`WALL_BUDGET_S`].
//!
//! Results are emitted like any figure (`results/smoke_8192.csv`, plus
//! a BenchRecord for the trajectory store via `--trajectory`).

use dws_bench::{emit, f, run_logged_streamed, FigArgs};
use dws_core::VictimPolicy;
use dws_topology::{AllocationPolicy, Job, LatencyParams, Machine, RankMapping};
use std::sync::Arc;
use std::time::Instant;

/// Rank count: the paper's largest configuration.
const RANKS: u32 = 8_192;

/// Wall-clock budget for the whole smoke run. Generous against the
/// measured time (well under a minute on a development machine) so CI
/// noise does not flake, but tight enough that an accidental return to
/// per-rank tables (~8 GB of alias tables) or a super-linear hot-path
/// regression trips it.
const WALL_BUDGET_S: f64 = 300.0;

fn main() {
    let args = FigArgs::parse();
    let (victim, steal) = dws_bench::strategy("Tofu Half");

    // The runner builds this exact job for a TorusFill config; build it
    // here too to assert the symmetry contract before spending minutes.
    let machine = Machine::torus_for_nodes(RANKS);
    let job = Arc::new(Job::place(
        machine,
        RANKS,
        AllocationPolicy::TorusFill,
        RankMapping::OneToOne,
        LatencyParams::default(),
    ));
    let ctx = VictimPolicy::DistanceSkewed { alpha: 1.0 }.prepare(&job);
    assert!(
        ctx.uses_shared_table(),
        "8,192-rank TorusFill job must be torus-symmetric and use the \
         shared offset-alias table"
    );

    let mut cfg = args
        .config(dws_uts::presets::t3sim_l(), RANKS)
        .with_victim(victim)
        .with_steal(steal);
    cfg.alloc = AllocationPolicy::TorusFill;
    cfg.collect_trace = false;

    // Streaming telemetry (`--live`, `--snapshot`, `--snapshot-every`)
    // attaches here; the schedule is identical with it on or off, so
    // the smoke metrics stay comparable either way.
    let wall = Instant::now();
    let res = run_logged_streamed(&cfg, args.streaming());
    let wall_s = wall.elapsed().as_secs_f64();

    assert!(res.completed, "smoke run must observe termination");
    assert!(
        wall_s < WALL_BUDGET_S,
        "8,192-rank smoke took {wall_s:.0}s, budget is {WALL_BUDGET_S:.0}s — \
         hot-path regression"
    );

    let t = res.stats.total();
    emit(
        &args,
        "smoke_8192",
        "8,192-rank untraced smoke (Tofu Half, TorusFill, T3SIM-L)",
        &[
            "ranks",
            "speedup",
            "makespan_ms",
            "events",
            "failed_steals",
            "wall_s",
        ],
        &[vec![
            RANKS.to_string(),
            f(res.perf.speedup(), 1),
            f(res.makespan.ns() as f64 / 1e6, 1),
            res.report.events.to_string(),
            t.steals_failed.to_string(),
            f(wall_s, 1),
        ]],
        None,
    );
}
