//! Ablation: chunk size. The paper fixes 20 nodes per chunk, citing
//! prior UTS studies; this sweep revisits the tradeoff — large chunks
//! amortize steal costs but hide work behind the private chunk.

use dws_bench::{emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    for chunk in [5usize, 10, 20, 50, 100] {
        for name in ["Rand", "Tofu Half"] {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.chunk_size = chunk;
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                chunk.to_string(),
                name.to_string(),
                f(r.perf.speedup(), 1),
                f(
                    r.stats.total().nodes_received as f64 / r.stats.total().steals_ok.max(1) as f64,
                    1,
                ),
            ]);
        }
    }
    emit(
        &args,
        "ablation_chunk_size",
        "Chunk size sweep",
        &["chunk_size", "strategy", "speedup", "nodes_per_steal"],
        &rows,
        None,
    );
}
