//! Ablation: aggregate link load under each victim-selection policy.
//!
//! The system-level argument for skewed selection: steal traffic costs
//! the network `traffic × hops` link-units, and long routes share links
//! with everyone else's long routes. This analysis charges each
//! potential steal request along its dimension-ordered route, weighted
//! by the policy's victim distribution, and reports total link-units
//! and the hotspot factor (max/mean link load). No simulation — pure
//! topology analysis, so it runs at full 1,024-rank scale instantly.

use dws_bench::{emit, f, FigArgs};
use dws_core::skew_weight;
use dws_topology::{Job, LinkLoad, RankMapping};
use std::sync::Arc;

fn main() {
    let args = FigArgs::parse();
    let n = if args.full { 4096 } else { 1024 };
    let job = Arc::new(Job::compact(n, RankMapping::OneToOne));
    let machine = job.machine().clone();
    // Weight-per-pair generators, per policy.
    type WeightFn = Box<dyn Fn(u32, u32) -> f64>;
    let policies: Vec<(&str, WeightFn)> = vec![
        ("Uniform", { Box::new(move |_i, _j| 1.0) }),
        ("Tofu a=1", {
            let job = Arc::clone(&job);
            Box::new(move |i, j| skew_weight(&job, i, j, 1.0))
        }),
        ("Tofu a=4", {
            let job = Arc::clone(&job);
            Box::new(move |i, j| skew_weight(&job, i, j, 4.0))
        }),
    ];
    let mut rows = Vec::new();
    for (name, weight) in policies {
        let mut load = LinkLoad::new();
        let mut expected_hops = 0.0f64;
        // Sample thieves to keep all-pairs cost bounded at --full scale.
        let stride = if n > 2048 { 8 } else { 1 };
        let mut thieves = 0u32;
        for i in (0..n).step_by(stride) {
            thieves += 1;
            let total: f64 = (0..n).filter(|&j| j != i).map(|j| weight(i, j)).sum();
            for j in 0..n {
                if j == i {
                    continue;
                }
                let p = weight(i, j) / total;
                // Integer traffic units: probability in parts per million.
                let units = (p * 1_000_000.0) as u64;
                if units == 0 {
                    continue;
                }
                let hops = load.add_route(&machine, job.coord_of(i), job.coord_of(j), units);
                expected_hops += p * hops as f64;
            }
        }
        rows.push(vec![
            name.to_string(),
            f(expected_hops / thieves as f64, 3),
            (load.total_link_units() / thieves as u64).to_string(),
            f(load.hotspot_factor(), 2),
            load.links_used().to_string(),
        ]);
    }
    emit(
        &args,
        "ablation_link_load",
        "Expected steal-traffic link load per policy (per thief)",
        &[
            "policy",
            "E[hops]",
            "link_units",
            "hotspot_factor",
            "links_used",
        ],
        &rows,
        None,
    );
}
