//! Figure 8: the probability distribution function p(0, x) of the
//! distance-skewed victim selection for a 1,024-node deployment
//! (1 rank per node) — most mass stays spread across the machine, with
//! sharp spikes on physically nearby ranks.

use dws_bench::{chart, emit, FigArgs};
use dws_core::VictimPolicy;
use dws_topology::{Job, RankMapping};

fn main() {
    let args = FigArgs::parse();
    let n = 1024u32; // the paper's exact deployment for this figure
    let job = Job::compact(n, RankMapping::OneToOne);
    let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
    let uniform = 1.0 / (n - 1) as f64;
    let mut rows = Vec::new();
    let mut pts = Vec::new();
    for j in 0..n {
        let p = policy
            .probability(&job, 0, j)
            .expect("skewed policy defines probabilities");
        rows.push(vec![j.to_string(), format!("{p:.6e}")]);
        pts.push((j as f64, p));
    }
    println!("uniform baseline would be {uniform:.3e} per rank");
    let total: f64 = pts.iter().map(|(_, p)| p).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "PDF must normalize, got {total}"
    );
    emit(
        &args,
        "fig08",
        "PDF of p(0, x), distance-skewed selection, 1024 nodes 1/N",
        &["rank", "probability"],
        &rows,
        Some(chart("p(0,x) vs rank", &[("p", pts)])),
    );
}
