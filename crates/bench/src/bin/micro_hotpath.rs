//! Hot-path microbenchmarks for the engine overhaul, measuring the
//! three quantities the overhaul targets:
//!
//! 1. **Event throughput** — the calendar queue against the retired
//!    reference `BinaryHeap` (kept as a differential-test oracle) on a
//!    deep-queue churn workload: 8,192 concurrently pending timers so
//!    the heap pays its full `O(log n)` sift on every event while the
//!    calendar queue stays amortized `O(1)`. The binary asserts the
//!    speedup in-process as a backstop; the recorded metrics feed the
//!    `dws diff` CI gate.
//! 2. **Allocations per event** — the steady-state allocation rate of a
//!    full profiled experiment (event arena + freelist, pooled
//!    outboxes, pooled steal chunks), via the same `CountingAlloc`
//!    probe `dws profile` uses.
//! 3. **Victim-draw cost** — ns per draw for the shared offset-alias
//!    table (torus-symmetric jobs), the per-rank alias table, and the
//!    rejection oracle.
//!
//! Like `micro`, results go to `results/BENCH_hotpath.json` and can be
//! appended to the trajectory store with `--trajectory`.

use dws_core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy, VictimSelector};
use dws_metrics::perflab::{self, BenchMetric, BenchRecord, Polarity};
use dws_simnet::{Actor, ConstantLatency, Ctx, DetRng, Rank, SimConfig, SimTime, Simulation};
use dws_topology::{AllocationPolicy, Job, LatencyParams, Machine, RankMapping};
use dws_uts::presets;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counting allocator: the allocs-per-event probe below needs it.
#[global_allocator]
static ALLOC: dws_simnet::CountingAlloc = dws_simnet::CountingAlloc;

static TRIAL_SEED: AtomicU64 = AtomicU64::new(0);

fn trial_seed() -> u64 {
    TRIAL_SEED.load(Ordering::Relaxed)
}

/// Concurrently pending events in the churn workload: deep enough that
/// a binary heap pays ~15 sift levels per pop and its backing array
/// (`PENDING × sizeof(Event)` ≈ 3 MB) spills out of L2, as in the
/// paper's large simulations.
const PENDING: u64 = 131_072;
/// Re-arm delays are uniform in `[1, SPREAD]` ns.
const SPREAD: u64 = 131_072;
/// Simulated horizon: each pending timer re-fires every `SPREAD/2` ns
/// on average, so ≈ `PENDING * LIMIT / (SPREAD/2)` ≈ 1M events.
const LIMIT_NS: u64 = 2_000_000;
/// Timed trials per measurement; the minimum is reported.
const TRIALS: usize = 5;

/// Message payload sized like the worker protocol's largest variant
/// (`Msg::StealReply`: two ids plus a chunk vector, 48 bytes). The
/// heap stores `Event<Msg>` inline and moves the whole event on every
/// sift level; the calendar queue parks it in the arena and moves it
/// exactly twice. The payload size is part of the workload even for
/// timer events — `EventKind<M>` is an enum, so every event is as
/// large as the largest message.
type FatMsg = [u64; 6];

/// One actor keeping [`PENDING`] timers in flight forever: every fired
/// timer re-arms itself at a deterministic pseudo-random delay. Pure
/// queue churn — each event is one pop and one push.
struct Churn;

impl Actor for Churn {
    type Msg = FatMsg;
    fn on_start(&mut self, ctx: &mut Ctx<'_, FatMsg>) {
        for t in 0..PENDING {
            let d = 1 + ctx.rng().next_below(SPREAD);
            ctx.set_timer(d, t);
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, FatMsg>, _from: Rank, _msg: FatMsg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, FatMsg>, token: u64) {
        let d = 1 + ctx.rng().next_below(SPREAD);
        ctx.set_timer(d, token);
    }
}

/// Run the churn workload once on the chosen queue; returns
/// `(events, wall_ns)` for the simulation loop only.
fn churn_run(reference: bool) -> (u64, u64) {
    let cfg = SimConfig {
        seed: 0x40_77A9 ^ trial_seed(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(vec![Churn], ConstantLatency(100), cfg);
    if reference {
        sim.use_reference_queue();
    }
    let wall = Instant::now();
    let report = sim.run_with_limits(Some(SimTime(LIMIT_NS)), None);
    let wall_ns = wall.elapsed().as_nanos() as u64;
    (report.events, wall_ns)
}

fn bench_queue_throughput(metrics: &mut Vec<BenchMetric>) {
    println!("-- event queue: {PENDING} pending timers, {LIMIT_NS} ns horizon --");
    // Interleave the trials so load and frequency drift hit both
    // queues evenly; report the best rate of each.
    churn_run(false); // warm-up
    churn_run(true);
    let mut cal = 0.0f64;
    let mut heap = 0.0f64;
    let mut events = 0;
    for _ in 0..TRIALS {
        let (ev, wall_ns) = churn_run(false);
        cal = cal.max(ev as f64 / (wall_ns as f64 / 1e9));
        events = ev;
        let (ev, wall_ns) = churn_run(true);
        heap = heap.max(ev as f64 / (wall_ns as f64 / 1e9));
    }
    let speedup = cal / heap;
    println!("calendar queue      {:>12.0} events/s", cal);
    println!("reference heap      {:>12.0} events/s", heap);
    println!("speedup             {speedup:>12.2} x  ({events} events/run)");
    assert!(
        speedup >= 1.5,
        "calendar queue must beat the reference heap by ≥1.5x on deep churn \
         (got {speedup:.2}x) — hot-path regression"
    );
    metrics.push(BenchMetric::point(
        "churn_events_per_sec_calendar",
        "events/s",
        Polarity::HigherIsBetter,
        cal,
    ));
    metrics.push(BenchMetric::point(
        "churn_events_per_sec_reference_heap",
        "events/s",
        Polarity::Neutral,
        heap,
    ));
    metrics.push(BenchMetric::point(
        "churn_calendar_speedup",
        "x",
        Polarity::HigherIsBetter,
        speedup,
    ));
}

fn bench_allocs_per_event(metrics: &mut Vec<BenchMetric>) {
    println!("-- steady-state allocations (profiled 64-rank experiment) --");
    let mut cfg = ExperimentConfig::new(presets::t3sim_l(), 64)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.seed = cfg.seed.wrapping_add(trial_seed());
    cfg.collect_trace = false;
    cfg.profile = true;
    let result = run_experiment(&cfg);
    let p = result.profile.expect("profile was requested");
    println!(
        "allocs/event        {:>12.4}  ({} allocs / {} events, {:.0} events/s)",
        p.allocs_per_event(),
        p.allocs,
        p.events,
        p.events_per_sec()
    );
    metrics.push(BenchMetric::point(
        "profile_allocs_per_event",
        "allocs/event",
        Polarity::LowerIsBetter,
        p.allocs_per_event(),
    ));
    metrics.push(BenchMetric::point(
        "profile_events_per_sec",
        "events/s",
        Polarity::HigherIsBetter,
        p.events_per_sec(),
    ));
}

/// Best-of-[`TRIALS`] ns per victim draw.
fn draw_cost(sel: &mut VictimSelector, seed: u64) -> f64 {
    const DRAWS: u64 = 200_000;
    let mut best = f64::INFINITY;
    for trial in 0..=TRIALS {
        let mut rng = DetRng::new(seed ^ trial as u64);
        let wall = Instant::now();
        for _ in 0..DRAWS {
            black_box(sel.next_victim(&mut rng));
        }
        let ns = wall.elapsed().as_nanos() as f64 / DRAWS as f64;
        if trial > 0 {
            // Trial 0 is the warm-up.
            best = best.min(ns);
        }
    }
    best
}

fn bench_victim_draws(metrics: &mut Vec<BenchMetric>) {
    println!("-- victim draws (1,020-rank torus-symmetric job) --");
    let ranks = 1_020u32; // divisible by 12: every cube fully occupied
    let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
    let symmetric = Arc::new(Job::place(
        Machine::torus_for_nodes(ranks),
        ranks,
        AllocationPolicy::TorusFill,
        RankMapping::OneToOne,
        LatencyParams::default(),
    ));
    let compact = Arc::new(Job::compact(ranks, RankMapping::OneToOne));
    let ctx = policy.prepare(&symmetric);
    assert!(
        ctx.uses_shared_table(),
        "TorusFill job must take the shared offset-alias path"
    );
    let cases: [(&str, VictimSelector); 3] = [
        ("shared_offset_alias", policy.build(&symmetric, 3, &ctx)),
        (
            "per_rank_alias",
            policy.build(&compact, 3, &policy.prepare(&compact)),
        ),
        (
            "rejection_oracle",
            VictimSelector::SkewedRejection {
                job: Arc::clone(&compact),
                me: 3,
                alpha: 1.0,
            },
        ),
    ];
    for (name, mut sel) in cases {
        let ns = draw_cost(&mut sel, 7 ^ trial_seed());
        println!("{name:20} {ns:>12.1} ns/draw");
        metrics.push(BenchMetric::point(
            &format!("victim_ns_per_draw_{name}"),
            "ns/draw",
            Polarity::LowerIsBetter,
            ns,
        ));
    }
}

fn build_record(started: Instant, metrics: Vec<BenchMetric>) -> BenchRecord {
    let names: String = metrics.iter().map(|m| m.name.as_str()).collect();
    let mut metrics = metrics;
    metrics.push(BenchMetric::point(
        "wall_s_total",
        "s",
        Polarity::LowerIsBetter,
        started.elapsed().as_secs_f64(),
    ));
    BenchRecord {
        schema: perflab::BENCH_SCHEMA_VERSION,
        bench: "micro_hotpath".to_string(),
        git_rev: perflab::git_rev(),
        fingerprint: perflab::fingerprint(&names),
        trial_seed: trial_seed(),
        unix_time_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        trials: TRIALS as u64,
        threads: 1,
        metrics,
    }
}

fn write_record(path: &str, record: &BenchRecord) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, format!("{}\n", record.to_json()))
}

fn main() {
    let started = Instant::now();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = Some("results/BENCH_hotpath.json".to_string());
    let mut trajectory: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next().or(json_path),
            "--no-json" => json_path = None,
            "--trajectory" => trajectory = it.next(),
            "--trial-seed" => {
                let seed: u64 = it
                    .next()
                    .expect("--trial-seed needs a value")
                    .parse()
                    .expect("--trial-seed must be an integer");
                TRIAL_SEED.store(seed, Ordering::Relaxed);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let mut metrics = Vec::new();
    bench_queue_throughput(&mut metrics);
    bench_allocs_per_event(&mut metrics);
    bench_victim_draws(&mut metrics);
    let record = build_record(started, metrics);
    if let Some(path) = json_path {
        match write_record(&path, &record) {
            Ok(()) => println!("[results written to {path}]"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    if let Some(path) = trajectory {
        match perflab::append_record(&path, &record) {
            Ok(()) => println!("[record appended to {path}]"),
            Err(e) => eprintln!("warning: could not append to {path}: {e}"),
        }
    }
}
