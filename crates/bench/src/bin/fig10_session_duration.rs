//! Figure 10: average duration of a work-discovery session (a session
//! starts when a rank exhausts its work and ends when work arrives or
//! the run terminates). Topology-aware selection finds work faster.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs, MAPPINGS};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut configs: Vec<(String, &str, RankMapping)> = vec![
        ("Reference 1/N".into(), "Reference", RankMapping::OneToOne),
        ("Rand 1/N".into(), "Rand", RankMapping::OneToOne),
    ];
    for m in MAPPINGS {
        configs.push((format!("Tofu {}", m.label()), "Tofu", *m));
    }
    for (label, strat, mapping) in configs {
        let (victim, steal) = strategy(strat);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            let ms = r.stats.avg_session_ns() / 1e6;
            rows.push(vec![label.clone(), r.n_ranks.to_string(), f(ms, 3)]);
            pts.push((r.n_ranks as f64, ms));
        }
        series.push((label, pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig10",
        "Average work-discovery session duration (ms)",
        &["config", "ranks", "avg_session_ms"],
        &rows,
        Some(chart("session duration (ms) vs ranks", &refs)),
    );
}
