//! Figure 9: speedup with the distance-skewed ("Tofu") selection under
//! the three allocations, with Rand 1/N and Rand 8G for reference.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs, MAPPINGS};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut configs: Vec<(String, &str, RankMapping)> = vec![
        ("Rand 8G".into(), "Rand", RankMapping::Grouped { ppn: 8 }),
        ("Rand 1/N".into(), "Rand", RankMapping::OneToOne),
    ];
    for m in MAPPINGS {
        configs.push((format!("Tofu {}", m.label()), "Tofu", *m));
    }
    for (label, strat, mapping) in configs {
        let (victim, steal) = strategy(strat);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                label.clone(),
                r.n_ranks.to_string(),
                f(r.perf.speedup(), 1),
            ]);
            pts.push((r.n_ranks as f64, r.perf.speedup()));
        }
        series.push((label, pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig09",
        "Speedup with distance-skewed victim selection",
        &["config", "ranks", "speedup"],
        &rows,
        Some(chart("speedup vs ranks", &refs)),
    );
}
