//! Microbenchmarks for the building blocks: SHA-1 hashing, UTS child
//! generation, the chunked steal stack, the alias sampler and victim
//! selectors, the discrete-event queue, the Chase–Lev deque, and a
//! small end-to-end simulated experiment.
//!
//! These complement the `fig*` binaries (which regenerate the paper's
//! charts): the figures measure *simulated* time; these measure the
//! *host* cost of the primitives the simulator and the shared-memory
//! executor are built from.
//!
//! The harness is a plain `Instant`-based timer (the workspace is
//! dependency-free): each benchmark warms up, then reports the best of
//! several timed batches — the minimum is the stablest location
//! estimator for short, allocation-light loops.

use dws_core::{
    run_experiment, AliasTable, ChunkedStack, ExperimentConfig, StealAmount, VictimPolicy,
};
use dws_metrics::perflab::{self, BenchMetric, BenchRecord, Polarity};
use dws_simnet::{Actor, ConstantLatency, Ctx, DetRng, Rank, SimConfig, Simulation};
use dws_topology::{Job, RankMapping};
use dws_uts::{presets, sha1::Sha1, Node, RngState};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counting allocator so allocation-heavy regressions show up in the
/// `allocs_per_iter` metrics of the bench record.
#[global_allocator]
static ALLOC: dws_simnet::CountingAlloc = dws_simnet::CountingAlloc;

/// Per-batch ns/iter samples, collected for `BENCH_micro.json`.
static RESULTS: Mutex<Vec<(String, Vec<f64>)>> = Mutex::new(Vec::new());

/// Trial seed from `--trial-seed`: offsets every seeded RNG below so
/// repeated CI trials exercise slightly different (but deterministic)
/// inputs. Excluded from the config fingerprint.
static TRIAL_SEED: AtomicU64 = AtomicU64::new(0);

fn trial_seed() -> u64 {
    TRIAL_SEED.load(Ordering::Relaxed)
}

/// Timed batches per benchmark; doubles as the record's trial count.
const BATCHES: usize = 7;

/// Time `f` (which runs `iters` inner iterations per call): print the
/// best per-iteration time across the batches (the minimum is the
/// stablest location estimator for short loops), and buffer all batch
/// samples so the bench record can carry a mean and 95% CI.
fn bench<F: FnMut()>(name: &str, iters: u64, mut f: F) {
    // Warm-up batch: populate caches and branch predictors.
    f();
    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let unit = if best >= 1e6 {
        format!("{:.3} ms", best / 1e6)
    } else if best >= 1e3 {
        format!("{:.3} µs", best / 1e3)
    } else {
        format!("{best:.1} ns")
    };
    println!("{name:44} {unit:>12} /iter");
    RESULTS
        .lock()
        .expect("results mutex")
        .push((name.to_string(), samples));
}

fn bench_sha1() {
    println!("-- sha1 --");
    for size in [24usize, 64, 1024] {
        let data = vec![0xA5u8; size];
        bench(&format!("sha1/digest_{size}B"), 10_000, || {
            for _ in 0..10_000 {
                black_box(Sha1::digest(black_box(&data)));
            }
        });
    }
}

fn bench_uts_generation() {
    println!("-- uts --");
    let spec = presets::t3xxl().spec;
    let root = spec.root(316i32.wrapping_add(trial_seed() as i32));
    bench("uts/spawn_child", 100_000, || {
        let mut i = 0u32;
        for _ in 0..100_000 {
            i = i.wrapping_add(1);
            black_box(root.state.spawn(i, 1));
        }
    });
    bench("uts/children_of_root_b0_2000", 10, || {
        let mut buf = Vec::new();
        for _ in 0..10 {
            spec.children_into(black_box(&root), 1, &mut buf);
            black_box(buf.len());
        }
    });
    bench("uts/sequential_search_xs_tree", 1, || {
        let mut w = presets::t3sim_xs();
        w.seed = w.seed.wrapping_add(trial_seed() as i32);
        black_box(dws_uts::search(&w).nodes);
    });
}

fn bench_chunked_stack() {
    println!("-- chunked_stack --");
    let node = Node {
        state: RngState::from_seed(1),
        height: 0,
    };
    bench("chunked_stack/push_pop_cycle_100", 1_000, || {
        let mut s = ChunkedStack::new(20);
        for _ in 0..1_000 {
            for _ in 0..100 {
                s.push(black_box(node));
            }
            for _ in 0..100 {
                black_box(s.pop());
            }
        }
    });
    bench("chunked_stack/steal_half_of_100_chunks", 100, || {
        for _ in 0..100 {
            let mut s = ChunkedStack::new(20);
            for _ in 0..2000 {
                s.push(node);
            }
            let loot = s.steal_chunks(50);
            black_box(loot.len());
        }
    });
}

fn bench_victim_selection() {
    println!("-- victim_selection --");
    let job = Arc::new(Job::compact(1024, RankMapping::OneToOne));
    bench("victim/alias_build_1024", 100, || {
        for _ in 0..100 {
            let weights: Vec<f64> = (0..1023)
                .map(|j| dws_core::skew_weight(&job, 0, j + 1, 1.0))
                .collect();
            black_box(AliasTable::new(&weights));
        }
    });
    let policies = [
        ("round_robin", VictimPolicy::RoundRobin),
        ("uniform", VictimPolicy::Uniform),
        ("skew_alias", VictimPolicy::DistanceSkewed { alpha: 1.0 }),
    ];
    for (name, policy) in policies {
        let ctx = policy.prepare(&job);
        let mut selector = policy.build(&job, 0, &ctx);
        let mut rng = DetRng::new(7 ^ trial_seed());
        bench(&format!("victim/draw_{name}"), 100_000, || {
            for _ in 0..100_000 {
                black_box(selector.next_victim(&mut rng));
            }
        });
    }
    let mut rejection = dws_core::VictimSelector::SkewedRejection {
        job: Arc::clone(&job),
        me: 0,
        alpha: 1.0,
    };
    let mut rng = DetRng::new(7 ^ trial_seed());
    bench("victim/draw_skew_rejection", 100_000, || {
        for _ in 0..100_000 {
            black_box(rejection.next_victim(&mut rng));
        }
    });
}

/// Actor ping-ponging a counter, to measure raw engine throughput.
struct Pinger {
    left: u64,
}
impl Actor for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.send(1, 8, self.left);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: Rank, msg: u64) {
        if msg > 0 {
            ctx.send(from, 8, msg - 1);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _t: u64) {}
}

fn bench_engine() {
    println!("-- simnet --");
    bench("simnet/event_throughput_10k_messages", 10_000, || {
        let actors = vec![Pinger { left: 10_000 }, Pinger { left: 0 }];
        let mut sim = Simulation::new(actors, ConstantLatency(100), SimConfig::default());
        black_box(sim.run().events);
    });
}

fn bench_deque() {
    println!("-- chase_lev --");
    bench("chase_lev/owner_push_pop_64", 1_000, || {
        let (w, _s) = dws_shmem::new_deque::<u64>(1024);
        for _ in 0..1_000 {
            for i in 0..64u64 {
                w.push(black_box(i));
            }
            for _ in 0..64 {
                black_box(w.pop());
            }
        }
    });
    bench("chase_lev/uncontended_steal", 10_000, || {
        let (w, s) = dws_shmem::new_deque::<u64>(1024);
        for i in 0..20_000u64 {
            w.push(i);
        }
        for _ in 0..10_000 {
            black_box(s.steal());
        }
    });
}

fn bench_end_to_end() {
    println!("-- end_to_end --");
    bench("end_to_end/simulated_16_ranks_xs_tree", 1, || {
        let mut cfg = ExperimentConfig::new(presets::t3sim_xs(), 16)
            .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
            .with_steal(StealAmount::Half);
        cfg.seed = cfg.seed.wrapping_add(trial_seed());
        cfg.collect_trace = false;
        black_box(run_experiment(&cfg).total_nodes);
    });
    bench("end_to_end/threads_4_xs_tree", 1, || {
        black_box(
            dws_shmem::parallel_search(&presets::t3sim_xs(), 4)
                .stats
                .nodes,
        );
    });
}

/// Fold the collected batch samples into a [`BenchRecord`]: one metric
/// per benchmark (mean ns/iter with a 95% CI across batches), plus the
/// process-wide allocation count and peak RSS. The fingerprint hashes
/// the benchmark names that ran, so filtered runs do not diff against
/// full ones — but deliberately not the trial seed.
fn build_record(started: Instant) -> BenchRecord {
    let results = RESULTS.lock().expect("results mutex");
    let mut metrics: Vec<BenchMetric> = results
        .iter()
        .map(|(name, samples)| {
            BenchMetric::from_samples(name, "ns/iter", Polarity::LowerIsBetter, samples)
        })
        .collect();
    metrics.push(BenchMetric::point(
        "wall_s_total",
        "s",
        Polarity::LowerIsBetter,
        started.elapsed().as_secs_f64(),
    ));
    metrics.push(BenchMetric::point(
        "allocs_total",
        "count",
        Polarity::LowerIsBetter,
        dws_simnet::allocation_count() as f64,
    ));
    if let Some(rss) = perflab::peak_rss_bytes() {
        metrics.push(BenchMetric::point(
            "peak_rss_bytes",
            "B",
            Polarity::LowerIsBetter,
            rss as f64,
        ));
    }
    let names: String = results.iter().map(|(n, _)| n.as_str()).collect();
    BenchRecord {
        schema: perflab::BENCH_SCHEMA_VERSION,
        bench: "micro".to_string(),
        git_rev: perflab::git_rev(),
        fingerprint: perflab::fingerprint(&names),
        trial_seed: trial_seed(),
        unix_time_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        trials: BATCHES as u64,
        threads: 1,
        metrics,
    }
}

fn write_record(path: &str, record: &BenchRecord) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, format!("{}\n", record.to_json()))
}

fn main() {
    let started = Instant::now();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Vec<String> = Vec::new();
    let mut json_path: Option<String> = Some("results/BENCH_micro.json".to_string());
    let mut trajectory: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next().or(json_path),
            "--no-json" => json_path = None,
            "--trajectory" => trajectory = it.next(),
            "--trial-seed" => {
                let seed: u64 = it
                    .next()
                    .expect("--trial-seed needs a value")
                    .parse()
                    .expect("--trial-seed must be an integer");
                TRIAL_SEED.store(seed, Ordering::Relaxed);
            }
            _ => only.push(a),
        }
    }
    let run = |name: &str| only.is_empty() || only.iter().any(|o| name.contains(o.as_str()));
    if run("sha1") {
        bench_sha1();
    }
    if run("uts") {
        bench_uts_generation();
    }
    if run("stack") {
        bench_chunked_stack();
    }
    if run("victim") {
        bench_victim_selection();
    }
    if run("simnet") {
        bench_engine();
    }
    if run("deque") {
        bench_deque();
    }
    if run("end_to_end") {
        bench_end_to_end();
    }
    let record = build_record(started);
    if let Some(path) = json_path {
        match write_record(&path, &record) {
            Ok(()) => println!("[results written to {path}]"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    if let Some(path) = trajectory {
        match perflab::append_record(&path, &record) {
            Ok(()) => println!("[record appended to {path}]"),
            Err(e) => eprintln!("warning: could not append to {path}: {e}"),
        }
    }
}
