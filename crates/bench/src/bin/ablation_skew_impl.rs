//! Ablation: alias-table vs rejection sampling for the skewed victim
//! draw. Both realize the same distribution; the alias table costs
//! O(N) memory per rank (prohibitive at 8,192 ranks), rejection costs
//! O(1) memory and a few extra RNG draws. Results must agree.

use dws_bench::{emit, f, run_logged, FigArgs};
use dws_core::{StealAmount, VictimPolicy};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (impl_name, threshold) in [("alias", u32::MAX), ("rejection", 0u32)] {
        let mut cfg = args
            .config(tree.clone(), ranks)
            .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
            .with_steal(StealAmount::Half);
        cfg.alias_threshold = threshold;
        cfg.collect_trace = false;
        let wall = std::time::Instant::now();
        let r = run_logged(&cfg);
        let wall = wall.elapsed();
        speedups.push(r.perf.speedup());
        rows.push(vec![
            impl_name.to_string(),
            f(r.perf.speedup(), 2),
            r.stats.failed_steals().to_string(),
            format!("{wall:.2?}"),
        ]);
    }
    let gap = (speedups[0] - speedups[1]).abs() / speedups[0];
    println!("relative speedup gap between samplers: {:.2}%", gap * 100.0);
    emit(
        &args,
        "ablation_skew_impl",
        "Alias vs rejection sampling for the skewed draw",
        &["sampler", "speedup", "failed_steals", "wall_time"],
        &rows,
        None,
    );
}
