//! Ablation: the three skewed-draw samplers — shared offset-alias
//! tables (torus-symmetric jobs), per-rank alias tables, and rejection
//! sampling — must realize the same distribution. Rejection is the
//! oracle: exact by construction, O(1) memory, no table to get wrong.
//! For each sampler this reports the draw cost and the worst relative
//! deviation of its empirical histogram from the analytic PDF.

use dws_bench::{emit, f, FigArgs};
use dws_core::{VictimPolicy, VictimSelector};
use dws_simnet::DetRng;
use dws_topology::{AllocationPolicy, Job, LatencyParams, Machine, RankMapping};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = FigArgs::parse();
    let ranks: u32 = if args.full { 1024 } else { 256 };
    let draws: u32 = if args.full { 2_000_000 } else { 500_000 };
    let policy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
    let me: u32 = 3;

    // Non-symmetric compact job: build() yields the per-rank alias
    // table. Symmetric TorusFill job: build() yields the shared tables.
    let compact = Arc::new(Job::compact(ranks, RankMapping::OneToOne));
    let symmetric = Arc::new(Job::place(
        Machine::torus_for_nodes(ranks),
        ranks,
        AllocationPolicy::TorusFill,
        RankMapping::OneToOne,
        LatencyParams::default(),
    ));

    let cases: Vec<(&str, Arc<Job>, VictimSelector)> = vec![
        ("shared_offset_alias", Arc::clone(&symmetric), {
            let ctx = policy.prepare(&symmetric);
            assert!(ctx.uses_shared_table(), "TorusFill must be symmetric");
            policy.build(&symmetric, me, &ctx)
        }),
        (
            "per_rank_alias",
            Arc::clone(&compact),
            policy.build(&compact, me, &policy.prepare(&compact)),
        ),
        (
            "rejection_oracle",
            Arc::clone(&compact),
            VictimSelector::SkewedRejection {
                job: Arc::clone(&compact),
                me,
                alpha: 1.0,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, job, mut sel) in cases {
        let mut rng = DetRng::new(11 ^ args.seed);
        let mut counts = vec![0u64; ranks as usize];
        let wall = Instant::now();
        for _ in 0..draws {
            counts[sel.next_victim(&mut rng) as usize] += 1;
        }
        let ns_per_draw = wall.elapsed().as_nanos() as f64 / draws as f64;
        // Worst relative deviation from the analytic PDF, over targets
        // with enough expected mass for the comparison to be stable.
        let mut worst = 0.0f64;
        assert_eq!(counts[me as usize], 0, "{name} drew self");
        for j in 0..ranks {
            if j == me {
                continue;
            }
            let p = policy.probability(&job, me, j).expect("skewed pdf");
            let expect = p * draws as f64;
            if expect >= 500.0 {
                worst = worst.max((counts[j as usize] as f64 - expect).abs() / expect);
            }
        }
        println!(
            "{name}: {ns_per_draw:.1} ns/draw, worst deviation {:.2}%",
            worst * 100.0
        );
        rows.push(vec![
            name.to_string(),
            f(ns_per_draw, 1),
            f(worst * 100.0, 2),
            draws.to_string(),
        ]);
    }
    emit(
        &args,
        "ablation_skew_impl",
        "Skewed-draw sampler equivalence (shared / per-rank alias / rejection)",
        &["sampler", "ns_per_draw", "worst_pdf_deviation_pct", "draws"],
        &rows,
        None,
    );
}
