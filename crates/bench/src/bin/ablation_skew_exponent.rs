//! Ablation: skew exponent. The paper weights victims by 1/e (alpha=1).
//! In a 6-D torus, node count grows ~e^5 with distance, so alpha=1
//! concentrates only mildly; this sweep extends the paper by asking how
//! much concentration actually helps (and when it over-concentrates,
//! starving thieves of distant work).

use dws_bench::{emit, f, run_logged, FigArgs};
use dws_core::{StealAmount, VictimPolicy};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = args.flagship_ranks();
    let mut rows = Vec::new();
    for alpha in [0.0f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut cfg = args
            .config(tree.clone(), ranks)
            .with_victim(VictimPolicy::DistanceSkewed { alpha })
            .with_steal(StealAmount::Half);
        cfg.collect_trace = false;
        let r = run_logged(&cfg);
        rows.push(vec![
            format!("{alpha}"),
            f(r.perf.speedup(), 1),
            f(r.stats.avg_session_ns() / 1000.0, 1),
            r.stats.failed_steals().to_string(),
        ]);
    }
    emit(
        &args,
        "ablation_skew_exponent",
        "Skew exponent sweep (Tofu Half, 1/N)",
        &["alpha", "speedup", "avg_session_us", "failed_steals"],
        &rows,
        None,
    );
}
