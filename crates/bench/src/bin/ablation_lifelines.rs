//! Extension experiment: lifeline-based load balancing (Saraswat et
//! al., the paper's §VI comparison point) versus pure work stealing.
//!
//! "After the number of steal attempts exceeds a threshold, idle
//! workers wait for their lifelines to provide work, thus limiting the
//! lock and network contention in the system." This sweep measures how
//! the dormancy threshold trades steal-spam reduction against wake-up
//! latency, on top of the Rand and Tofu strategies.

use dws_bench::{emit, f, run_logged, FigArgs};
use dws_core::{StealAmount, VictimPolicy};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    for victim in [
        VictimPolicy::Uniform,
        VictimPolicy::DistanceSkewed { alpha: 1.0 },
    ] {
        for threshold in [None, Some(4u32), Some(16), Some(64)] {
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(StealAmount::Half);
            cfg.lifeline_threshold = threshold;
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            let t = r.stats.total();
            rows.push(vec![
                victim.label().to_string(),
                threshold.map_or("off".to_string(), |t| t.to_string()),
                f(r.perf.speedup(), 1),
                t.steals_failed.to_string(),
                t.lifeline_dormancies.to_string(),
                t.lifeline_pushes.to_string(),
            ]);
        }
    }
    emit(
        &args,
        "ablation_lifelines",
        "Lifeline threshold sweep (steal-half)",
        &[
            "victim",
            "threshold",
            "speedup",
            "failed_steals",
            "dormancies",
            "pushed_chunks",
        ],
        &rows,
        None,
    );
}
