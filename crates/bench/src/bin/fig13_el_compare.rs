//! Figure 13: ending latencies, Reference vs Tofu-Half, at the largest
//! scale (1/N): the optimized scheduler keeps occupancy high until
//! late in the execution.

use dws_bench::{chart, emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = args.flagship_ranks();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for name in ["Reference", "Tofu Half"] {
        let (victim, steal) = strategy(name);
        let cfg = args
            .config(tree.clone(), ranks)
            .with_victim(victim)
            .with_steal(steal);
        let r = run_logged(&cfg);
        let occ = r.occupancy().expect("trace collected");
        let wmax_pct = (100 * occ.w_max() / occ.n_ranks()).max(1);
        let mut pts = Vec::new();
        for (pct, _, el) in occ.latency_series(wmax_pct) {
            let Some(el) = el else { continue };
            rows.push(vec![name.to_string(), pct.to_string(), f(el * 100.0, 2)]);
            pts.push((pct as f64, el * 100.0));
        }
        series.push((name.to_string(), pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig13",
        "Ending latencies: Reference vs Tofu Half (1/N)",
        &["config", "occupancy_%", "EL_%runtime"],
        &rows,
        Some(chart("EL (% of runtime) vs occupancy (%)", &refs)),
    );
}
