//! Ablation: failure-aware adaptive victim selection vs the paper's
//! best static policy under correlated faults.
//!
//! The paper's 1/d-skew ("Tofu") assumes every victim is worth asking;
//! this sweep breaks that assumption three ways — a whole-node crash
//! domain, a network partition, and a whole-node NIC brownout — across
//! the three rank mappings (1/N, 8RR, 8G), and compares static Tofu
//! against the adaptive overlay (`AdaptTofu`: same 1/d-skew base, plus
//! online health tracking and quarantine).
//!
//! Crashes are visible to every policy through the engine's crash
//! oracle, so the crash-domain cells mostly measure the cost of losing
//! a node, not victim selection. Partitions and brownouts are
//! *invisible*: the static policy keeps paying timeout after timeout on
//! unreachable victims for the whole window, while adaptive thieves
//! quarantine them after two timeouts and retry with bounded probes.
//! Those cells are where the overlay earns its keep; the faults-off
//! cells bound its overhead.
//!
//! Fault timing is derived from the *static clean* makespan `T` of each
//! mapping (crash at T/4, windows [T/4, 3T/4)), identical for both
//! policies, so every cell differs from its neighbour in exactly one
//! axis. Window faults close before any run ends: the token-ring
//! termination wave cannot cross a partition, so an unhealed cut would
//! stall completion forever.
//!
//! Two clocks per cell: `work_done_ms` is the instant the last tree
//! node was processed — the number victim selection actually moves —
//! while `makespan_ms` adds termination detection. After a window
//! fault eats the token, rank 0 regenerates it on an exponential
//! backoff, so the detection tail is *quantized*: a run whose work
//! drags just past a regeneration threshold pays the whole next
//! interval. Compare policies on `work_done_ms`; read `makespan_ms`
//! as that plus token-ring latency.

use dws_bench::{emit, f, run_logged, FigArgs, MAPPINGS};
use dws_core::{BaseVictimPolicy, ExperimentResult, VictimPolicy};
use dws_simnet::{Brownout, CrashDomain, FaultPlan, Partition};

const STATIC_TOFU: VictimPolicy = VictimPolicy::DistanceSkewed { alpha: 1.0 };
const ADAPT_TOFU: VictimPolicy = VictimPolicy::Adaptive {
    base: BaseVictimPolicy::DistanceSkewed { alpha: 1.0 },
};

/// Time the last tree node was processed, before the termination wave.
fn work_done_ns(r: &ExperimentResult) -> u64 {
    r.occupancy()
        .and_then(|occ| occ.last_reach_ns(0.0))
        .unwrap_or_else(|| r.makespan.ns())
}

fn row(
    mapping: &str,
    fault: &str,
    policy: &str,
    r: &ExperimentResult,
    clean_work_ns: u64,
) -> Vec<String> {
    let t = r.stats.total();
    let lost = r.fault.as_ref().map_or(0, |fr| fr.lost_subtree_nodes);
    let work_ns = work_done_ns(r);
    vec![
        mapping.to_string(),
        fault.to_string(),
        policy.to_string(),
        f(work_ns as f64 / 1e6, 2),
        f(work_ns as f64 / clean_work_ns as f64, 3),
        f(r.makespan.ns() as f64 / 1e6, 2),
        t.steal_timeouts.to_string(),
        t.quarantines.to_string(),
        t.probe_steals.to_string(),
        lost.to_string(),
    ]
}

fn main() {
    let args = FigArgs::parse();
    let tree = args.small_tree();
    let ranks = if args.full { 1024 } else { 128 };

    let mut rows = Vec::new();
    for &mapping in MAPPINGS {
        let n_nodes = ranks / mapping.ppn();
        let label = mapping.label();

        // Clean baselines: the static one also sets the fault-timing
        // scale T, shared by both policies so cells stay comparable.
        let mut runs = Vec::new();
        for (pname, policy) in [("Tofu", STATIC_TOFU), ("AdaptTofu", ADAPT_TOFU)] {
            let cfg = args
                .config(tree.clone(), n_nodes)
                .with_mapping(mapping)
                .with_victim(policy);
            let r = run_logged(&cfg);
            runs.push((pname, policy, r));
        }
        let t_ns = runs[0].2.makespan.ns();
        let (from_ns, until_ns) = (t_ns / 4, t_ns * 3 / 4);

        // One physical node's worth of ranks, away from rank 0 (which
        // owns the token ring and may not die).
        let slot = (n_nodes / 3).max(1) as usize;
        let domain = mapping.ranks_on_slot(slot, n_nodes);

        let plans: Vec<(&str, FaultPlan)> = vec![
            (
                "node-crash",
                FaultPlan {
                    crash_domains: vec![CrashDomain {
                        ranks: domain.clone(),
                        at_ns: from_ns,
                    }],
                    ..FaultPlan::default()
                },
            ),
            (
                "partition",
                FaultPlan {
                    partitions: vec![Partition {
                        boundary: ranks / 2,
                        from_ns,
                        until_ns,
                    }],
                    ..FaultPlan::default()
                },
            ),
            (
                "brownout",
                FaultPlan {
                    brownouts: domain
                        .iter()
                        .map(|&rank| Brownout {
                            rank,
                            from_ns,
                            until_ns,
                        })
                        .collect(),
                    ..FaultPlan::default()
                },
            ),
        ];

        for (pname, _, clean) in &runs {
            rows.push(row(&label, "none", pname, clean, work_done_ns(clean)));
        }
        for (fname, plan) in &plans {
            for (pname, policy, clean) in &runs {
                let mut cfg = args
                    .config(tree.clone(), n_nodes)
                    .with_mapping(mapping)
                    .with_victim(*policy);
                cfg.fault_plan = plan.clone();
                let r = run_logged(&cfg);
                rows.push(row(&label, fname, pname, &r, work_done_ns(clean)));
            }
        }
    }

    emit(
        &args,
        "ablation_adaptive",
        "Adaptive vs static 1/d-skew under correlated faults",
        &[
            "mapping",
            "fault",
            "policy",
            "work_done_ms",
            "slowdown_vs_clean",
            "makespan_ms",
            "timeouts",
            "quarantines",
            "probe_steals",
            "lost_subtree",
        ],
        &rows,
        None,
    );
}
