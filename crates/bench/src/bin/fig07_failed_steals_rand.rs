//! Figure 7: number of failed steals — random selection vs the
//! reference, across allocations. Fewer failed steals track better
//! performance.

use dws_bench::{chart, emit, run_logged, strategy, FigArgs, MAPPINGS};
use dws_topology::RankMapping;

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut configs: Vec<(String, &str, RankMapping)> =
        vec![("Reference 1/N".into(), "Reference", RankMapping::OneToOne)];
    for m in MAPPINGS {
        configs.push((format!("Rand {}", m.label()), "Rand", *m));
    }
    for (label, strat, mapping) in configs {
        let (victim, steal) = strategy(strat);
        let mut pts = Vec::new();
        for &ranks in &args.large_ranks() {
            let mut cfg = args
                .config(tree.clone(), ranks / mapping.ppn())
                .with_victim(victim)
                .with_steal(steal)
                .with_mapping(mapping);
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            let failed = r.stats.failed_steals();
            rows.push(vec![
                label.clone(),
                r.n_ranks.to_string(),
                failed.to_string(),
            ]);
            pts.push((r.n_ranks as f64, failed as f64));
        }
        series.push((label, pts));
    }
    let refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, p)| (n.as_str(), p.clone()))
        .collect();
    emit(
        &args,
        "fig07",
        "Failed steals: random vs reference selection",
        &["config", "ranks", "failed_steals"],
        &rows,
        Some(chart("failed steals vs ranks", &refs)),
    );
}
