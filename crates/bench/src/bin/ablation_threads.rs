//! Ablation: simulation worker threads on the flagship configuration.
//!
//! Sweeps `--threads` over {1, 2, 4, 8} on the largest-scale run (512
//! ranks compressed, the paper's 8,192 under `--full`) and reports the
//! harness wall-clock speedup. The simulated results are **required**
//! to be bit-identical at every thread count — the sweep asserts the
//! makespan, event/message counts, and config fingerprint against the
//! serial baseline, so a determinism regression fails the figure
//! rather than silently skewing it.
//!
//! Wall-clock speedup depends on the host: on a single hardware core
//! the parallel engine only adds barrier overhead, and this figure will
//! honestly report speedups near (or below) 1. The host's available
//! parallelism is printed alongside so the numbers can be read in
//! context.

use dws_bench::{emit, f, run_logged, strategy, FigArgs};
use std::time::Instant;

const THREAD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = args.flagship_ranks();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("host reports {cores} available hardware threads");
    let (victim, steal) = strategy("Rand");
    let mut rows = Vec::new();
    let mut baseline: Option<(u64, u64, u64, String, f64)> = None;
    for threads in THREAD_COUNTS {
        let mut cfg = args
            .config(tree.clone(), ranks)
            .with_victim(victim)
            .with_steal(steal);
        cfg.threads = threads;
        cfg.collect_trace = false;
        let started = Instant::now();
        let r = run_logged(&cfg);
        let wall_s = started.elapsed().as_secs_f64();
        let sample = (
            r.makespan.ns(),
            r.report.events,
            r.report.messages,
            r.fingerprint.clone(),
            wall_s,
        );
        let (wall_1t, identical) = match &baseline {
            None => {
                baseline = Some(sample);
                (wall_s, true)
            }
            Some(b) => {
                assert_eq!(b.0, sample.0, "makespan differs at {threads} threads");
                assert_eq!(b.1, sample.1, "event count differs at {threads} threads");
                assert_eq!(b.2, sample.2, "message count differs at {threads} threads");
                assert_eq!(b.3, sample.3, "fingerprint differs at {threads} threads");
                (b.4, true)
            }
        };
        rows.push(vec![
            threads.to_string(),
            r.makespan.to_string(),
            f(r.perf.speedup(), 1),
            f(wall_s, 2),
            f(wall_1t / wall_s, 2),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    emit(
        &args,
        "ablation_threads",
        &format!("Parallel engine scaling, {ranks} ranks (Rand, host cores: {cores})"),
        &[
            "threads",
            "makespan",
            "sim speedup",
            "wall s",
            "wall speedup",
            "identical",
        ],
        &rows,
        None,
    );
}
