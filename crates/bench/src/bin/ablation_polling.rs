//! Ablation: message-polling interval. The reference UTS polls every
//! iteration; we batch expansions between polls to bound simulator
//! event counts. This sweep shows how the choice trades victim
//! responsiveness against (simulated) per-poll overhead.

use dws_bench::{emit, f, run_logged, strategy, FigArgs};

fn main() {
    let args = FigArgs::parse();
    let tree = args.large_tree();
    let ranks = if args.full { 1024 } else { 256 };
    let mut rows = Vec::new();
    for poll in [1u32, 2, 4, 8, 16, 32] {
        for name in ["Reference", "Rand"] {
            let (victim, steal) = strategy(name);
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.poll_interval = poll;
            cfg.collect_trace = false;
            let r = run_logged(&cfg);
            rows.push(vec![
                poll.to_string(),
                name.to_string(),
                f(r.perf.speedup(), 1),
                r.stats.failed_steals().to_string(),
            ]);
        }
    }
    emit(
        &args,
        "ablation_polling",
        "Polling interval sweep",
        &["poll_interval", "strategy", "speedup", "failed_steals"],
        &rows,
        None,
    );
}
