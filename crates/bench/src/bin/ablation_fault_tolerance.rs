//! Ablation: victim selection under failure. The paper's strategies
//! were measured on a healthy interconnect; this sweep asks how the
//! ranking holds up when the network misbehaves. Two scenarios:
//!
//! 1. a message-fault sweep (drops + duplicates + heavy-tailed latency
//!    spikes at increasing rates) across all six strategies, reporting
//!    makespan inflation over each strategy's own fault-free baseline
//!    and the recovery work (timeouts, retransmits, discarded replies);
//! 2. a single mid-run rank crash per steal-half strategy, reporting
//!    the subtree lost with the dead rank and how long the surviving
//!    ranks take to regain 90% occupancy.
//!
//! Distance-skewed selection concentrates traffic on nearby victims,
//! so its steal RTTs — and therefore its failure-detection timeouts —
//! are short; the sweep quantifies how much of its advantage survives
//! an unreliable fabric.

use dws_bench::{emit, f, run_logged, strategy, FigArgs, STRATEGIES};
use dws_simnet::{Crash, FaultPlan};

fn main() {
    let args = FigArgs::parse();
    let tree = args.small_tree();
    let ranks = if args.full { 1024 } else { 128 };

    let mut rows = Vec::new();
    for &(name, victim, steal) in STRATEGIES {
        let mut base_ms = 0.0;
        for rate in [0.0, 0.01, 0.02, 0.05] {
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.collect_trace = false;
            cfg.fault_plan = FaultPlan::message_faults(rate, rate * 0.5, rate);
            let r = run_logged(&cfg);
            let t = r.stats.total();
            let ms = r.makespan.ns() as f64 / 1e6;
            if rate == 0.0 {
                base_ms = ms;
            }
            rows.push(vec![
                name.to_string(),
                f(rate, 2),
                f(r.perf.speedup(), 1),
                f(ms / base_ms, 2),
                t.steal_timeouts.to_string(),
                t.retransmits.to_string(),
                (t.dup_replies_dropped + t.stale_replies_dropped).to_string(),
                t.late_work_absorbed.to_string(),
            ]);
        }
    }
    emit(
        &args,
        "ablation_fault_tolerance",
        "Victim policies under message faults",
        &[
            "strategy",
            "fault_rate",
            "speedup",
            "slowdown_vs_clean",
            "timeouts",
            "retransmits",
            "replies_discarded",
            "late_absorbed",
        ],
        &rows,
        None,
    );

    // Scenario 2: one rank dies a quarter of the way into the search.
    let crash_rank = ranks / 3;
    let mut crash_rows = Vec::new();
    for name in ["Reference Half", "Rand Half", "Tofu Half"] {
        let (victim, steal) = strategy(name);
        let baseline = {
            let mut cfg = args
                .config(tree.clone(), ranks)
                .with_victim(victim)
                .with_steal(steal);
            cfg.collect_trace = false;
            run_logged(&cfg)
        };
        let at_ns = baseline.makespan.ns() / 4;
        let mut cfg = args
            .config(tree.clone(), ranks)
            .with_victim(victim)
            .with_steal(steal);
        cfg.fault_plan = FaultPlan {
            crashes: vec![Crash {
                rank: crash_rank,
                at_ns,
            }],
            ..FaultPlan::default()
        };
        let r = run_logged(&cfg);
        let fr = r.fault.as_ref().expect("crash plan produces a report");
        let recovery_ms = r
            .occupancy()
            .and_then(|occ| occ.recovery_time_ns(at_ns, 0.9))
            .map_or("never".to_string(), |ns| f(ns as f64 / 1e6, 2));
        crash_rows.push(vec![
            name.to_string(),
            f(at_ns as f64 / 1e6, 2),
            f(r.makespan.ns() as f64 / baseline.makespan.ns() as f64, 2),
            fr.lost_frontier_nodes.to_string(),
            fr.lost_subtree_nodes.to_string(),
            recovery_ms,
            r.stats.total().token_regenerations.to_string(),
        ]);
    }
    emit(
        &args,
        "ablation_fault_crash",
        &format!("Rank {crash_rank} crash at T/4 (steal-half)"),
        &[
            "strategy",
            "crash_at_ms",
            "slowdown_vs_clean",
            "lost_frontier",
            "lost_subtree",
            "recovery_90pct_ms",
            "token_regens",
        ],
        &crash_rows,
        None,
    );
}
