//! Table I: UTS input tree parameters.
//!
//! Prints the paper's tree parameters alongside the sizes these trees
//! *realize under this implementation's RNG* (binomial realized sizes
//! are heavy-tailed and RNG-stream dependent; see `dws_uts::presets`).
//! The scaled `T3SIM-*` presets used by the compressed-scale figures
//! are included.

use dws_bench::{emit, FigArgs};
use dws_uts::{search, TreeSpec};

fn main() {
    let args = FigArgs::parse();
    let mut rows = Vec::new();
    for w in dws_uts::presets::all() {
        let TreeSpec::Binomial { b0, m, q } = w.spec else {
            continue; // the paper's Table I lists binomial trees only
        };
        let measured = search::search_with_limit(&w, 60_000_000);
        let (nodes, depth) = match &measured {
            Some(s) => (s.nodes.to_string(), s.max_depth.to_string()),
            None => ("> 6e7 (not searched)".to_string(), "-".to_string()),
        };
        let paper_size = match w.name {
            "T3XXL" => "2,793,220,501",
            "T3WL" => "157,063,495,159",
            _ => "-",
        };
        rows.push(vec![
            w.name.to_string(),
            "Binomial".to_string(),
            w.seed.to_string(),
            b0.to_string(),
            m.to_string(),
            format!("{q}"),
            paper_size.to_string(),
            nodes,
            depth,
        ]);
    }
    emit(
        &args,
        "table1",
        "UTS input tree parameters (paper Table I + scaled presets)",
        &[
            "name",
            "type",
            "r",
            "b0",
            "m",
            "q",
            "paper size",
            "realized size",
            "depth",
        ],
        &rows,
        None,
    );
}
