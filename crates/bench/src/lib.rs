//! # dws-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper. Each `fig*`/`table*`/`ablation_*` binary prints the rows the
//! paper plots (plus an ASCII rendition of the chart) and writes a CSV
//! under `results/`.
//!
//! ## Scale mapping
//!
//! The paper's trees realize at 2.8·10⁹ (T3XXL) and 1.57·10¹¹ (T3WL)
//! nodes; ours realize at 7.2·10⁶ and 2.46·10⁷ (see
//! `dws_uts::presets`). A near-critical binomial tree exposes a DFS
//! frontier of ≈ √S nodes, so the number of ranks a tree can feed
//! scales with √S — our T3WL supports roughly 1/16 of the paper's rank
//! counts at comparable starvation levels. The large-scale figures
//! therefore default to ranks {64, 128, 256, 512} standing in for the
//! paper's {1,024 … 8,192}; pass `--full` to run the paper's literal
//! rank counts (slower, more starved, and with *larger* strategy gaps —
//! the effects grow with scale in both systems).
//!
//! Run a figure:
//!
//! ```text
//! cargo run --release -p dws-bench --bin fig03_reference_large
//! cargo run --release -p dws-bench --bin fig03_reference_large -- --full
//! ```

use dws_core::{
    run_experiment_streamed, ExperimentConfig, ExperimentResult, StealAmount, StreamingSetup,
    VictimPolicy,
};
use dws_metrics::perflab::{self, BenchMetric, BenchRecord, Polarity};
use dws_metrics::{ascii_chart, render_table, write_csv};
use dws_simnet::StreamingCfg;
use dws_topology::RankMapping;
use dws_uts::Workload;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct FigArgs {
    /// Run at the paper's literal scale instead of the compressed one.
    pub full: bool,
    /// Directory for CSV output (`results/` by default; `None` disables).
    pub csv_dir: Option<PathBuf>,
    /// Seed override for variance studies.
    pub seed: u64,
    /// Append this figure's [`BenchRecord`] to a trajectory file.
    pub trajectory: Option<PathBuf>,
    /// Simulation worker threads for every run (`--threads`).
    pub threads: u32,
    /// Print a live progress line per telemetry snapshot (`--live`).
    pub live: bool,
    /// Snapshot cadence in simulated nanoseconds (`--snapshot-every`).
    pub snapshot_every_ns: Option<u64>,
    /// Stream snapshot JSONL lines to this file (`--snapshot`).
    pub snapshot: Option<PathBuf>,
    /// Write a flight-recorder dump here on abort (`--flight-dump`).
    pub flight_dump: Option<PathBuf>,
    /// Engine-enforced wall-clock budget in ns (`--wall-budget`);
    /// overrunning it aborts the run and writes the flight dump.
    pub wall_budget_ns: Option<u64>,
    /// When the binary started, for the wall-clock bench metric.
    pub started: Instant,
}

impl FigArgs {
    /// Parse from `std::env::args`: recognizes `--full`,
    /// `--no-csv`, `--csv-dir <dir>`, `--seed <n>`,
    /// `--trajectory <path>`, `--threads <n>`.
    pub fn parse() -> Self {
        let mut args = std::env::args().skip(1);
        let mut out = Self {
            full: false,
            csv_dir: Some(PathBuf::from("results")),
            seed: 0xD15_7EA1,
            trajectory: None,
            threads: 1,
            live: false,
            snapshot_every_ns: None,
            snapshot: None,
            flight_dump: None,
            wall_budget_ns: None,
            started: Instant::now(),
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--no-csv" => out.csv_dir = None,
                "--csv-dir" => {
                    let dir = args.next().expect("--csv-dir needs a value");
                    out.csv_dir = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--trajectory" => {
                    let path = args.next().expect("--trajectory needs a value");
                    out.trajectory = Some(PathBuf::from(path));
                }
                "--threads" => {
                    out.threads = args
                        .next()
                        .expect("--threads needs a value")
                        .parse()
                        .expect("--threads must be an integer");
                    assert!(out.threads >= 1, "--threads must be at least 1");
                }
                "--live" => out.live = true,
                "--snapshot-every" => {
                    let d = args.next().expect("--snapshot-every needs a value");
                    out.snapshot_every_ns =
                        Some(parse_duration_ns(&d).expect("--snapshot-every: bad duration"));
                }
                "--snapshot" => {
                    let path = args.next().expect("--snapshot needs a value");
                    out.snapshot = Some(PathBuf::from(path));
                }
                "--flight-dump" => {
                    let path = args.next().expect("--flight-dump needs a value");
                    out.flight_dump = Some(PathBuf::from(path));
                }
                "--wall-budget" => {
                    let d = args.next().expect("--wall-budget needs a value");
                    out.wall_budget_ns =
                        Some(parse_duration_ns(&d).expect("--wall-budget: bad duration"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full (paper-scale ranks)  --no-csv  \
                         --csv-dir <dir>  --seed <n>  --trajectory <path>  \
                         --threads <n>  --live  --snapshot <path>  \
                         --snapshot-every <dur, e.g. 500ms of simulated time>  \
                         --flight-dump <path>  --wall-budget <dur of host time>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}"),
            }
        }
        out
    }

    /// Rank counts for the paper's small-scale experiments
    /// (Figures 2, 4): the paper's literal 8–128.
    pub fn small_ranks(&self) -> Vec<u32> {
        vec![8, 16, 32, 64, 128]
    }

    /// Rank counts for the large-scale experiments (Figures 3, 5–15):
    /// compressed by default, the paper's 1,024–8,192 under `--full`.
    pub fn large_ranks(&self) -> Vec<u32> {
        if self.full {
            vec![1024, 2048, 4096, 8192]
        } else {
            vec![64, 128, 256, 512]
        }
    }

    /// The single "largest scale" rank count used by the trace figures
    /// (Figures 5, 12, 13) and the granularity sweep (Figure 16).
    pub fn flagship_ranks(&self) -> u32 {
        if self.full {
            8192
        } else {
            512
        }
    }

    /// Workload for the small-scale experiments (paper: T3XXL).
    pub fn small_tree(&self) -> Workload {
        dws_uts::presets::t3xxl()
    }

    /// Workload for the large-scale experiments (paper: T3WL).
    pub fn large_tree(&self) -> Workload {
        dws_uts::presets::t3wl()
    }

    /// Base experiment configuration with this harness's seed.
    pub fn config(&self, workload: Workload, n_nodes: u32) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(workload, n_nodes);
        cfg.seed = self.seed;
        cfg.threads = self.threads;
        cfg
    }

    /// Streaming-telemetry attachment from the `--live` /
    /// `--snapshot` / `--snapshot-every` / `--flight-dump` /
    /// `--wall-budget` flags, or `None` when none was given. Build one
    /// per run — the sink file is truncated on each call.
    pub fn streaming(&self) -> Option<StreamingSetup> {
        if !self.live
            && self.snapshot.is_none()
            && self.snapshot_every_ns.is_none()
            && self.flight_dump.is_none()
            && self.wall_budget_ns.is_none()
        {
            return None;
        }
        let mut cfg = StreamingCfg::default();
        if let Some(every) = self.snapshot_every_ns {
            cfg.snapshot_every_sim_ns = Some(every);
        }
        cfg.live = self.live;
        cfg.flight_dump_path = self.flight_dump.clone();
        cfg.wall_budget = self.wall_budget_ns.map(std::time::Duration::from_nanos);
        let sink: Option<Box<dyn std::io::Write + Send>> = self.snapshot.as_ref().map(|path| {
            let file =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            Box::new(std::io::BufWriter::new(file)) as Box<dyn std::io::Write + Send>
        });
        Some(StreamingSetup { cfg, sink })
    }
}

/// Parse a duration with a unit suffix (`ns`, `us`, `ms`, `s`) into
/// nanoseconds; a bare number is nanoseconds.
pub fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (num, mult) = if let Some(x) = t.strip_suffix("ns") {
        (x, 1u64)
    } else if let Some(x) = t.strip_suffix("us") {
        (x, 1_000)
    } else if let Some(x) = t.strip_suffix("ms") {
        (x, 1_000_000)
    } else if let Some(x) = t.strip_suffix('s') {
        (x, 1_000_000_000)
    } else {
        (t, 1)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?} (expected e.g. 500ms, 2s, 250us)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad duration {s:?} (must be non-negative)"));
    }
    Ok((v * mult as f64) as u64)
}

/// The strategy axes the paper sweeps, with its legend names.
pub const STRATEGIES: &[(&str, VictimPolicy, StealAmount)] = &[
    ("Reference", VictimPolicy::RoundRobin, StealAmount::OneChunk),
    ("Rand", VictimPolicy::Uniform, StealAmount::OneChunk),
    (
        "Tofu",
        VictimPolicy::DistanceSkewed { alpha: 1.0 },
        StealAmount::OneChunk,
    ),
    (
        "Reference Half",
        VictimPolicy::RoundRobin,
        StealAmount::Half,
    ),
    ("Rand Half", VictimPolicy::Uniform, StealAmount::Half),
    (
        "Tofu Half",
        VictimPolicy::DistanceSkewed { alpha: 1.0 },
        StealAmount::Half,
    ),
];

/// Look up a strategy by legend name.
pub fn strategy(name: &str) -> (VictimPolicy, StealAmount) {
    STRATEGIES
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, v, s)| (*v, *s))
        .unwrap_or_else(|| panic!("unknown strategy {name}"))
}

/// The paper's three rank mappings.
pub const MAPPINGS: &[RankMapping] = &[
    RankMapping::OneToOne,
    RankMapping::RoundRobin { ppn: 8 },
    RankMapping::Grouped { ppn: 8 },
];

/// One simulated run, buffered so [`emit`] can fold the whole figure
/// into a single [`BenchRecord`] for the trajectory store.
struct RunSample {
    makespan_ns: f64,
    speedup: f64,
    events: f64,
    wall_s: f64,
    fingerprint: String,
}

static RUNS: Mutex<Vec<RunSample>> = Mutex::new(Vec::new());

/// Run one configured experiment, echoing progress to stderr.
pub fn run_logged(cfg: &ExperimentConfig) -> ExperimentResult {
    run_logged_streamed(cfg, None)
}

/// [`run_logged`] with a streaming-telemetry attachment (see
/// [`FigArgs::streaming`]); the schedule — and thus every bench metric
/// except wall time — is identical with and without it.
pub fn run_logged_streamed(
    cfg: &ExperimentConfig,
    streaming: Option<StreamingSetup>,
) -> ExperimentResult {
    let started = std::time::Instant::now();
    eprint!(
        "  running {:24} ranks={:5} ... ",
        cfg.label(),
        cfg.mapping.rank_count(cfg.n_nodes)
    );
    let r = run_experiment_streamed(cfg, streaming);
    let wall = started.elapsed();
    eprintln!(
        "makespan={} speedup={:.1} ({:.1?})",
        r.makespan,
        r.perf.speedup(),
        wall
    );
    RUNS.lock()
        .expect("sample buffer poisoned")
        .push(RunSample {
            makespan_ns: r.makespan.ns() as f64,
            speedup: r.perf.speedup(),
            events: r.report.events as f64,
            wall_s: wall.as_secs_f64(),
            fingerprint: r.fingerprint.clone(),
        });
    r
}

/// Fold every run the binary performed into one [`BenchRecord`].
///
/// The makespan/speedup metrics aggregate across *heterogeneous*
/// configurations (the figure's whole sweep), so their CI captures the
/// sweep's spread, not sampling noise — a coarse but stable signature
/// of the simulated results. The wall/throughput metrics track the
/// harness itself. The fingerprint hashes every run's config
/// fingerprint in order, so any change to what the figure sweeps
/// shows up as a config change in `dws diff`.
fn figure_record(args: &FigArgs, fig_id: &str) -> BenchRecord {
    let samples = std::mem::take(&mut *RUNS.lock().expect("sample buffer poisoned"));
    let wall_s = args.started.elapsed().as_secs_f64();
    let mut metrics = vec![BenchMetric::point(
        "wall_s_total",
        "s",
        Polarity::LowerIsBetter,
        wall_s,
    )];
    let fingerprint = if samples.is_empty() {
        perflab::fingerprint(fig_id)
    } else {
        let makespans: Vec<f64> = samples.iter().map(|s| s.makespan_ns).collect();
        let speedups: Vec<f64> = samples.iter().map(|s| s.speedup).collect();
        let sim_wall: f64 = samples.iter().map(|s| s.wall_s).sum();
        let events: f64 = samples.iter().map(|s| s.events).sum();
        metrics.push(BenchMetric::point(
            "sim_runs",
            "count",
            Polarity::Neutral,
            samples.len() as f64,
        ));
        metrics.push(BenchMetric::from_samples(
            "makespan_ns",
            "ns",
            Polarity::LowerIsBetter,
            &makespans,
        ));
        metrics.push(BenchMetric::from_samples(
            "speedup",
            "x",
            Polarity::HigherIsBetter,
            &speedups,
        ));
        if sim_wall > 0.0 {
            metrics.push(BenchMetric::point(
                "events_per_sec",
                "1/s",
                Polarity::HigherIsBetter,
                events / sim_wall,
            ));
        }
        let combined: String = samples.iter().map(|s| s.fingerprint.as_str()).collect();
        perflab::fingerprint(&combined)
    };
    if let Some(rss) = perflab::peak_rss_bytes() {
        metrics.push(BenchMetric::point(
            "peak_rss_bytes",
            "B",
            Polarity::LowerIsBetter,
            rss as f64,
        ));
    }
    BenchRecord {
        schema: perflab::BENCH_SCHEMA_VERSION,
        bench: fig_id.to_string(),
        git_rev: perflab::git_rev(),
        fingerprint,
        trial_seed: args.seed,
        unix_time_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        trials: samples.len().max(1) as u64,
        threads: args.threads,
        metrics,
    }
}

/// Emit a figure: aligned table on stdout, optional ASCII chart, CSV
/// under the configured directory.
pub fn emit(
    args: &FigArgs,
    fig_id: &str,
    title: &str,
    header: &[&str],
    rows: &[Vec<String>],
    chart: Option<String>,
) {
    println!("== {fig_id}: {title} ==");
    println!("{}", render_table(header, rows));
    if let Some(chart) = chart {
        println!("{chart}");
    }
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create results directory");
        let path = dir.join(format!("{fig_id}.csv"));
        let file = std::fs::File::create(&path).expect("cannot create CSV file");
        write_csv(std::io::BufWriter::new(file), header, rows).expect("cannot write CSV");
        println!("[csv written to {}]", path.display());
    }
    let record = figure_record(args, fig_id);
    if let Some(dir) = &args.csv_dir {
        let path = dir.join(format!("{fig_id}.record.json"));
        std::fs::write(&path, format!("{}\n", record.to_json()))
            .expect("cannot write bench record");
        println!("[bench record written to {}]", path.display());
    }
    if let Some(traj) = &args.trajectory {
        perflab::append_record(&traj.to_string_lossy(), &record)
            .expect("cannot append to trajectory");
        println!("[bench record appended to {}]", traj.display());
    }
}

/// Convenience: format a float with fixed precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Render an ASCII chart sized for figure output.
pub fn chart(title: &str, series: &[(&str, Vec<(f64, f64)>)]) -> String {
    ascii_chart(title, series, 64, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_lookup() {
        let (v, s) = strategy("Tofu Half");
        assert_eq!(v.label(), "Tofu");
        assert_eq!(s, StealAmount::Half);
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        strategy("Bogus");
    }

    #[test]
    fn scale_mapping() {
        let quick = FigArgs {
            full: false,
            csv_dir: None,
            seed: 0,
            trajectory: None,
            threads: 1,
            live: false,
            snapshot_every_ns: None,
            snapshot: None,
            flight_dump: None,
            wall_budget_ns: None,
            started: Instant::now(),
        };
        let full = FigArgs {
            full: true,
            ..quick.clone()
        };
        assert_eq!(quick.large_ranks(), vec![64, 128, 256, 512]);
        assert_eq!(full.large_ranks(), vec![1024, 2048, 4096, 8192]);
        assert_eq!(quick.flagship_ranks(), 512);
        assert_eq!(full.flagship_ranks(), 8192);
    }

    #[test]
    fn six_strategies_three_mappings() {
        assert_eq!(STRATEGIES.len(), 6);
        assert_eq!(MAPPINGS.len(), 3);
    }
}
