//! Criterion microbenchmarks for the building blocks: SHA-1 hashing,
//! UTS child generation, the chunked steal stack, the alias sampler and
//! victim selectors, the discrete-event queue, the Chase–Lev deque, and
//! a small end-to-end simulated experiment.
//!
//! These complement the `fig*` binaries (which regenerate the paper's
//! charts): the figures measure *simulated* time; these measure the
//! *host* cost of the primitives the simulator and the shared-memory
//! executor are built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dws_core::{
    run_experiment, AliasTable, ChunkedStack, ExperimentConfig, StealAmount, VictimPolicy,
};
use dws_simnet::{Actor, ConstantLatency, Ctx, DetRng, Rank, SimConfig, Simulation};
use dws_topology::{Job, RankMapping};
use dws_uts::{presets, sha1::Sha1, Node, RngState};
use std::sync::Arc;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [24usize, 64, 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha1::digest(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_uts_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts");
    let spec = presets::t3xxl().spec;
    let root = spec.root(316);
    g.bench_function("spawn_child", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(root.state.spawn(i, 1))
        })
    });
    g.bench_function("children_of_root_b0_2000", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            spec.children_into(black_box(&root), 1, &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("sequential_search_xs_tree", |b| {
        let w = presets::t3sim_xs();
        b.iter(|| black_box(dws_uts::search(&w).nodes))
    });
    g.finish();
}

fn bench_chunked_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunked_stack");
    let node = Node {
        state: RngState::from_seed(1),
        height: 0,
    };
    g.bench_function("push_pop_cycle", |b| {
        let mut s = ChunkedStack::new(20);
        b.iter(|| {
            for _ in 0..100 {
                s.push(black_box(node));
            }
            for _ in 0..100 {
                black_box(s.pop());
            }
        })
    });
    g.bench_function("steal_half_of_100_chunks", |b| {
        b.iter_with_setup(
            || {
                let mut s = ChunkedStack::new(20);
                for _ in 0..2000 {
                    s.push(node);
                }
                s
            },
            |mut s| {
                let loot = s.steal_chunks(50);
                black_box(loot.len())
            },
        )
    });
    g.finish();
}

fn bench_victim_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("victim_selection");
    let job = Arc::new(Job::compact(1024, RankMapping::OneToOne));
    g.bench_function("alias_build_1024", |b| {
        b.iter(|| {
            let weights: Vec<f64> = (0..1023)
                .map(|j| dws_core::skew_weight(&job, 0, j + 1, 1.0))
                .collect();
            black_box(AliasTable::new(&weights))
        })
    });
    let policies = [
        ("round_robin", VictimPolicy::RoundRobin),
        ("uniform", VictimPolicy::Uniform),
        ("skew_alias", VictimPolicy::DistanceSkewed { alpha: 1.0 }),
    ];
    for (name, policy) in policies {
        let mut selector = policy.build(&job, 0, 2048);
        let mut rng = DetRng::new(7);
        g.bench_function(format!("draw_{name}"), |b| {
            b.iter(|| black_box(selector.next_victim(&mut rng)))
        });
    }
    let mut rejection = VictimPolicy::DistanceSkewed { alpha: 1.0 }.build(&job, 0, 0);
    let mut rng = DetRng::new(7);
    g.bench_function("draw_skew_rejection", |b| {
        b.iter(|| black_box(rejection.next_victim(&mut rng)))
    });
    g.finish();
}

/// Actor ping-ponging a counter, to measure raw engine throughput.
struct Pinger {
    left: u64,
}
impl Actor for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.send(1, 8, self.left);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: Rank, msg: u64) {
        if msg > 0 {
            ctx.send(from, 8, msg - 1);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _t: u64) {}
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_throughput_10k_messages", |b| {
        b.iter(|| {
            let actors = vec![Pinger { left: 10_000 }, Pinger { left: 0 }];
            let mut sim = Simulation::new(actors, ConstantLatency(100), SimConfig::default());
            black_box(sim.run().events)
        })
    });
    g.finish();
}

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("chase_lev");
    g.bench_function("owner_push_pop", |b| {
        let (w, _s) = dws_shmem::new_deque::<u64>(1024);
        b.iter(|| {
            for i in 0..64u64 {
                w.push(black_box(i));
            }
            for _ in 0..64 {
                black_box(w.pop());
            }
        })
    });
    g.bench_function("uncontended_steal", |b| {
        let (w, s) = dws_shmem::new_deque::<u64>(1024);
        for i in 0..1_000_000u64 {
            if i % 64 == 0 {
                w.push(i);
            }
        }
        b.iter(|| black_box(s.steal()))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("simulated_16_ranks_xs_tree", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::new(presets::t3sim_xs(), 16)
                .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
                .with_steal(StealAmount::Half);
            cfg.collect_trace = false;
            black_box(run_experiment(&cfg).total_nodes)
        })
    });
    g.bench_function("threads_4_xs_tree", |b| {
        b.iter(|| black_box(dws_shmem::parallel_search(&presets::t3sim_xs(), 4).stats.nodes))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_uts_generation,
    bench_chunked_stack,
    bench_victim_selection,
    bench_engine,
    bench_deque,
    bench_end_to_end
);
criterion_main!(benches);
