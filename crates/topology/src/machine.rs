//! Machine-wide description of a Tofu-interconnected system.
//!
//! A [`Machine`] is a 3-D torus of 2×3×2 cubes. The K Computer instance
//! ([`Machine::k_computer`]) uses the production torus extents
//! 24 × 18 × 16, giving 82,944 nodes — "over 80,000" as the paper puts
//! it. Smaller machines are useful for tests and CI-scale experiments.
//!
//! Nodes are identified by a dense [`NodeId`] so that other crates can
//! index per-node state with plain vectors. The id layout enumerates the
//! intra-cube axes fastest (`c`, then `a`, then `b`), so consecutive ids
//! walk blade-by-blade through a cube before moving to the next cube —
//! matching how the K job scheduler hands out physically adjacent nodes.

use crate::coord::{TofuCoord, CUBE_A, CUBE_C, NODES_PER_CUBE};

/// Dense identifier of a physical compute node within a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, usable for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A Tofu machine: a 3-D torus of 12-node cubes plus a rack grouping.
///
/// Racks matter only for the latency model: the paper reports that a
/// rack holds 96 nodes (8 cubes) and that intra-rack links are faster
/// than inter-rack links. We group racks along the `z` axis: cubes
/// `(x, y, 8k..8k+8)` share rack `(x, y, k)`.
///
/// # Example
///
/// ```
/// use dws_topology::Machine;
///
/// let k = Machine::k_computer();
/// assert_eq!(k.node_count(), 82_944); // "over 80,000 nodes"
///
/// // Node ids are dense, so per-node state can live in plain vectors.
/// let coord = k.coord(dws_topology::NodeId(0));
/// assert_eq!(k.node_id(coord).index(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Torus extents in cube units.
    dims: (u16, u16, u16),
    /// Number of cubes stacked into one rack along `z`.
    cubes_per_rack: u16,
}

impl Machine {
    /// Build a machine with the given torus extents (in cubes).
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn new(x: u16, y: u16, z: u16) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus extents must be non-zero");
        Self {
            dims: (x, y, z),
            cubes_per_rack: 8,
        }
    }

    /// The K Computer: 24 × 18 × 16 cubes of 12 nodes = 82,944 nodes.
    pub fn k_computer() -> Self {
        Self::new(24, 18, 16)
    }

    /// A small machine for tests: 4 × 3 × 4 cubes = 576 nodes.
    pub fn small() -> Self {
        Self::new(4, 3, 4)
    }

    /// A single-cube machine (12 nodes); every pair of nodes is at most
    /// a cube apart, which makes latency classes easy to assert in tests.
    pub fn one_cube() -> Self {
        Self::new(1, 1, 1)
    }

    /// Smallest machine whose node count is at least `want` nodes,
    /// grown in a balanced fashion (used by experiment configs that only
    /// specify a rank count).
    pub fn with_capacity(want: u32) -> Self {
        let mut dims = [1u16, 1, 1];
        let mut axis = 0;
        while (dims[0] as u32) * (dims[1] as u32) * (dims[2] as u32) * NODES_PER_CUBE < want {
            dims[axis] += 1;
            axis = (axis + 1) % 3;
        }
        Self::new(dims[0], dims[1], dims[2])
    }

    /// A machine that `want` nodes fill *uniformly*: every cube receives
    /// the same number of nodes (the largest divisor of `want` that is
    /// at most [`NODES_PER_CUBE`]), and the cube count factors into the
    /// most balanced torus extents available. Paired with
    /// [`AllocationPolicy::TorusFill`](crate::AllocationPolicy::TorusFill),
    /// the resulting placement is translation-invariant over the torus,
    /// which is what the shared offset-alias victim sampler exploits.
    ///
    /// # Panics
    /// Panics if `want` is zero or the required extent overflows `u16`.
    pub fn torus_for_nodes(want: u32) -> Self {
        assert!(want > 0, "cannot size a machine for zero nodes");
        let per_cube = (1..=NODES_PER_CUBE)
            .rev()
            .find(|s| want.is_multiple_of(*s))
            .expect("1 always divides");
        let cubes = want / per_cube;
        // Most balanced factorization cubes = x*y*z: minimize the
        // largest extent, then the perimeter.
        let mut best: Option<(u32, u32, (u16, u16, u16))> = None;
        for x in 1..=cubes {
            if !cubes.is_multiple_of(x) {
                continue;
            }
            let yz = cubes / x;
            for y in 1..=yz {
                if !yz.is_multiple_of(y) {
                    continue;
                }
                let z = yz / y;
                if x > u16::MAX as u32 || y > u16::MAX as u32 || z > u16::MAX as u32 {
                    continue;
                }
                let key = (x.max(y).max(z), x + y + z);
                let cand = (key.0, key.1, (x as u16, y as u16, z as u16));
                best = Some(match best {
                    None => cand,
                    Some(cur) if (cand.0, cand.1) < (cur.0, cur.1) => cand,
                    Some(cur) => cur,
                });
            }
        }
        let (_, _, (x, y, z)) = best.expect("every count has the trivial factorization");
        Self::new(x, y, z)
    }

    /// Torus extents in cube units.
    #[inline]
    pub fn dims(&self) -> (u16, u16, u16) {
        self.dims
    }

    /// Total number of compute nodes.
    #[inline]
    pub fn node_count(&self) -> u32 {
        (self.dims.0 as u32) * (self.dims.1 as u32) * (self.dims.2 as u32) * NODES_PER_CUBE
    }

    /// Number of cubes grouped into one rack along the `z` axis.
    #[inline]
    pub fn cubes_per_rack(&self) -> u16 {
        self.cubes_per_rack
    }

    /// Map a node id to its 6-D coordinate.
    ///
    /// # Panics
    /// Panics if the id is out of range for this machine.
    pub fn coord(&self, node: NodeId) -> TofuCoord {
        assert!(
            node.0 < self.node_count(),
            "node id {} out of range (machine has {} nodes)",
            node.0,
            self.node_count()
        );
        let per_cube = NODES_PER_CUBE;
        let cube_idx = node.0 / per_cube;
        let in_cube = node.0 % per_cube;
        // Intra-cube: c fastest, then a, then b — walks one blade
        // (fixed b) fully before moving to the next blade.
        let c = (in_cube % CUBE_C as u32) as u16;
        let a = ((in_cube / CUBE_C as u32) % CUBE_A as u32) as u16;
        let b = (in_cube / (CUBE_C as u32 * CUBE_A as u32)) as u16;
        // Cube layout: x fastest, then y, then z.
        let (dx, dy, _dz) = self.dims;
        let x = (cube_idx % dx as u32) as u16;
        let y = ((cube_idx / dx as u32) % dy as u32) as u16;
        let z = (cube_idx / (dx as u32 * dy as u32)) as u16;
        TofuCoord::new(x, y, z, a, b, c)
    }

    /// Map a 6-D coordinate back to its dense node id.
    ///
    /// # Panics
    /// Panics if the coordinate lies outside the machine.
    pub fn node_id(&self, coord: TofuCoord) -> NodeId {
        let (dx, dy, dz) = self.dims;
        assert!(
            coord.x < dx && coord.y < dy && coord.z < dz,
            "coordinate {coord:?} outside machine dims {:?}",
            self.dims
        );
        let cube_idx = coord.x as u32 + dx as u32 * (coord.y as u32 + dy as u32 * coord.z as u32);
        let in_cube =
            coord.c as u32 + CUBE_C as u32 * (coord.a as u32 + CUBE_A as u32 * coord.b as u32);
        NodeId(cube_idx * NODES_PER_CUBE + in_cube)
    }

    /// Rack identifier of a node; nodes in the same rack enjoy faster
    /// links than nodes in different racks.
    pub fn rack_of(&self, coord: TofuCoord) -> (u16, u16, u16) {
        (coord.x, coord.y, coord.z / self.cubes_per_rack)
    }

    /// Euclidean distance between two nodes in the 6-D coordinate space,
    /// honouring torus wrap-around (this is the paper's `e(i, j)`).
    pub fn euclidean(&self, p: NodeId, q: NodeId) -> f64 {
        self.coord(p).euclidean(&self.coord(q), self.dims)
    }

    /// Hop count between two nodes.
    pub fn hops(&self, p: NodeId, q: NodeId) -> u32 {
        self.coord(p).hops(&self.coord(q), self.dims)
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_computer_node_count_matches_paper() {
        let k = Machine::k_computer();
        assert_eq!(k.node_count(), 82_944);
        assert!(k.node_count() > 80_000, "paper: over 80,000 nodes");
    }

    #[test]
    fn coord_roundtrip_small_machine() {
        let m = Machine::small();
        for node in m.nodes() {
            let c = m.coord(node);
            assert_eq!(m.node_id(c), node, "roundtrip failed for {node:?} -> {c:?}");
        }
    }

    #[test]
    fn consecutive_ids_share_blades_within_cube() {
        let m = Machine::one_cube();
        // Ids 0..4 should form blade b=0, 4..8 blade b=1, 8..12 blade b=2.
        for blade in 0..3u32 {
            let base = m.coord(NodeId(blade * 4));
            for off in 1..4u32 {
                let next = m.coord(NodeId(blade * 4 + off));
                assert!(
                    base.same_blade(&next),
                    "ids {} and {} should share a blade",
                    blade * 4,
                    blade * 4 + off
                );
            }
        }
        assert!(!m.coord(NodeId(3)).same_blade(&m.coord(NodeId(4))));
    }

    #[test]
    fn with_capacity_covers_request() {
        for want in [1u32, 12, 13, 100, 1000, 9000] {
            let m = Machine::with_capacity(want);
            assert!(m.node_count() >= want);
        }
        // Growth is balanced: no axis should explode.
        let m = Machine::with_capacity(8192);
        let (x, y, z) = m.dims();
        let max = x.max(y).max(z) as u32;
        let min = x.min(y).min(z) as u32;
        assert!(max <= 2 * min + 1, "unbalanced dims {:?}", m.dims());
    }

    #[test]
    fn torus_for_nodes_fills_cubes_uniformly_and_balances_dims() {
        // 8192 = 2^13: best per-cube divisor <= 12 is 8 -> 1024 cubes.
        let m = Machine::torus_for_nodes(8192);
        let (x, y, z) = m.dims();
        assert_eq!(x as u32 * y as u32 * z as u32, 1024);
        assert!(x.max(y).max(z) <= 16, "unbalanced dims {:?}", m.dims());
        assert!(8192u32.is_multiple_of(x as u32 * y as u32 * z as u32));
        // A full-cube count uses all 12 slots.
        let m = Machine::torus_for_nodes(96);
        assert_eq!(m.node_count() / NODES_PER_CUBE, 8);
        // Primes larger than 12 degrade to one node per cube.
        let m = Machine::torus_for_nodes(13);
        let (x, y, z) = m.dims();
        assert_eq!(x as u32 * y as u32 * z as u32, 13);
    }

    #[test]
    fn rack_grouping_is_eight_cubes_along_z() {
        let m = Machine::new(2, 2, 16);
        let a = m.node_id(TofuCoord::new(0, 0, 0, 0, 0, 0));
        let b = m.node_id(TofuCoord::new(0, 0, 7, 0, 0, 0));
        let c = m.node_id(TofuCoord::new(0, 0, 8, 0, 0, 0));
        assert_eq!(m.rack_of(m.coord(a)), m.rack_of(m.coord(b)));
        assert_ne!(m.rack_of(m.coord(a)), m.rack_of(m.coord(c)));
    }

    #[test]
    fn euclidean_matches_manual_computation() {
        let m = Machine::new(8, 8, 8);
        let p = m.node_id(TofuCoord::new(0, 0, 0, 0, 0, 0));
        let q = m.node_id(TofuCoord::new(7, 0, 0, 0, 0, 0));
        // Torus: x distance is 1.
        assert!((m.euclidean(p, q) - 1.0).abs() < 1e-12);
        assert_eq!(m.hops(p, q), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_rejects_out_of_range_id() {
        let m = Machine::one_cube();
        m.coord(NodeId(12));
    }
}
