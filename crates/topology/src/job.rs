//! A placed job: machine + allocation + rank mapping + latency model.
//!
//! [`Job`] is the interface the simulator and the work-stealing runtime
//! consume: it answers "where does rank *i* live", "how far is rank *i*
//! from rank *j*" (the paper's `e(i, j)`), and "how long does a
//! `bytes`-sized message from *i* to *j* take".
//!
//! Per-rank coordinates are cached at construction so that the O(N²)
//! weight computation of the distance-skewed victim selector stays
//! cheap even at 8,192 ranks.

use crate::allocation::{AllocationPolicy, JobAllocation};
use crate::coord::{TofuCoord, NODES_PER_CUBE};
use crate::latency::{LatencyModel, LatencyParams};
use crate::machine::{Machine, NodeId};
use crate::mapping::{Rank, RankMapping};
use std::sync::OnceLock;

/// Certificate that a placed job is invariant under torus translation:
/// every cube of the machine hosts the *same* intra-cube slot set, and
/// every occupied node hosts the same number of ranks. Under this
/// symmetry the Euclidean distance `e(i, j)` depends only on the
/// observer's intra-cube slot, the cube-coordinate offset, and the
/// target's intra-cube slot — so one alias table per observer slot
/// class serves every rank (see the distance-skewed victim selector).
#[derive(Debug, Clone)]
pub struct TorusSymmetry {
    /// Occupied intra-cube slot indices (ascending), identical in every
    /// cube. At most [`NODES_PER_CUBE`] entries.
    pub slots: Vec<u16>,
    /// Ranks hosted by every occupied node (uniform across the job).
    pub ppn: u32,
    /// All ranks, grouped `[cube][slot][k]`: the rank at
    /// `(cube_idx * slots.len() + slot_pos) * ppn + k`, with ranks
    /// ascending within each node cell. `cube_idx` is the machine's
    /// dense cube index (x fastest, then y, then z).
    pub ranks: Vec<Rank>,
    /// For each rank: its `(cube_idx, slot_pos, k)` position in the
    /// grouping above.
    pub rank_cell: Vec<(u32, u32, u32)>,
}

/// A job placed on a machine, ready to be simulated.
#[derive(Debug, Clone)]
pub struct Job {
    machine: Machine,
    mapping: RankMapping,
    latency: LatencyModel,
    /// Physical node of each rank.
    rank_nodes: Vec<NodeId>,
    /// Cached coordinate of each rank's node.
    rank_coords: Vec<TofuCoord>,
    /// Lazily computed torus-translation symmetry certificate.
    symmetry: OnceLock<Option<TorusSymmetry>>,
}

impl Job {
    /// Place a job: allocate `n_nodes` nodes under `alloc_policy`, then
    /// map `mapping.rank_count(n_nodes)` ranks onto them.
    pub fn place(
        machine: Machine,
        n_nodes: u32,
        alloc_policy: AllocationPolicy,
        mapping: RankMapping,
        latency: LatencyParams,
    ) -> Self {
        let alloc = JobAllocation::allocate(&machine, n_nodes, alloc_policy);
        mapping.check(&alloc).expect("invalid mapping");
        let slots = mapping.slots(n_nodes);
        let rank_nodes: Vec<NodeId> = slots.iter().map(|&s| alloc.node(s)).collect();
        let rank_coords = rank_nodes.iter().map(|&n| machine.coord(n)).collect();
        Self {
            machine,
            mapping,
            latency: LatencyModel::new(latency),
            rank_nodes,
            rank_coords,
            symmetry: OnceLock::new(),
        }
    }

    /// Convenience: a compact-rectangle job on a machine sized to fit,
    /// with default latencies — the common case in examples and tests.
    pub fn compact(n_nodes: u32, mapping: RankMapping) -> Self {
        let machine = if n_nodes <= Machine::k_computer().node_count() {
            Machine::k_computer()
        } else {
            Machine::with_capacity(n_nodes)
        };
        Self::place(
            machine,
            n_nodes,
            AllocationPolicy::CompactRectangle,
            mapping,
            LatencyParams::default(),
        )
    }

    /// Number of ranks in the job.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.rank_nodes.len() as u32
    }

    /// Number of distinct physical nodes used.
    pub fn n_nodes(&self) -> u32 {
        let mut nodes = self.rank_nodes.clone();
        nodes.sort();
        nodes.dedup();
        nodes.len() as u32
    }

    /// The machine this job runs on.
    #[inline]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The rank mapping in force.
    #[inline]
    pub fn mapping(&self) -> RankMapping {
        self.mapping
    }

    /// Physical node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.rank_nodes[rank as usize]
    }

    /// Tofu coordinate of `rank`'s node.
    #[inline]
    pub fn coord_of(&self, rank: Rank) -> TofuCoord {
        self.rank_coords[rank as usize]
    }

    /// True iff the two ranks share a physical node.
    #[inline]
    pub fn same_node(&self, i: Rank, j: Rank) -> bool {
        self.rank_nodes[i as usize] == self.rank_nodes[j as usize]
    }

    /// The paper's `e(i, j)`: Euclidean distance between the ranks'
    /// nodes in 6-D Tofu space (0.0 when they share a node).
    #[inline]
    pub fn euclidean(&self, i: Rank, j: Rank) -> f64 {
        self.rank_coords[i as usize].euclidean(&self.rank_coords[j as usize], self.machine.dims())
    }

    /// Network hops between the ranks' nodes.
    #[inline]
    pub fn hops(&self, i: Rank, j: Rank) -> u32 {
        self.rank_coords[i as usize].hops(&self.rank_coords[j as usize], self.machine.dims())
    }

    /// One-way message latency in nanoseconds from rank `i` to rank `j`
    /// for a `bytes`-sized payload.
    #[inline]
    pub fn latency_ns(&self, i: Rank, j: Rank, bytes: usize) -> u64 {
        self.latency.latency_ns(
            &self.machine,
            self.rank_coords[i as usize],
            self.rank_coords[j as usize],
            bytes,
        )
    }

    /// The latency model in force.
    #[inline]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The job's torus-translation symmetry certificate, if it has one
    /// (computed once, cached). Present iff every cube of the machine
    /// hosts the same non-empty intra-cube slot set and every occupied
    /// node hosts the same number of ranks — the precondition for
    /// sharing one distance-skew alias table per slot class.
    pub fn torus_symmetry(&self) -> Option<&TorusSymmetry> {
        self.symmetry
            .get_or_init(|| self.detect_symmetry())
            .as_ref()
    }

    fn detect_symmetry(&self) -> Option<TorusSymmetry> {
        let n = self.n_ranks();
        if n < 2 {
            return None;
        }
        let (dx, dy, dz) = self.machine.dims();
        let cubes = dx as u32 * dy as u32 * dz as u32;
        // Ranks hosted per node, dense over the machine.
        let mut per_node = vec![0u32; self.machine.node_count() as usize];
        for nd in &self.rank_nodes {
            per_node[nd.index()] += 1;
        }
        // Slot set and ppn of cube 0 set the pattern.
        let slots: Vec<u16> = (0..NODES_PER_CUBE)
            .filter(|&s| per_node[s as usize] > 0)
            .map(|s| s as u16)
            .collect();
        if slots.is_empty() {
            return None;
        }
        let ppn = per_node[slots[0] as usize];
        // Every cube must repeat it exactly.
        for cube in 0..cubes {
            for s in 0..NODES_PER_CUBE {
                let expect = if slots.contains(&(s as u16)) { ppn } else { 0 };
                if per_node[(cube * NODES_PER_CUBE + s) as usize] != expect {
                    return None;
                }
            }
        }
        debug_assert_eq!(cubes * slots.len() as u32 * ppn, n);
        // Group ranks into [cube][slot][k] cells, ascending within each.
        let cells = (cubes as usize) * slots.len();
        let mut ranks = vec![0 as Rank; n as usize];
        let mut rank_cell = vec![(0u32, 0u32, 0u32); n as usize];
        let mut cursor = vec![0u32; cells];
        let mut slot_pos = [u32::MAX; NODES_PER_CUBE as usize];
        for (pos, &s) in slots.iter().enumerate() {
            slot_pos[s as usize] = pos as u32;
        }
        for rank in 0..n {
            let node = self.rank_nodes[rank as usize].0;
            let cube = node / NODES_PER_CUBE;
            let pos = slot_pos[(node % NODES_PER_CUBE) as usize];
            let cell = cube as usize * slots.len() + pos as usize;
            let k = cursor[cell];
            cursor[cell] += 1;
            ranks[cell * ppn as usize + k as usize] = rank;
            rank_cell[rank as usize] = (cube, pos, k);
        }
        Some(TorusSymmetry {
            slots,
            ppn,
            ranks,
            rank_cell,
        })
    }

    /// Conservative lookahead bound for parallel simulation: no message
    /// between ranks on *different nodes* can take less than this
    /// (see [`LatencyParams::min_remote_ns`]). Sharding that keeps each
    /// node's ranks together may therefore advance shards independently
    /// within windows of this width.
    #[inline]
    pub fn lookahead_ns(&self) -> u64 {
        self.latency.params().min_remote_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_job_has_n_ranks_on_n_nodes() {
        let job = Job::compact(128, RankMapping::OneToOne);
        assert_eq!(job.n_ranks(), 128);
        assert_eq!(job.n_nodes(), 128);
        for i in 0..127 {
            assert!(!job.same_node(i, i + 1));
        }
    }

    #[test]
    fn grouped_job_shares_nodes_in_blocks() {
        let job = Job::compact(16, RankMapping::Grouped { ppn: 8 });
        assert_eq!(job.n_ranks(), 128);
        assert_eq!(job.n_nodes(), 16);
        assert!(job.same_node(0, 7));
        assert!(!job.same_node(7, 8));
        assert_eq!(job.euclidean(0, 7), 0.0);
    }

    #[test]
    fn round_robin_job_separates_neighbours() {
        let job = Job::compact(16, RankMapping::RoundRobin { ppn: 8 });
        assert_eq!(job.n_ranks(), 128);
        // Rank i and i+16 share a node; i and i+1 never do.
        assert!(job.same_node(0, 16));
        for i in 0..127 {
            assert!(!job.same_node(i, i + 1), "ranks {i},{} colocated", i + 1);
        }
    }

    #[test]
    fn latency_respects_colocation() {
        let job = Job::compact(16, RankMapping::Grouped { ppn: 8 });
        let close = job.latency_ns(0, 1, 64);
        let far = job.latency_ns(0, 127, 64);
        assert!(
            close < far,
            "same-node {close} should beat cross-node {far}"
        );
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let job = Job::compact(64, RankMapping::OneToOne);
        for i in (0..64).step_by(7) {
            assert_eq!(job.euclidean(i, i), 0.0);
            for j in (0..64).step_by(11) {
                assert_eq!(job.euclidean(i, j), job.euclidean(j, i));
                assert_eq!(job.hops(i, j), job.hops(j, i));
            }
        }
    }

    #[test]
    fn torus_fill_job_is_symmetric_and_compact_is_not() {
        let machine = crate::Machine::torus_for_nodes(96);
        let job = Job::place(
            machine,
            96,
            AllocationPolicy::TorusFill,
            RankMapping::OneToOne,
            LatencyParams::default(),
        );
        let sym = job.torus_symmetry().expect("TorusFill is symmetric");
        assert_eq!(sym.ppn, 1);
        assert_eq!(sym.ranks.len(), 96);
        let cubes = 96 / sym.slots.len() as u32;
        // Every rank's cell round-trips through the grouping.
        for rank in 0..96u32 {
            let (cube, pos, k) = sym.rank_cell[rank as usize];
            assert!(cube < cubes);
            let idx =
                (cube as usize * sym.slots.len() + pos as usize) * sym.ppn as usize + k as usize;
            assert_eq!(sym.ranks[idx], rank);
        }
        // A compact sub-box of the K machine has no such symmetry.
        let compact = Job::compact(96, RankMapping::OneToOne);
        assert!(compact.torus_symmetry().is_none());
    }

    #[test]
    fn torus_fill_symmetry_survives_grouped_mapping() {
        let machine = crate::Machine::torus_for_nodes(48);
        let job = Job::place(
            machine,
            48,
            AllocationPolicy::TorusFill,
            RankMapping::Grouped { ppn: 4 },
            LatencyParams::default(),
        );
        let sym = job.torus_symmetry().expect("uniform ppn keeps symmetry");
        assert_eq!(sym.ppn, 4);
        assert_eq!(sym.ranks.len(), 192);
        // Ranks within one node cell are ascending.
        let (cube, pos, k) = sym.rank_cell[5];
        assert_eq!(k, 1, "grouped mapping packs ranks 4..8 on node 1");
        let base = (cube as usize * sym.slots.len() + pos as usize) * 4;
        assert!(sym.ranks[base..base + 4].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn compact_falls_back_to_bigger_machine() {
        // More nodes than the K Computer: must still place.
        let job = Job::compact(90_000, RankMapping::OneToOne);
        assert_eq!(job.n_ranks(), 90_000);
    }
}
