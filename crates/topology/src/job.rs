//! A placed job: machine + allocation + rank mapping + latency model.
//!
//! [`Job`] is the interface the simulator and the work-stealing runtime
//! consume: it answers "where does rank *i* live", "how far is rank *i*
//! from rank *j*" (the paper's `e(i, j)`), and "how long does a
//! `bytes`-sized message from *i* to *j* take".
//!
//! Per-rank coordinates are cached at construction so that the O(N²)
//! weight computation of the distance-skewed victim selector stays
//! cheap even at 8,192 ranks.

use crate::allocation::{AllocationPolicy, JobAllocation};
use crate::coord::TofuCoord;
use crate::latency::{LatencyModel, LatencyParams};
use crate::machine::{Machine, NodeId};
use crate::mapping::{Rank, RankMapping};

/// A job placed on a machine, ready to be simulated.
#[derive(Debug, Clone)]
pub struct Job {
    machine: Machine,
    mapping: RankMapping,
    latency: LatencyModel,
    /// Physical node of each rank.
    rank_nodes: Vec<NodeId>,
    /// Cached coordinate of each rank's node.
    rank_coords: Vec<TofuCoord>,
}

impl Job {
    /// Place a job: allocate `n_nodes` nodes under `alloc_policy`, then
    /// map `mapping.rank_count(n_nodes)` ranks onto them.
    pub fn place(
        machine: Machine,
        n_nodes: u32,
        alloc_policy: AllocationPolicy,
        mapping: RankMapping,
        latency: LatencyParams,
    ) -> Self {
        let alloc = JobAllocation::allocate(&machine, n_nodes, alloc_policy);
        mapping.check(&alloc).expect("invalid mapping");
        let slots = mapping.slots(n_nodes);
        let rank_nodes: Vec<NodeId> = slots.iter().map(|&s| alloc.node(s)).collect();
        let rank_coords = rank_nodes.iter().map(|&n| machine.coord(n)).collect();
        Self {
            machine,
            mapping,
            latency: LatencyModel::new(latency),
            rank_nodes,
            rank_coords,
        }
    }

    /// Convenience: a compact-rectangle job on a machine sized to fit,
    /// with default latencies — the common case in examples and tests.
    pub fn compact(n_nodes: u32, mapping: RankMapping) -> Self {
        let machine = if n_nodes <= Machine::k_computer().node_count() {
            Machine::k_computer()
        } else {
            Machine::with_capacity(n_nodes)
        };
        Self::place(
            machine,
            n_nodes,
            AllocationPolicy::CompactRectangle,
            mapping,
            LatencyParams::default(),
        )
    }

    /// Number of ranks in the job.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.rank_nodes.len() as u32
    }

    /// Number of distinct physical nodes used.
    pub fn n_nodes(&self) -> u32 {
        let mut nodes = self.rank_nodes.clone();
        nodes.sort();
        nodes.dedup();
        nodes.len() as u32
    }

    /// The machine this job runs on.
    #[inline]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The rank mapping in force.
    #[inline]
    pub fn mapping(&self) -> RankMapping {
        self.mapping
    }

    /// Physical node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.rank_nodes[rank as usize]
    }

    /// Tofu coordinate of `rank`'s node.
    #[inline]
    pub fn coord_of(&self, rank: Rank) -> TofuCoord {
        self.rank_coords[rank as usize]
    }

    /// True iff the two ranks share a physical node.
    #[inline]
    pub fn same_node(&self, i: Rank, j: Rank) -> bool {
        self.rank_nodes[i as usize] == self.rank_nodes[j as usize]
    }

    /// The paper's `e(i, j)`: Euclidean distance between the ranks'
    /// nodes in 6-D Tofu space (0.0 when they share a node).
    #[inline]
    pub fn euclidean(&self, i: Rank, j: Rank) -> f64 {
        self.rank_coords[i as usize].euclidean(&self.rank_coords[j as usize], self.machine.dims())
    }

    /// Network hops between the ranks' nodes.
    #[inline]
    pub fn hops(&self, i: Rank, j: Rank) -> u32 {
        self.rank_coords[i as usize].hops(&self.rank_coords[j as usize], self.machine.dims())
    }

    /// One-way message latency in nanoseconds from rank `i` to rank `j`
    /// for a `bytes`-sized payload.
    #[inline]
    pub fn latency_ns(&self, i: Rank, j: Rank, bytes: usize) -> u64 {
        self.latency.latency_ns(
            &self.machine,
            self.rank_coords[i as usize],
            self.rank_coords[j as usize],
            bytes,
        )
    }

    /// The latency model in force.
    #[inline]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Conservative lookahead bound for parallel simulation: no message
    /// between ranks on *different nodes* can take less than this
    /// (see [`LatencyParams::min_remote_ns`]). Sharding that keeps each
    /// node's ranks together may therefore advance shards independently
    /// within windows of this width.
    #[inline]
    pub fn lookahead_ns(&self) -> u64 {
        self.latency.params().min_remote_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_job_has_n_ranks_on_n_nodes() {
        let job = Job::compact(128, RankMapping::OneToOne);
        assert_eq!(job.n_ranks(), 128);
        assert_eq!(job.n_nodes(), 128);
        for i in 0..127 {
            assert!(!job.same_node(i, i + 1));
        }
    }

    #[test]
    fn grouped_job_shares_nodes_in_blocks() {
        let job = Job::compact(16, RankMapping::Grouped { ppn: 8 });
        assert_eq!(job.n_ranks(), 128);
        assert_eq!(job.n_nodes(), 16);
        assert!(job.same_node(0, 7));
        assert!(!job.same_node(7, 8));
        assert_eq!(job.euclidean(0, 7), 0.0);
    }

    #[test]
    fn round_robin_job_separates_neighbours() {
        let job = Job::compact(16, RankMapping::RoundRobin { ppn: 8 });
        assert_eq!(job.n_ranks(), 128);
        // Rank i and i+16 share a node; i and i+1 never do.
        assert!(job.same_node(0, 16));
        for i in 0..127 {
            assert!(!job.same_node(i, i + 1), "ranks {i},{} colocated", i + 1);
        }
    }

    #[test]
    fn latency_respects_colocation() {
        let job = Job::compact(16, RankMapping::Grouped { ppn: 8 });
        let close = job.latency_ns(0, 1, 64);
        let far = job.latency_ns(0, 127, 64);
        assert!(
            close < far,
            "same-node {close} should beat cross-node {far}"
        );
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let job = Job::compact(64, RankMapping::OneToOne);
        for i in (0..64).step_by(7) {
            assert_eq!(job.euclidean(i, i), 0.0);
            for j in (0..64).step_by(11) {
                assert_eq!(job.euclidean(i, j), job.euclidean(j, i));
                assert_eq!(job.hops(i, j), job.hops(j, i));
            }
        }
    }

    #[test]
    fn compact_falls_back_to_bigger_machine() {
        // More nodes than the K Computer: must still place.
        let job = Job::compact(90_000, RankMapping::OneToOne);
        assert_eq!(job.n_ranks(), 90_000);
    }
}
