//! Physical node allocation policies.
//!
//! On the K Computer the job scheduler owns physical placement: the
//! paper notes it "tends to distribute nodes in a 3D rectangle
//! minimizing the average number of hops between processes".
//! [`AllocationPolicy::CompactRectangle`] reproduces that behaviour;
//! the alternatives exist for ablation experiments (what happens to the
//! victim-selection strategies when the allocation is a long strip or a
//! random scatter).

use crate::machine::{Machine, NodeId};

/// How a job's nodes are chosen from the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// A near-cubic box of Tofu cubes, as the K scheduler produces.
    CompactRectangle,
    /// Nodes taken in dense id order — a long, thin strip along `x`.
    /// Worst-case average distance; used by ablations.
    LinearStrip,
    /// A deterministic pseudo-random scatter across the whole machine
    /// (seeded), modelling a fragmented machine. Used by ablations.
    Scattered {
        /// Seed of the deterministic shuffle.
        seed: u64,
    },
    /// Fill *every* cube of the machine with the same leading intra-cube
    /// slots (`count / cube_count` of them). The placement is then
    /// invariant under torus translation, which lets the distance-skewed
    /// victim selector share one offset-alias table across all ranks.
    /// Pair with [`Machine::torus_for_nodes`] to size the machine.
    TorusFill,
}

/// A set of physical nodes granted to one job, in allocation order.
///
/// Allocation order is meaningful: rank-mapping policies assign MPI
/// ranks to nodes in this order, so `nodes[0]` hosts the lowest ranks.
#[derive(Debug, Clone)]
pub struct JobAllocation {
    nodes: Vec<NodeId>,
}

impl JobAllocation {
    /// Allocate `count` nodes from `machine` under `policy`.
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds the machine size.
    pub fn allocate(machine: &Machine, count: u32, policy: AllocationPolicy) -> Self {
        assert!(count > 0, "cannot allocate zero nodes");
        assert!(
            count <= machine.node_count(),
            "requested {count} nodes but machine has {}",
            machine.node_count()
        );
        let nodes = match policy {
            AllocationPolicy::CompactRectangle => compact_rectangle(machine, count),
            AllocationPolicy::LinearStrip => (0..count).map(NodeId).collect(),
            AllocationPolicy::Scattered { seed } => scattered(machine, count, seed),
            AllocationPolicy::TorusFill => torus_fill(machine, count),
        };
        debug_assert_eq!(nodes.len(), count as usize);
        Self { nodes }
    }

    /// Number of allocated nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the allocation is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node hosting slot `i` of the allocation.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// All allocated nodes in allocation order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Average pairwise hop count over a deterministic sample of node
    /// pairs (all pairs when small). Reported by ablation benches.
    pub fn average_hops(&self, machine: &Machine) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        // Cap the exact all-pairs computation; beyond that, stride.
        let stride = (n * n / 250_000).max(1);
        let mut k = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if k.is_multiple_of(stride) {
                    total += machine.hops(self.nodes[i], self.nodes[j]) as u64;
                    pairs += 1;
                }
                k += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

/// Choose a near-cubic box of cubes covering `count` nodes, then emit
/// nodes cube by cube in a locality-preserving order.
fn compact_rectangle(machine: &Machine, count: u32) -> Vec<NodeId> {
    let (mx, my, mz) = machine.dims();
    let cubes_needed = count.div_ceil(crate::coord::NODES_PER_CUBE);
    let (bx, by, bz) = best_box(cubes_needed, (mx, my, mz));
    let mut nodes = Vec::with_capacity(count as usize);
    'outer: for z in 0..bz {
        for y in 0..by {
            for x in 0..bx {
                for b in 0..crate::coord::CUBE_B {
                    for a in 0..crate::coord::CUBE_A {
                        for c in 0..crate::coord::CUBE_C {
                            nodes.push(
                                machine.node_id(crate::coord::TofuCoord::new(x, y, z, a, b, c)),
                            );
                            if nodes.len() == count as usize {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    nodes
}

/// Find box dimensions (in cubes) with `bx*by*bz >= cubes` minimizing
/// the box's "diameter" `bx+by+bz` (a proxy for average hops), breaking
/// ties toward balanced shapes, subject to machine extents.
fn best_box(cubes: u32, max: (u16, u16, u16)) -> (u16, u16, u16) {
    let mut best: Option<((u16, u16, u16), u32, u32)> = None;
    for bx in 1..=max.0 {
        // Early prune: even the full remaining area cannot cover.
        if (bx as u32) * (max.1 as u32) * (max.2 as u32) < cubes {
            continue;
        }
        for by in 1..=max.1 {
            if (bx as u32) * (by as u32) * (max.2 as u32) < cubes {
                continue;
            }
            let bz_needed = cubes.div_ceil((bx as u32) * (by as u32));
            if bz_needed > max.2 as u32 {
                continue;
            }
            let bz = bz_needed as u16;
            let perim = bx as u32 + by as u32 + bz as u32;
            let waste = (bx as u32) * (by as u32) * (bz as u32) - cubes;
            let cand = ((bx, by, bz), perim, waste);
            best = Some(match best {
                None => cand,
                Some(cur) => {
                    if (perim, waste) < (cur.1, cur.2) {
                        cand
                    } else {
                        cur
                    }
                }
            });
        }
    }
    best.expect("machine large enough checked by caller").0
}

/// Give every cube of the machine the same `count / cube_count` leading
/// intra-cube slots, cube by cube in dense id order.
fn torus_fill(machine: &Machine, count: u32) -> Vec<NodeId> {
    let cubes = machine.node_count() / crate::coord::NODES_PER_CUBE;
    assert!(
        count.is_multiple_of(cubes),
        "TorusFill needs a node count ({count}) divisible by the \
         machine's cube count ({cubes}); size the machine with \
         Machine::torus_for_nodes"
    );
    let per_cube = count / cubes;
    let mut nodes = Vec::with_capacity(count as usize);
    for cube in 0..cubes {
        for slot in 0..per_cube {
            nodes.push(NodeId(cube * crate::coord::NODES_PER_CUBE + slot));
        }
    }
    nodes
}

/// Deterministic Fisher–Yates scatter using SplitMix64.
fn scattered(machine: &Machine, count: u32, seed: u64) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = machine.nodes().collect();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = all.len();
    for i in 0..(count as usize).min(n - 1) {
        let j = i + (next() % (n - i) as u64) as usize;
        all.swap(i, j);
    }
    all.truncate(count as usize);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_allocation_has_right_size_and_unique_nodes() {
        let m = Machine::small();
        for count in [1u32, 11, 12, 13, 100, 576] {
            let a = JobAllocation::allocate(&m, count, AllocationPolicy::CompactRectangle);
            assert_eq!(a.len(), count as usize);
            let mut seen = a.nodes().to_vec();
            seen.sort();
            seen.dedup();
            assert_eq!(
                seen.len(),
                count as usize,
                "duplicate nodes for count {count}"
            );
        }
    }

    #[test]
    fn compact_is_denser_than_strip_on_k() {
        let m = Machine::k_computer();
        let compact = JobAllocation::allocate(&m, 1024, AllocationPolicy::CompactRectangle);
        let strip = JobAllocation::allocate(&m, 1024, AllocationPolicy::LinearStrip);
        let ch = compact.average_hops(&m);
        let sh = strip.average_hops(&m);
        assert!(
            ch < sh,
            "compact allocation should have lower average hops ({ch} vs {sh})"
        );
    }

    #[test]
    fn best_box_is_balanced() {
        // 86 cubes (1024 nodes); expect something near 4x4x6, not 1x1x86.
        let (bx, by, bz) = best_box(86, (24, 18, 16));
        assert!((bx as u32) * (by as u32) * (bz as u32) >= 86);
        assert!(bx.max(by).max(bz) <= 8, "box too elongated: {bx}x{by}x{bz}");
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let m = Machine::small();
        let a = JobAllocation::allocate(&m, 64, AllocationPolicy::Scattered { seed: 7 });
        let b = JobAllocation::allocate(&m, 64, AllocationPolicy::Scattered { seed: 7 });
        let c = JobAllocation::allocate(&m, 64, AllocationPolicy::Scattered { seed: 8 });
        assert_eq!(a.nodes(), b.nodes());
        assert_ne!(a.nodes(), c.nodes());
        let mut uniq = a.nodes().to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 64);
    }

    #[test]
    #[should_panic(expected = "cannot allocate zero nodes")]
    fn rejects_zero_allocation() {
        JobAllocation::allocate(&Machine::small(), 0, AllocationPolicy::LinearStrip);
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn rejects_oversized_allocation() {
        JobAllocation::allocate(&Machine::one_cube(), 13, AllocationPolicy::LinearStrip);
    }
}
