//! Rank-to-node mapping policies.
//!
//! The paper evaluates three ways of placing MPI processes on allocated
//! nodes (Figure 2 and all speedup figures):
//!
//! - **1/N** — one process per node ([`RankMapping::OneToOne`]);
//! - **8RR** — 8 processes per node, ranks assigned round-robin across
//!   nodes, so ranks `i, i+8, i+16, …` share a node
//!   ([`RankMapping::RoundRobin`] with `ppn = 8`);
//! - **8G** — 8 processes per node, grouped: ranks `0..8` on the first
//!   node, `8..16` on the second, … ([`RankMapping::Grouped`]).
//!
//! The interaction between this mapping and the victim-selection
//! function is the crux of the paper: with 8RR, deterministic
//! round-robin victim selection makes *every* steal attempt cross
//! nodes, while with 8G seven out of eight round-robin steps stay
//! inside the node.

use crate::allocation::JobAllocation;

/// Rank index of a process participating in a job.
pub type Rank = u32;

/// Policy assigning ranks to the nodes of a [`JobAllocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMapping {
    /// One rank per node, rank `i` on allocation slot `i` (paper: 1/N).
    OneToOne,
    /// `ppn` ranks per node, ranks dealt round-robin across nodes:
    /// rank `i` lives on node `i mod n_nodes` (paper: 8RR for `ppn=8`).
    RoundRobin {
        /// Processes per node.
        ppn: u32,
    },
    /// `ppn` ranks per node, grouped: rank `i` lives on node
    /// `i / ppn` (paper: 8G for `ppn=8`).
    Grouped {
        /// Processes per node.
        ppn: u32,
    },
}

impl RankMapping {
    /// Paper's shorthand name for this mapping.
    pub fn label(&self) -> String {
        match self {
            RankMapping::OneToOne => "1/N".to_string(),
            RankMapping::RoundRobin { ppn } => format!("{ppn}RR"),
            RankMapping::Grouped { ppn } => format!("{ppn}G"),
        }
    }

    /// Processes per node under this mapping.
    pub fn ppn(&self) -> u32 {
        match self {
            RankMapping::OneToOne => 1,
            RankMapping::RoundRobin { ppn } | RankMapping::Grouped { ppn } => *ppn,
        }
    }

    /// Number of ranks a job with `n_nodes` allocated nodes will run.
    pub fn rank_count(&self, n_nodes: u32) -> u32 {
        n_nodes * self.ppn()
    }

    /// Allocation slot (index into [`JobAllocation::nodes`]) hosting
    /// `rank`, for a job over `n_nodes` nodes.
    ///
    /// # Panics
    /// Panics if the rank is out of range.
    pub fn node_slot(&self, rank: Rank, n_nodes: u32) -> usize {
        let n_ranks = self.rank_count(n_nodes);
        assert!(rank < n_ranks, "rank {rank} out of range ({n_ranks} ranks)");
        match self {
            RankMapping::OneToOne => rank as usize,
            RankMapping::RoundRobin { .. } => (rank % n_nodes) as usize,
            RankMapping::Grouped { ppn } => (rank / ppn) as usize,
        }
    }

    /// Build the full rank→allocation-slot table.
    pub fn slots(&self, n_nodes: u32) -> Vec<usize> {
        let n_ranks = self.rank_count(n_nodes);
        (0..n_ranks).map(|r| self.node_slot(r, n_nodes)).collect()
    }

    /// All ranks hosted by allocation slot `slot` (ascending) — the
    /// crash domain of one physical node, for a job over `n_nodes`
    /// nodes.
    ///
    /// # Panics
    /// Panics if the slot is out of range.
    pub fn ranks_on_slot(&self, slot: usize, n_nodes: u32) -> Vec<Rank> {
        assert!(
            slot < n_nodes as usize,
            "slot {slot} out of range ({n_nodes} nodes)"
        );
        (0..self.rank_count(n_nodes))
            .filter(|&r| self.node_slot(r, n_nodes) == slot)
            .collect()
    }

    /// Validate the mapping against an allocation.
    pub fn check(&self, alloc: &JobAllocation) -> Result<(), String> {
        if self.ppn() == 0 {
            return Err("processes per node must be non-zero".into());
        }
        if alloc.is_empty() {
            return Err("allocation is empty".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(RankMapping::OneToOne.label(), "1/N");
        assert_eq!(RankMapping::RoundRobin { ppn: 8 }.label(), "8RR");
        assert_eq!(RankMapping::Grouped { ppn: 8 }.label(), "8G");
    }

    #[test]
    fn one_to_one_is_identity() {
        let m = RankMapping::OneToOne;
        for r in 0..16 {
            assert_eq!(m.node_slot(r, 16), r as usize);
        }
    }

    #[test]
    fn round_robin_spreads_consecutive_ranks() {
        let m = RankMapping::RoundRobin { ppn: 8 };
        let n_nodes = 4;
        assert_eq!(m.rank_count(n_nodes), 32);
        // Ranks i, i+4, i+8, ... share node i (with 4 nodes).
        for r in 0..32u32 {
            assert_eq!(m.node_slot(r, n_nodes), (r % 4) as usize);
        }
        // Consecutive ranks land on different nodes.
        for r in 0..31u32 {
            assert_ne!(m.node_slot(r, n_nodes), m.node_slot(r + 1, n_nodes));
        }
    }

    #[test]
    fn grouped_packs_consecutive_ranks() {
        let m = RankMapping::Grouped { ppn: 8 };
        let n_nodes = 4;
        for r in 0..32u32 {
            assert_eq!(m.node_slot(r, n_nodes), (r / 8) as usize);
        }
        // Ranks 0..8 share a node; rank 8 moves on.
        assert_eq!(m.node_slot(0, n_nodes), m.node_slot(7, n_nodes));
        assert_ne!(m.node_slot(7, n_nodes), m.node_slot(8, n_nodes));
    }

    #[test]
    fn every_node_gets_exactly_ppn_ranks() {
        for mapping in [
            RankMapping::OneToOne,
            RankMapping::RoundRobin { ppn: 8 },
            RankMapping::Grouped { ppn: 8 },
            RankMapping::RoundRobin { ppn: 3 },
            RankMapping::Grouped { ppn: 5 },
        ] {
            let n_nodes = 6;
            let slots = mapping.slots(n_nodes);
            let mut counts = vec![0u32; n_nodes as usize];
            for s in slots {
                counts[s] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == mapping.ppn()),
                "{}: uneven rank distribution {counts:?}",
                mapping.label()
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_slot_rejects_bad_rank() {
        RankMapping::OneToOne.node_slot(4, 4);
    }

    #[test]
    fn ranks_on_slot_inverts_node_slot() {
        for mapping in [
            RankMapping::OneToOne,
            RankMapping::RoundRobin { ppn: 8 },
            RankMapping::Grouped { ppn: 8 },
        ] {
            let n_nodes = 4;
            for slot in 0..n_nodes as usize {
                let ranks = mapping.ranks_on_slot(slot, n_nodes);
                assert_eq!(ranks.len(), mapping.ppn() as usize);
                for r in ranks {
                    assert_eq!(mapping.node_slot(r, n_nodes), slot);
                }
            }
        }
        // 8RR slot 1 over 4 nodes: ranks 1, 5, 9, ...
        assert_eq!(
            RankMapping::RoundRobin { ppn: 8 }.ranks_on_slot(1, 4),
            vec![1, 5, 9, 13, 17, 21, 25, 29]
        );
        // 8G slot 1: ranks 8..16.
        assert_eq!(
            RankMapping::Grouped { ppn: 8 }.ranks_on_slot(1, 4),
            (8..16).collect::<Vec<_>>()
        );
    }
}
