//! Six-dimensional Tofu coordinates and distance computations.
//!
//! The K Computer's interconnect, Tofu, addresses every compute node by a
//! six-dimensional coordinate `(x, y, z, a, b, c)`. The `(x, y, z)` axes
//! form a 3-D torus whose unit is a *cube* of 12 nodes; within a cube the
//! `(a, b, c)` axes span a fixed 2×3×2 mesh. The paper's skewed victim
//! selection weights steal probabilities by the *Euclidean* distance
//! between these 6-D coordinates, so this module provides both Euclidean
//! distance (used for victim weighting) and hop counts (used for the
//! latency model).

/// Extent of the intra-cube `a` axis (nodes per blade row).
pub const CUBE_A: u16 = 2;
/// Extent of the intra-cube `b` axis (blades per cube).
pub const CUBE_B: u16 = 3;
/// Extent of the intra-cube `c` axis.
pub const CUBE_C: u16 = 2;
/// Number of nodes in one Tofu cube (2 × 3 × 2).
pub const NODES_PER_CUBE: u32 = (CUBE_A as u32) * (CUBE_B as u32) * (CUBE_C as u32);
/// Number of nodes on one blade (the unit sharing a board-level transport).
pub const NODES_PER_BLADE: u32 = (CUBE_A as u32) * (CUBE_C as u32);

/// A 6-D Tofu coordinate.
///
/// `x`, `y`, `z` locate the cube inside the machine-wide 3-D torus;
/// `a`, `b`, `c` locate the node inside its cube. Two nodes share a
/// *blade* iff they share the cube and the `b` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TofuCoord {
    /// Cube position along the torus X axis.
    pub x: u16,
    /// Cube position along the torus Y axis.
    pub y: u16,
    /// Cube position along the torus Z axis.
    pub z: u16,
    /// Intra-cube position, `0..2`.
    pub a: u16,
    /// Intra-cube position (blade index), `0..3`.
    pub b: u16,
    /// Intra-cube position, `0..2`.
    pub c: u16,
}

impl TofuCoord {
    /// Create a coordinate. Intra-cube components must respect the fixed
    /// 2×3×2 cube shape.
    ///
    /// # Panics
    /// Panics if `a >= 2`, `b >= 3` or `c >= 2` is violated.
    pub fn new(x: u16, y: u16, z: u16, a: u16, b: u16, c: u16) -> Self {
        assert!(a < CUBE_A, "intra-cube a coordinate out of range: {a}");
        assert!(b < CUBE_B, "intra-cube b coordinate out of range: {b}");
        assert!(c < CUBE_C, "intra-cube c coordinate out of range: {c}");
        Self { x, y, z, a, b, c }
    }

    /// The cube this node belongs to, as a 3-D coordinate.
    #[inline]
    pub fn cube(&self) -> (u16, u16, u16) {
        (self.x, self.y, self.z)
    }

    /// True iff `self` and `other` are the same physical node.
    #[inline]
    pub fn same_node(&self, other: &Self) -> bool {
        self == other
    }

    /// True iff the two coordinates sit on the same blade (same cube and
    /// same `b`): such nodes communicate over a dedicated board-level
    /// transport.
    #[inline]
    pub fn same_blade(&self, other: &Self) -> bool {
        self.cube() == other.cube() && self.b == other.b
    }

    /// True iff the two coordinates are in the same 2×3×2 cube.
    #[inline]
    pub fn same_cube(&self, other: &Self) -> bool {
        self.cube() == other.cube()
    }

    /// Squared Euclidean distance in 6-D, with torus wrap-around applied
    /// to the `x`, `y`, `z` axes (extents given by `torus`).
    ///
    /// The intra-cube axes are a mesh, not a torus, so they contribute
    /// their plain differences.
    pub fn euclidean_sq(&self, other: &Self, torus: (u16, u16, u16)) -> u64 {
        let dx = torus_delta(self.x, other.x, torus.0) as u64;
        let dy = torus_delta(self.y, other.y, torus.1) as u64;
        let dz = torus_delta(self.z, other.z, torus.2) as u64;
        let da = self.a.abs_diff(other.a) as u64;
        let db = self.b.abs_diff(other.b) as u64;
        let dc = self.c.abs_diff(other.c) as u64;
        dx * dx + dy * dy + dz * dz + da * da + db * db + dc * dc
    }

    /// Euclidean distance in 6-D (see [`euclidean_sq`](Self::euclidean_sq)).
    pub fn euclidean(&self, other: &Self, torus: (u16, u16, u16)) -> f64 {
        (self.euclidean_sq(other, torus) as f64).sqrt()
    }

    /// Network hop count between the two nodes: Manhattan distance with
    /// torus wrap-around on `x`, `y`, `z` and mesh distance inside the
    /// cube. Zero for the same node.
    pub fn hops(&self, other: &Self, torus: (u16, u16, u16)) -> u32 {
        let dx = torus_delta(self.x, other.x, torus.0) as u32;
        let dy = torus_delta(self.y, other.y, torus.1) as u32;
        let dz = torus_delta(self.z, other.z, torus.2) as u32;
        let da = self.a.abs_diff(other.a) as u32;
        let db = self.b.abs_diff(other.b) as u32;
        let dc = self.c.abs_diff(other.c) as u32;
        dx + dy + dz + da + db + dc
    }
}

/// Shortest signed distance between two positions on a ring of `extent`
/// slots. `extent == 0` is treated as a degenerate 1-slot ring.
#[inline]
pub fn torus_delta(p: u16, q: u16, extent: u16) -> u16 {
    if extent <= 1 {
        return p.abs_diff(q);
    }
    let d = p.abs_diff(q) % extent;
    d.min(extent - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16, z: u16, a: u16, b: u16, c_: u16) -> TofuCoord {
        TofuCoord::new(x, y, z, a, b, c_)
    }

    #[test]
    fn torus_delta_wraps() {
        assert_eq!(torus_delta(0, 9, 10), 1);
        assert_eq!(torus_delta(9, 0, 10), 1);
        assert_eq!(torus_delta(2, 7, 10), 5);
        assert_eq!(torus_delta(0, 5, 10), 5);
        assert_eq!(torus_delta(3, 3, 10), 0);
    }

    #[test]
    fn torus_delta_degenerate_extent() {
        assert_eq!(torus_delta(0, 0, 1), 0);
        assert_eq!(torus_delta(0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "intra-cube b coordinate")]
    fn rejects_bad_intra_cube_coord() {
        TofuCoord::new(0, 0, 0, 0, 3, 0);
    }

    #[test]
    fn same_node_blade_cube_predicates() {
        let n = c(1, 2, 3, 0, 1, 0);
        assert!(n.same_node(&n));
        let blade_mate = c(1, 2, 3, 1, 1, 1);
        assert!(!n.same_node(&blade_mate));
        assert!(n.same_blade(&blade_mate));
        assert!(n.same_cube(&blade_mate));
        let cube_mate = c(1, 2, 3, 0, 2, 0);
        assert!(!n.same_blade(&cube_mate));
        assert!(n.same_cube(&cube_mate));
        let stranger = c(1, 2, 4, 0, 1, 0);
        assert!(!stranger.same_cube(&n));
    }

    #[test]
    fn euclidean_distance_identity_and_symmetry() {
        let t = (8, 8, 8);
        let p = c(0, 1, 2, 0, 1, 1);
        let q = c(7, 1, 2, 1, 0, 0);
        assert_eq!(p.euclidean_sq(&p, t), 0);
        assert_eq!(p.euclidean_sq(&q, t), q.euclidean_sq(&p, t));
        // x wraps 0..7 on extent 8 -> 1; a,b,c deltas are 1,1,1.
        assert_eq!(p.euclidean_sq(&q, t), 1 + 1 + 1 + 1);
        assert!((p.euclidean(&q, t) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hops_accumulate_per_axis() {
        let t = (10, 10, 10);
        let p = c(0, 0, 0, 0, 0, 0);
        let q = c(9, 2, 0, 1, 2, 1);
        // x wraps to 1 hop; y is 2; a+b+c = 1+2+1.
        assert_eq!(p.hops(&q, t), 1 + 2 + 4);
        assert_eq!(p.hops(&p, t), 0);
    }

    #[test]
    fn hops_triangle_inequality_on_samples() {
        let t = (6, 5, 4);
        let pts = [
            c(0, 0, 0, 0, 0, 0),
            c(5, 4, 3, 1, 2, 1),
            c(2, 2, 2, 0, 1, 1),
            c(3, 0, 1, 1, 0, 0),
        ];
        for p in &pts {
            for q in &pts {
                for r in &pts {
                    assert!(p.hops(q, t) <= p.hops(r, t) + r.hops(q, t));
                }
            }
        }
    }
}
