//! Communication latency model.
//!
//! The paper's central observation is that "not every steal attempt
//! takes the same time": messages between processes on the same node,
//! the same blade, the same cube, the same rack, or across racks
//! traverse different transports. This module assigns a deterministic
//! point-to-point latency to each (source node, destination node,
//! message size) triple.
//!
//! The defaults are calibrated to the K Computer's published numbers
//! (Tofu link latency in the microsecond range, ~5 GB/s per link) and,
//! more importantly, preserve the *ordering* the paper relies on:
//! `node < blade < cube < rack < inter-rack`, with inter-rack latency
//! growing with hop count ("a communication between two processes can
//! go through more than 10 hops").

use crate::coord::TofuCoord;
use crate::machine::Machine;

/// Locality class of a point-to-point link, coarsest to finest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Both ranks on the same physical node (shared-memory transport).
    SameNode,
    /// Same blade of four nodes (dedicated board-level transport).
    SameBlade,
    /// Same 2×3×2 cube.
    SameCube,
    /// Same rack (8 cubes, 96 nodes).
    SameRack,
    /// Different racks; latency grows with hop count.
    InterRack,
}

impl LinkClass {
    /// Classify the link between two node coordinates.
    pub fn classify(machine: &Machine, from: TofuCoord, to: TofuCoord) -> Self {
        if from.same_node(&to) {
            LinkClass::SameNode
        } else if from.same_blade(&to) {
            LinkClass::SameBlade
        } else if from.same_cube(&to) {
            LinkClass::SameCube
        } else if machine.rack_of(from) == machine.rack_of(to) {
            LinkClass::SameRack
        } else {
            LinkClass::InterRack
        }
    }
}

/// Parameters of the latency model. All times in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyParams {
    /// Shared-memory message latency between two ranks on one node.
    pub same_node_ns: u64,
    /// Base latency on a blade-internal link.
    pub same_blade_ns: u64,
    /// Base latency inside one cube.
    pub same_cube_ns: u64,
    /// Base latency inside one rack.
    pub same_rack_ns: u64,
    /// Base latency between racks, before the per-hop term.
    pub inter_rack_ns: u64,
    /// Added per network hop (router traversal).
    pub per_hop_ns: u64,
    /// Link bandwidth in bytes per nanosecond (5.0 = 5 GB/s).
    pub bytes_per_ns: f64,
    /// Fixed software (MPI stack) overhead added to every message.
    pub software_overhead_ns: u64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        // Base values sit in the microsecond range of Tofu MPI
        // latencies. The per-hop cost folds in the effective cost of
        // router traversals *and* the contention a long path suffers on
        // a loaded machine (which we do not model explicitly); the
        // paper observes paths of "more than 10 hops", so distant
        // steals land in the 5–10 µs range — several times the
        // same-blade cost, which is the contrast the skewed victim
        // selection exploits.
        Self {
            same_node_ns: 600,
            same_blade_ns: 1_000,
            same_cube_ns: 1_300,
            same_rack_ns: 1_700,
            inter_rack_ns: 3_000,
            per_hop_ns: 5_000,
            bytes_per_ns: 5.0,
            software_overhead_ns: 400,
        }
    }
}

impl LatencyParams {
    /// A flat network: every pair of distinct nodes is equidistant.
    /// Used by the `ablation_flat_network` experiment — under this model
    /// distance-skewed victim selection degenerates to uniform random,
    /// so any performance gap must vanish.
    pub fn flat(latency_ns: u64) -> Self {
        Self {
            same_node_ns: latency_ns,
            same_blade_ns: latency_ns,
            same_cube_ns: latency_ns,
            same_rack_ns: latency_ns,
            inter_rack_ns: latency_ns,
            per_hop_ns: 0,
            bytes_per_ns: 5.0,
            software_overhead_ns: 400,
        }
    }

    /// A lower bound on the latency of any message between *distinct*
    /// nodes: the cheapest off-node base class plus the fixed software
    /// overhead (the size-dependent transfer term only adds to it).
    /// This is the conservative lookahead bound the parallel simulation
    /// engine uses — any cross-node (hence cross-shard) message sent at
    /// time `t` arrives no earlier than `t + min_remote_ns()`.
    pub fn min_remote_ns(&self) -> u64 {
        // check() enforces blade <= cube <= rack <= inter-rack, so the
        // blade class is the cheapest a remote message can be.
        self.same_blade_ns + self.software_overhead_ns
    }

    /// Validate internal consistency (ordering and positivity).
    pub fn check(&self) -> Result<(), String> {
        if self.bytes_per_ns <= 0.0 {
            return Err("bandwidth must be positive".into());
        }
        if self.same_node_ns > self.same_blade_ns
            || self.same_blade_ns > self.same_cube_ns
            || self.same_cube_ns > self.same_rack_ns
            || self.same_rack_ns > self.inter_rack_ns
        {
            return Err(
                "latency classes must be ordered node<=blade<=cube<=rack<=inter-rack".into(),
            );
        }
        Ok(())
    }
}

/// Deterministic latency model over a [`Machine`].
#[derive(Debug, Clone)]
pub struct LatencyModel {
    params: LatencyParams,
}

impl LatencyModel {
    /// Build a model from parameters.
    ///
    /// # Panics
    /// Panics if the parameters are inconsistent (see
    /// [`LatencyParams::check`]).
    pub fn new(params: LatencyParams) -> Self {
        if let Err(e) = params.check() {
            panic!("invalid latency parameters: {e}");
        }
        Self { params }
    }

    /// The model's parameters.
    pub fn params(&self) -> &LatencyParams {
        &self.params
    }

    /// One-way latency in nanoseconds for a `bytes`-sized message from
    /// node `from` to node `to`.
    pub fn latency_ns(
        &self,
        machine: &Machine,
        from: TofuCoord,
        to: TofuCoord,
        bytes: usize,
    ) -> u64 {
        let p = &self.params;
        let class = LinkClass::classify(machine, from, to);
        let base = match class {
            LinkClass::SameNode => p.same_node_ns,
            LinkClass::SameBlade => p.same_blade_ns,
            LinkClass::SameCube => p.same_cube_ns,
            LinkClass::SameRack => p.same_rack_ns,
            LinkClass::InterRack => {
                let hops = from.hops(&to, machine.dims()) as u64;
                p.inter_rack_ns + p.per_hop_ns * hops
            }
        };
        let transfer = (bytes as f64 / p.bytes_per_ns) as u64;
        base + transfer + p.software_overhead_ns
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::new(LatencyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::NodeId;

    fn coord(m: &Machine, id: u32) -> TofuCoord {
        m.coord(NodeId(id))
    }

    #[test]
    fn classes_are_ordered_by_latency() {
        let m = Machine::new(2, 2, 16);
        let model = LatencyModel::default();
        let origin = coord(&m, 0);
        let blade_mate = TofuCoord::new(0, 0, 0, 1, 0, 0);
        let cube_mate = TofuCoord::new(0, 0, 0, 0, 2, 0);
        let rack_mate = TofuCoord::new(0, 0, 1, 0, 0, 0);
        let far = TofuCoord::new(1, 1, 8, 0, 0, 0);
        let l = |to| model.latency_ns(&m, origin, to, 64);
        assert!(l(origin) < l(blade_mate));
        assert!(l(blade_mate) < l(cube_mate));
        assert!(l(cube_mate) < l(rack_mate));
        assert!(l(rack_mate) < l(far));
    }

    #[test]
    fn inter_rack_latency_grows_with_hops() {
        let m = Machine::new(8, 8, 16);
        let model = LatencyModel::default();
        let origin = coord(&m, 0);
        let near = TofuCoord::new(1, 0, 8, 0, 0, 0);
        let far = TofuCoord::new(4, 4, 8, 0, 0, 0);
        assert!(model.latency_ns(&m, origin, near, 64) < model.latency_ns(&m, origin, far, 64));
    }

    #[test]
    fn larger_messages_take_longer() {
        let m = Machine::small();
        let model = LatencyModel::default();
        let a = coord(&m, 0);
        let b = coord(&m, 40);
        assert!(
            model.latency_ns(&m, a, b, 16) < model.latency_ns(&m, a, b, 1 << 20),
            "1 MiB message should be slower than 16 B"
        );
    }

    #[test]
    fn flat_network_is_flat() {
        let m = Machine::new(8, 8, 16);
        let model = LatencyModel::new(LatencyParams::flat(1_500));
        let a = coord(&m, 0);
        let near = coord(&m, 1);
        let far = TofuCoord::new(4, 4, 8, 1, 2, 1);
        assert_eq!(
            model.latency_ns(&m, a, near, 64),
            model.latency_ns(&m, a, far, 64)
        );
    }

    #[test]
    fn classify_matches_structure() {
        let m = Machine::new(2, 2, 16);
        let o = TofuCoord::new(0, 0, 0, 0, 0, 0);
        assert_eq!(LinkClass::classify(&m, o, o), LinkClass::SameNode);
        assert_eq!(
            LinkClass::classify(&m, o, TofuCoord::new(0, 0, 0, 1, 0, 1)),
            LinkClass::SameBlade
        );
        assert_eq!(
            LinkClass::classify(&m, o, TofuCoord::new(0, 0, 0, 0, 1, 0)),
            LinkClass::SameCube
        );
        assert_eq!(
            LinkClass::classify(&m, o, TofuCoord::new(0, 0, 7, 0, 0, 0)),
            LinkClass::SameRack
        );
        assert_eq!(
            LinkClass::classify(&m, o, TofuCoord::new(0, 0, 8, 0, 0, 0)),
            LinkClass::InterRack
        );
    }

    #[test]
    #[should_panic(expected = "invalid latency parameters")]
    fn rejects_unordered_params() {
        let params = LatencyParams {
            same_node_ns: 5_000,
            ..LatencyParams::default()
        };
        LatencyModel::new(params);
    }
}
