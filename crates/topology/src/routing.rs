//! Dimension-ordered routing and link-load analysis.
//!
//! The simulator charges end-to-end latencies without tracking
//! individual links; this module provides the complementary *offline*
//! view: the actual sequence of links a Tofu message traverses under
//! dimension-ordered routing (X, then Y, then Z, then the intra-cube
//! axes), and an accumulator for per-link traffic. It quantifies the
//! aggregate hop-load argument behind the skewed victim selection: a
//! strategy that shortens average steal distance reduces total
//! link-seconds of traffic, which is what relieves contention on a
//! loaded machine.

use crate::coord::TofuCoord;
use crate::machine::Machine;
use std::collections::HashMap;

/// One directed link of the torus: a node coordinate plus the axis the
/// message leaves along (+/−).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source node of this hop.
    pub from: TofuCoord,
    /// Axis index: 0..3 = x, y, z; 3..6 = a, b, c.
    pub axis: u8,
    /// Direction along the axis (true = increasing, possibly wrapping).
    pub positive: bool,
}

/// Enumerate the links of the dimension-ordered route from `src` to
/// `dst`, taking the shorter way around each torus axis.
pub fn route(machine: &Machine, src: TofuCoord, dst: TofuCoord) -> Vec<Link> {
    let dims = machine.dims();
    let mut links = Vec::new();
    let mut cur = src;
    // Torus axes: choose direction by shorter wrap.
    type Get = fn(&TofuCoord) -> u16;
    type GetMut = fn(&mut TofuCoord) -> &mut u16;
    let torus_axes: [(u8, u16, Get, GetMut); 3] = [
        (0, dims.0, |c| c.x, |c| &mut c.x),
        (1, dims.1, |c| c.y, |c| &mut c.y),
        (2, dims.2, |c| c.z, |c| &mut c.z),
    ];
    for (axis, extent, get, get_mut) in torus_axes {
        while get(&cur) != get(&dst) {
            let p = get(&cur);
            let q = get(&dst);
            let forward = (q + extent - p) % extent;
            let backward = (p + extent - q) % extent;
            let positive = forward <= backward;
            links.push(Link {
                from: cur,
                axis,
                positive,
            });
            let slot = get_mut(&mut cur);
            *slot = if positive {
                (p + 1) % extent
            } else {
                (p + extent - 1) % extent
            };
        }
    }
    // Mesh (intra-cube) axes: direct walk.
    let mesh_axes: [(u8, Get, GetMut); 3] = [
        (3, |c| c.a, |c| &mut c.a),
        (4, |c| c.b, |c| &mut c.b),
        (5, |c| c.c, |c| &mut c.c),
    ];
    for (axis, get, get_mut) in mesh_axes {
        while get(&cur) != get(&dst) {
            let positive = get(&cur) < get(&dst);
            links.push(Link {
                from: cur,
                axis,
                positive,
            });
            let slot = get_mut(&mut cur);
            *slot = if positive { *slot + 1 } else { *slot - 1 };
        }
    }
    debug_assert_eq!(cur, dst, "route must land on the destination");
    links
}

/// Accumulated traffic per link, in arbitrary units (e.g. bytes or
/// message counts).
#[derive(Debug, Default, Clone)]
pub struct LinkLoad {
    loads: HashMap<Link, u64>,
    total: u64,
}

impl LinkLoad {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `amount` units of traffic along the route from `src` to
    /// `dst`. Returns the hop count.
    pub fn add_route(
        &mut self,
        machine: &Machine,
        src: TofuCoord,
        dst: TofuCoord,
        amount: u64,
    ) -> usize {
        let links = route(machine, src, dst);
        for link in &links {
            *self.loads.entry(*link).or_insert(0) += amount;
            self.total += amount;
        }
        links.len()
    }

    /// Total link-units charged (traffic × hops).
    pub fn total_link_units(&self) -> u64 {
        self.total
    }

    /// Number of distinct links touched.
    pub fn links_used(&self) -> usize {
        self.loads.len()
    }

    /// The heaviest `n` links, descending.
    pub fn hottest(&self, n: usize) -> Vec<(Link, u64)> {
        let mut v: Vec<(Link, u64)> = self.loads.iter().map(|(l, &u)| (*l, u)).collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
        });
        v.truncate(n);
        v
    }

    /// Max-to-mean load ratio: 1.0 = perfectly spread, large = hotspot.
    pub fn hotspot_factor(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        let max = *self.loads.values().max().expect("non-empty") as f64;
        let mean = self.total as f64 / self.loads.len() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16, z: u16) -> TofuCoord {
        TofuCoord::new(x, y, z, 0, 0, 0)
    }

    #[test]
    fn route_length_matches_hop_count() {
        let m = Machine::small(); // 4 x 3 x 4 cubes
        let pairs = [
            (c(0, 0, 0), c(3, 2, 1)),
            (c(1, 1, 1), TofuCoord::new(1, 1, 1, 1, 2, 1)),
            (c(2, 0, 3), c(2, 0, 3)),
        ];
        for (a, b) in pairs {
            let links = route(&m, a, b);
            assert_eq!(
                links.len() as u32,
                a.hops(&b, m.dims()),
                "route {a:?} -> {b:?}"
            );
        }
    }

    #[test]
    fn route_takes_short_way_around_torus() {
        let m = Machine::new(8, 1, 1);
        let links = route(&m, c(0, 0, 0), c(7, 0, 0));
        assert_eq!(links.len(), 1, "0 -> 7 wraps backwards in one hop");
        assert!(!links[0].positive);
    }

    #[test]
    fn dimension_order_is_x_then_y_then_z() {
        let m = Machine::small();
        let links = route(&m, c(0, 0, 0), c(2, 1, 1));
        let axes: Vec<u8> = links.iter().map(|l| l.axis).collect();
        assert_eq!(axes, vec![0, 0, 1, 2]);
    }

    #[test]
    fn link_load_accounts_traffic_times_hops() {
        let m = Machine::small();
        let mut load = LinkLoad::new();
        let hops = load.add_route(&m, c(0, 0, 0), c(2, 0, 0), 10);
        assert_eq!(hops, 2);
        assert_eq!(load.total_link_units(), 20);
        assert_eq!(load.links_used(), 2);
        // Overlapping route doubles the shared first link.
        load.add_route(&m, c(0, 0, 0), c(1, 0, 0), 10);
        let hottest = load.hottest(1);
        assert_eq!(hottest[0].1, 20);
        assert!(load.hotspot_factor() > 1.0);
    }

    #[test]
    fn skewed_traffic_reduces_link_units() {
        // The aggregate-load argument in miniature: nearest-neighbour
        // traffic costs fewer link-units than all-pairs traffic.
        let m = Machine::small();
        let mut near = LinkLoad::new();
        let mut far = LinkLoad::new();
        for x in 0..4u16 {
            near.add_route(&m, c(x, 0, 0), c((x + 1) % 4, 0, 0), 1);
            far.add_route(&m, c(x, 0, 0), c((x + 2) % 4, 1, 2), 1);
        }
        assert!(near.total_link_units() < far.total_link_units());
    }

    #[test]
    fn empty_load_is_calm() {
        let load = LinkLoad::new();
        assert_eq!(load.hotspot_factor(), 0.0);
        assert_eq!(load.links_used(), 0);
        assert!(load.hottest(5).is_empty());
    }
}
