//! # dws-topology
//!
//! A model of the K Computer's Tofu interconnect — the physical
//! substrate of Perarnau & Sato, *Victim Selection and Distributed Work
//! Stealing Performance: A Case Study* (IPDPS 2014).
//!
//! The paper's experiments run on the real machine; this crate stands in
//! for it. It captures exactly the structure the paper's argument needs:
//!
//! - the 6-D coordinate space `(x, y, z, a, b, c)` with a 3-D torus of
//!   2×3×2 cubes ([`coord`], [`machine`]);
//! - the job scheduler's compact-rectangle node allocation
//!   ([`allocation`]);
//! - the three rank-placement strategies of Figure 2 — 1/N, 8RR, 8G
//!   ([`mapping`]);
//! - a latency model ordered `node < blade < cube < rack < inter-rack`
//!   with per-hop growth ([`latency`]);
//! - and a [`Job`] facade combining them, exposing the Euclidean
//!   distance `e(i, j)` that the skewed victim selector weights by.
//!
//! ## Example
//!
//! ```
//! use dws_topology::{Job, RankMapping};
//!
//! let job = Job::compact(64, RankMapping::OneToOne);
//! assert_eq!(job.n_ranks(), 64);
//! // Rank 0 is closer to rank 1 than to rank 63 in a compact allocation.
//! assert!(job.euclidean(0, 1) <= job.euclidean(0, 63));
//! ```

#![deny(missing_docs)]

pub mod allocation;
pub mod coord;
pub mod job;
pub mod latency;
pub mod machine;
pub mod mapping;
pub mod routing;

pub use allocation::{AllocationPolicy, JobAllocation};
pub use coord::TofuCoord;
pub use job::{Job, TorusSymmetry};
pub use latency::{LatencyModel, LatencyParams, LinkClass};
pub use machine::{Machine, NodeId};
pub use mapping::{Rank, RankMapping};
pub use routing::{route, Link, LinkLoad};
