fn main() {
    for w in dws_uts::presets::all() {
        if let Some(s) = dws_uts::search::search_with_limit(&w, 30_000_000) {
            println!(
                "{:10} nodes={} leaves={} depth={}",
                w.name, s.nodes, s.leaves, s.max_depth
            );
        } else {
            println!("{:10} > 30M nodes (skipped)", w.name);
        }
    }
}
