//! Named workloads: the paper's input trees and scaled-down analogues.
//!
//! Table I of the paper defines two binomial trees: **T3XXL**
//! (2,793,220,501 nodes, used up to 128 ranks) and **T3WL**
//! (157,063,495,159 nodes, used from 1,024 to 8,192 ranks). Searching
//! 10⁹–10¹¹ nodes inside a discrete-event simulation is possible but
//! pointless for reproducing the paper's *shape* — what matters is the
//! binomial regime `q → (1/m)⁻` that creates wildly unbalanced subtrees
//! and sustained steal pressure. The `T3SIM_*` presets keep the paper's
//! `b0 = 2000`, `m = 2` and push `q` toward 0.5 to scale expected size,
//! exactly the knob the UTS authors used to scale from T3 to T3XXL to
//! T3WL.
//!
//! A [`Workload`] also carries the *simulated cost of one node*: the
//! paper measures "UTS is able to process an average of 970,000 nodes
//! per second" on a K node, i.e. ≈1,031 ns/node at one SHA round.

use crate::tree::{GeoShape, TreeSpec};

/// Simulated time to process one tree node at `gen_rounds = 1`,
/// calibrated to the paper's 970,000 nodes/s on the K Computer.
pub const K_NODE_NS: u64 = 1_031;

/// A fully specified UTS run: shape, seed, granularity and cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Tree shape parameters.
    pub spec: TreeSpec,
    /// Root seed (`r` in Table I).
    pub seed: i32,
    /// SHA evaluations per node creation (Figure 16 granularity knob).
    pub gen_rounds: u32,
    /// Simulated nanoseconds to process one node at one SHA round.
    pub base_node_ns: u64,
}

impl Workload {
    /// Simulated cost of processing one node, scaling linearly with the
    /// granularity knob: each extra SHA round adds one round's worth of
    /// compute.
    #[inline]
    pub fn node_ns(&self) -> u64 {
        self.base_node_ns * self.gen_rounds as u64
    }

    /// Same workload with a different granularity (Figure 16 sweeps
    /// this from 1 to 24).
    pub fn with_gen_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds > 0, "granularity must be at least one round");
        self.gen_rounds = rounds;
        self
    }

    /// Same workload with a different seed (for variance studies).
    pub fn with_seed(mut self, seed: i32) -> Self {
        self.seed = seed;
        self
    }
}

fn binomial(name: &'static str, seed: i32, b0: u32, m: u32, q: f64) -> Workload {
    Workload {
        name,
        spec: TreeSpec::Binomial { b0, m, q },
        seed,
        gen_rounds: 1,
        base_node_ns: K_NODE_NS,
    }
}

/// Paper Table I parameters for T3XXL (`b0=2000, m=2, q=0.499995`,
/// seed 316), which the paper uses for its 8–128 rank runs.
///
/// Upstream realizes 2,793,220,501 nodes; **this implementation
/// realizes 7,212,005** (leaves 3,607,002, depth 3,596). Near-critical
/// binomial trees have heavy-tailed realized sizes that depend on the
/// exact RNG bit stream, and our SHA-1 state construction is not
/// bit-identical to the C `brg_sha1` wrapper. The tree regime — same
/// `b0`, `m`, `q`, hence the same imbalance statistics — is preserved,
/// which is what the load-balancing study needs. See EXPERIMENTS.md.
pub fn t3xxl() -> Workload {
    binomial("T3XXL", 316, 2000, 2, 0.499995)
}

/// Paper Table I parameters for T3WL (`b0=2000, m=2, q=0.4999995`,
/// seed 559), the paper's 1,024–8,192 rank input.
///
/// Upstream realizes 157,063,495,159 nodes; **this implementation
/// realizes 24,578,855** (leaves 12,290,427, depth 11,953) — see
/// [`t3xxl`] for why realized sizes differ. Conveniently, this makes
/// the paper's large-scale input directly searchable inside the
/// simulator.
pub fn t3wl() -> Workload {
    binomial("T3WL", 559, 2000, 2, 0.4999995)
}

/// A geometric tree with linear thinning, in the spirit of the upstream
/// UTS sample tree T1. Sizes differ from upstream because our geometric
/// shape constants are not bit-identical to the C implementation; the
/// paper's experiments use binomial trees only, so nothing downstream
/// depends on matching upstream geometric sizes.
pub fn t1() -> Workload {
    Workload {
        name: "T1",
        spec: TreeSpec::Geometric {
            b0: 4.0,
            gen_mx: 10,
            shape: GeoShape::Linear,
        },
        seed: 19,
        gen_rounds: 1,
        base_node_ns: K_NODE_NS,
    }
}

/// A binomial tree with the upstream UTS sample-tree T3 parameters
/// (`b0=2000, m=8, q=0.124875`, seed 42).
pub fn t3() -> Workload {
    binomial("T3", 42, 2000, 8, 0.124875)
}

/// Scaled T3-family tree, extra small: expected ≈ 4 k nodes.
/// Same binomial regime as T3XXL with the size knob turned down.
pub fn t3sim_xs() -> Workload {
    binomial("T3SIM-XS", 316, 200, 2, 0.475)
}

/// Scaled T3-family tree, small: expected ≈ 25 k nodes.
pub fn t3sim_s() -> Workload {
    binomial("T3SIM-S", 316, 500, 2, 0.49)
}

/// Scaled T3-family tree, medium: expected ≈ 200 k nodes.
pub fn t3sim_m() -> Workload {
    binomial("T3SIM-M", 316, 2000, 2, 0.49)
}

/// Scaled T3-family tree, large: expected ≈ 2 M nodes.
pub fn t3sim_l() -> Workload {
    binomial("T3SIM-L", 316, 2000, 2, 0.499)
}

/// Scaled T3-family tree, extra large: expected ≈ 10 M nodes.
pub fn t3sim_xl() -> Workload {
    binomial("T3SIM-XL", 316, 2000, 2, 0.4998)
}

/// A hybrid tree (geometric crown, binomial fringe) in the spirit of
/// the upstream T4 sample: bushy near the root, then near-critical
/// chains below — a different imbalance profile than pure binomial.
/// Realizes 11,725,499 nodes (depth 425) under this implementation.
pub fn t4sim() -> Workload {
    Workload {
        name: "T4SIM",
        spec: TreeSpec::Hybrid {
            b0: 6.0,
            gen_mx: 16,
            shape: GeoShape::Linear,
            shift_depth: 0.5,
            m: 2,
            q: 0.49,
        },
        seed: 1,
        gen_rounds: 1,
        base_node_ns: K_NODE_NS,
    }
}

/// All presets, for table generation.
pub fn all() -> Vec<Workload> {
    vec![
        t1(),
        t3(),
        t4sim(),
        t3xxl(),
        t3wl(),
        t3sim_xs(),
        t3sim_s(),
        t3sim_m(),
        t3sim_l(),
        t3sim_xl(),
    ]
}

/// Look a preset up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trees_match_table_one() {
        let xxl = t3xxl();
        match xxl.spec {
            TreeSpec::Binomial { b0, m, q } => {
                assert_eq!((b0, m), (2000, 2));
                assert!((q - 0.499995).abs() < 1e-12);
            }
            _ => panic!("T3XXL must be binomial"),
        }
        assert_eq!(xxl.seed, 316);
        let wl = t3wl();
        assert_eq!(wl.seed, 559);
    }

    #[test]
    fn sim_presets_are_subcritical_and_ordered() {
        let sizes: Vec<f64> = [t3sim_xs(), t3sim_s(), t3sim_m(), t3sim_l(), t3sim_xl()]
            .iter()
            .map(|w| {
                let per = w
                    .spec
                    .expected_binomial_subtree()
                    .expect("sim presets are subcritical");
                match w.spec {
                    TreeSpec::Binomial { b0, .. } => b0 as f64 * per,
                    _ => unreachable!(),
                }
            })
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] < pair[1], "presets must grow: {sizes:?}");
        }
    }

    #[test]
    fn node_cost_scales_with_granularity() {
        let w = t3sim_s();
        assert_eq!(w.node_ns(), K_NODE_NS);
        assert_eq!(w.with_gen_rounds(8).node_ns(), 8 * K_NODE_NS);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("t3xxl").expect("exists").name, "T3XXL");
        assert_eq!(by_name("T3SIM-S").expect("exists").name, "T3SIM-S");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_presets_pass_check() {
        for w in all() {
            w.spec.check().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_granularity_rejected() {
        t1().with_gen_rounds(0);
    }
}
