//! Sequential tree search: the ground truth every parallel execution
//! must match.
//!
//! UTS counts the nodes of the implicit tree. The sequential searcher
//! here is used (a) to verify distributed and shared-memory runs, and
//! (b) to provide the single-process baseline `T₁` for efficiency and
//! speedup numbers — the paper extrapolates its `T₁` for T3WL "from the
//! speed, in node searched per second, of the previous input tree
//! search" (§II-B); we can afford to measure ours directly on the
//! scaled trees.

use crate::presets::Workload;
use crate::tree::Node;

/// Statistics of a tree traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Total nodes in the tree (including the root).
    pub nodes: u64,
    /// Nodes with no children.
    pub leaves: u64,
    /// Maximum depth observed (root = 0).
    pub max_depth: u32,
}

impl SearchStats {
    /// Merge two partial traversals (used by parallel searchers).
    pub fn merge(&self, other: &SearchStats) -> SearchStats {
        SearchStats {
            nodes: self.nodes + other.nodes,
            leaves: self.leaves + other.leaves,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }
}

/// Depth-first sequential search of the whole tree.
///
/// Iterative with an explicit stack, so arbitrarily deep trees cannot
/// overflow the call stack. Memory use is bounded by the widest
/// ancestor sibling set plus the depth, not the tree size.
pub fn search(workload: &Workload) -> SearchStats {
    search_with_limit(workload, u64::MAX).expect("u64::MAX limit cannot be hit")
}

/// Like [`search`] but abandons with `None` once more than `max_nodes`
/// nodes have been expanded — a guard for accidentally searching
/// full-scale paper trees (T3WL would take days).
pub fn search_with_limit(workload: &Workload, max_nodes: u64) -> Option<SearchStats> {
    let mut stats = SearchStats::default();
    let mut stack: Vec<Node> = Vec::with_capacity(4096);
    let mut children: Vec<Node> = Vec::new();
    stack.push(workload.spec.root(workload.seed));
    while let Some(node) = stack.pop() {
        stats.nodes += 1;
        if stats.nodes > max_nodes {
            return None;
        }
        stats.max_depth = stats.max_depth.max(node.height);
        let n = workload
            .spec
            .children_into(&node, workload.gen_rounds, &mut children);
        if n == 0 {
            stats.leaves += 1;
        } else {
            stack.append(&mut children);
        }
    }
    Some(stats)
}

/// Visit every node, calling `visit` with each; traversal order is
/// right-to-left DFS (an implementation detail — counts are order
/// independent). Stops early if `visit` returns `false`.
pub fn visit<F: FnMut(&Node) -> bool>(workload: &Workload, mut visit: F) {
    let mut stack: Vec<Node> = vec![workload.spec.root(workload.seed)];
    let mut children: Vec<Node> = Vec::new();
    while let Some(node) = stack.pop() {
        if !visit(&node) {
            return;
        }
        workload
            .spec
            .children_into(&node, workload.gen_rounds, &mut children);
        stack.append(&mut children);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::tree::TreeSpec;

    #[test]
    fn tiny_binomial_tree_manual_count() {
        // q = 0: only the root's b0 children exist.
        let w = Workload {
            name: "manual",
            spec: TreeSpec::Binomial {
                b0: 5,
                m: 2,
                q: 0.0,
            },
            seed: 1,
            gen_rounds: 1,
            base_node_ns: 1,
        };
        let s = search(&w);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.leaves, 5);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn preset_sizes_are_stable_golden_values() {
        // Pin measured sizes: any change to SHA-1, the RNG, or the
        // shape functions shows up here immediately. These values are
        // also quoted in the preset documentation and EXPERIMENTS.md.
        let xs = search(&presets::t3sim_xs());
        assert_eq!(
            (xs.nodes, xs.leaves, xs.max_depth),
            (4_575, 2_387, 89),
            "T3SIM-XS drifted"
        );
        let s = search(&presets::t3sim_s());
        assert_eq!(
            (s.nodes, s.leaves, s.max_depth),
            (22_235, 11_367, 158),
            "T3SIM-S drifted"
        );
        assert_eq!(
            s,
            search(&presets::t3sim_s()),
            "search must be deterministic"
        );
    }

    #[test]
    fn limit_guard_abandons_large_searches() {
        let w = presets::t1();
        // The T1 analogue is a few thousand nodes; a 100-node cap must
        // trip, and the full search must agree with itself.
        assert_eq!(search_with_limit(&w, 100), None);
        let full = search(&w);
        assert_eq!(
            search_with_limit(&w, full.nodes),
            Some(full),
            "limit equal to the size must succeed"
        );
    }

    #[test]
    fn small_geometric_searches_completely() {
        let w = Workload {
            name: "geo-small",
            spec: TreeSpec::Geometric {
                b0: 3.0,
                gen_mx: 6,
                shape: crate::tree::GeoShape::Linear,
            },
            seed: 7,
            gen_rounds: 1,
            base_node_ns: 1,
        };
        let s = search(&w);
        assert!(s.nodes > 1);
        assert!(
            s.max_depth <= 6,
            "gen_mx must cap depth, got {}",
            s.max_depth
        );
        assert!(s.leaves > 0 && s.leaves < s.nodes);
    }

    #[test]
    fn visit_sees_every_node_once() {
        let w = presets::t3sim_xs();
        let expected = search(&w).nodes;
        let mut seen = 0u64;
        visit(&w, |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, expected);
    }

    #[test]
    fn visit_early_exit() {
        let w = presets::t3sim_xs();
        let mut seen = 0u64;
        visit(&w, |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn granularity_changes_tree_but_keeps_order_of_magnitude() {
        let base = search(&presets::t3sim_xs());
        let coarse = search(&presets::t3sim_xs().with_gen_rounds(4));
        // Different hashing -> different realized tree...
        assert_ne!(base.nodes, coarse.nodes);
        // ...but the same distribution, so sizes stay comparable.
        let ratio = base.nodes as f64 / coarse.nodes as f64;
        assert!(
            (0.1..10.0).contains(&ratio),
            "sizes diverged wildly: {} vs {}",
            base.nodes,
            coarse.nodes
        );
    }

    #[test]
    fn merge_combines_partials() {
        let a = SearchStats {
            nodes: 10,
            leaves: 4,
            max_depth: 3,
        };
        let b = SearchStats {
            nodes: 5,
            leaves: 2,
            max_depth: 7,
        };
        let m = a.merge(&b);
        assert_eq!(m.nodes, 15);
        assert_eq!(m.leaves, 6);
        assert_eq!(m.max_depth, 7);
    }
}
