//! Tree-shape statistics: quantifying the imbalance that makes UTS a
//! load-balancing stress test.
//!
//! The paper (§II) attributes UTS's difficulty to "the relative short
//! depth of generated trees compared to their size" and to binomial
//! child generation, under which "subtrees will vary greatly in size,
//! requiring frequent load balancing". This module measures exactly
//! that: the distribution of root-subtree sizes, level widths, and the
//! frontier profile (the size of the DFS stack over time — the quantity
//! that bounds how many ranks a tree can feed, discussed in
//! DESIGN.md §6).

use crate::presets::Workload;
use crate::tree::Node;

/// Shape statistics of one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeShape {
    /// Total nodes.
    pub nodes: u64,
    /// Sizes of the subtrees hanging off each root child, sorted
    /// descending.
    pub root_subtree_sizes: Vec<u64>,
    /// Maximum depth.
    pub max_depth: u32,
    /// Peak size of the DFS frontier (explicit stack) during a
    /// sequential traversal.
    pub peak_frontier: usize,
    /// Frontier size sampled every `frontier_stride` expansions.
    pub frontier_profile: Vec<usize>,
    /// Expansions between frontier samples.
    pub frontier_stride: u64,
}

impl TreeShape {
    /// Fraction of all nodes contained in the largest root subtree —
    /// a direct imbalance measure (1/b0 would be perfectly balanced).
    pub fn largest_subtree_fraction(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.root_subtree_sizes.first().copied().unwrap_or(0) as f64 / self.nodes as f64
    }

    /// Gini coefficient of the root-subtree size distribution: 0 =
    /// perfectly even, →1 = all mass in one subtree.
    pub fn subtree_gini(&self) -> f64 {
        let n = self.root_subtree_sizes.len();
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self.root_subtree_sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // Sizes are sorted descending; Gini over the ascending order.
        let mut acc: f64 = 0.0;
        for (i, &size) in self.root_subtree_sizes.iter().rev().enumerate() {
            acc += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * size as f64;
        }
        acc / (n as f64 * total as f64)
    }

    /// How many ranks this tree can plausibly keep busy: the peak
    /// frontier divided by the given per-rank working set (chunk size
    /// plus a private chunk's worth).
    pub fn feedable_ranks(&self, nodes_per_rank: usize) -> usize {
        self.peak_frontier / nodes_per_rank.max(1)
    }
}

/// Measure the shape of a workload's tree by sequential traversal,
/// attributing every node to its root subtree. `max_nodes` guards
/// against accidentally measuring a full-scale tree; `None` is returned
/// if it trips.
pub fn measure(workload: &Workload, max_nodes: u64) -> Option<TreeShape> {
    let root = workload.spec.root(workload.seed);
    let mut children: Vec<Node> = Vec::new();
    let b0 = workload
        .spec
        .children_into(&root, workload.gen_rounds, &mut children);
    let mut subtree_sizes = vec![0u64; b0 as usize];
    let mut nodes: u64 = 1;
    let mut max_depth = 0u32;
    let mut peak_frontier = children.len();
    let stride = 1_000u64;
    let mut profile = Vec::new();
    // Stack of (node, root-child index it descends from).
    let mut stack: Vec<(Node, u32)> = children
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u32))
        .collect();
    let mut buf: Vec<Node> = Vec::new();
    while let Some((node, origin)) = stack.pop() {
        nodes += 1;
        if nodes > max_nodes {
            return None;
        }
        subtree_sizes[origin as usize] += 1;
        max_depth = max_depth.max(node.height);
        workload
            .spec
            .children_into(&node, workload.gen_rounds, &mut buf);
        for child in buf.drain(..) {
            stack.push((child, origin));
        }
        peak_frontier = peak_frontier.max(stack.len());
        if nodes.is_multiple_of(stride) {
            profile.push(stack.len());
        }
    }
    subtree_sizes.sort_unstable_by(|a, b| b.cmp(a));
    Some(TreeShape {
        nodes,
        root_subtree_sizes: subtree_sizes,
        max_depth,
        peak_frontier,
        frontier_profile: profile,
        frontier_stride: stride,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::tree::TreeSpec;

    #[test]
    fn shape_of_xs_preset_matches_search() {
        let w = presets::t3sim_xs();
        let shape = measure(&w, u64::MAX).expect("within limit");
        let s = crate::search::search(&w);
        assert_eq!(shape.nodes, s.nodes);
        assert_eq!(shape.max_depth, s.max_depth);
        assert_eq!(
            shape.root_subtree_sizes.iter().sum::<u64>(),
            s.nodes - 1,
            "subtree sizes partition the non-root nodes"
        );
    }

    #[test]
    fn binomial_trees_are_heavily_imbalanced() {
        let w = presets::t3sim_s();
        let shape = measure(&w, u64::MAX).expect("within limit");
        // The paper's premise: near-critical binomial trees put most
        // mass in few subtrees.
        assert!(
            shape.largest_subtree_fraction() > 0.05,
            "largest subtree holds {:.3} of the tree",
            shape.largest_subtree_fraction()
        );
        assert!(
            shape.subtree_gini() > 0.5,
            "gini {} too even for a near-critical binomial tree",
            shape.subtree_gini()
        );
    }

    #[test]
    fn balanced_tree_has_low_gini() {
        // q = 1 up to memory limits is unbounded; instead use q = 0:
        // every root subtree is exactly one leaf -> perfectly even.
        let w = Workload {
            name: "even",
            spec: TreeSpec::Binomial {
                b0: 50,
                m: 2,
                q: 0.0,
            },
            seed: 3,
            gen_rounds: 1,
            base_node_ns: 1,
        };
        let shape = measure(&w, u64::MAX).expect("tiny");
        assert_eq!(shape.nodes, 51);
        assert!(shape.subtree_gini().abs() < 1e-12);
        assert!((shape.largest_subtree_fraction() - 1.0 / 51.0).abs() < 1e-6);
    }

    #[test]
    fn frontier_bounds_feedable_ranks() {
        let w = presets::t3sim_s();
        let shape = measure(&w, u64::MAX).expect("within limit");
        assert!(shape.peak_frontier > 0);
        let feedable = shape.feedable_ranks(40);
        assert!(feedable < 4096, "a 22k-node tree cannot feed 4096 ranks");
        assert_eq!(shape.feedable_ranks(0), shape.peak_frontier);
    }

    #[test]
    fn measure_respects_limit() {
        assert_eq!(measure(&presets::t3sim_s(), 100), None);
    }

    #[test]
    fn frontier_profile_sampled_at_stride() {
        let w = presets::t3sim_s();
        let shape = measure(&w, u64::MAX).expect("within limit");
        let expected = (shape.nodes / shape.frontier_stride) as usize;
        assert!(
            (shape.frontier_profile.len() as i64 - expected as i64).abs() <= 1,
            "profile length {} vs expected {expected}",
            shape.frontier_profile.len()
        );
        assert!(shape
            .frontier_profile
            .iter()
            .all(|&f| f <= shape.peak_frontier));
    }
}
