//! Tree node representation and child generation.
//!
//! A UTS tree is *implicit*: a node is just its random state plus its
//! depth, and "each node in the tree contains all the information
//! required to generate its children" (paper §II). This module defines
//! the node type and the tree-shape specifications (binomial,
//! geometric, hybrid) that map a node to its child count.

use crate::rng::{RngState, RAND_RANGE, STATE_WIRE_BYTES};

/// One work item: a tree node awaiting expansion.
///
/// `Default` (zero state, height 0) is a placeholder used only to
/// pre-initialize container slots; it never appears in a real tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Node {
    /// Splittable random state identifying this node.
    pub state: RngState,
    /// Depth below the root (root = 0).
    pub height: u32,
}

/// Serialized wire size of a node: state + height. Used by the
/// simulator to account steal-message transfer time.
pub const NODE_WIRE_BYTES: usize = STATE_WIRE_BYTES + 4;

/// Shape function of geometric trees: how the expected branching factor
/// varies with depth (UTS `geoshape_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoShape {
    /// Constant branching factor up to the depth cutoff.
    Fixed,
    /// Branching factor decreases linearly, reaching zero at `gen_mx`.
    Linear,
    /// Branching factor decays exponentially with depth.
    ExpDec,
    /// Branching factor oscillates with depth (period `gen_mx`).
    Cyclic,
}

/// A tree-shape specification: everything needed to expand any node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeSpec {
    /// Binomial tree: the root has `b0` children; every other node has
    /// `m` children with probability `q` and none otherwise. Expected
    /// subtree size below each root child is `1 / (1 − m·q)` for
    /// `m·q < 1`, so `q → (1/m)⁻` produces deep, wildly unbalanced
    /// trees (paper §II: "subtrees will vary greatly in size").
    Binomial {
        /// Root branching factor.
        b0: u32,
        /// Non-root branching factor (children on success).
        m: u32,
        /// Probability a non-root node has children.
        q: f64,
    },
    /// Geometric tree: each node's child count is geometrically
    /// distributed with a depth-dependent mean `b(d)` shaped by
    /// `shape`; no node deeper than `gen_mx` has children.
    Geometric {
        /// Branching factor at the root.
        b0: f64,
        /// Depth horizon.
        gen_mx: u32,
        /// Shape of `b(d)`.
        shape: GeoShape,
    },
    /// Hybrid: geometric above `shift_depth × gen_mx`, binomial below.
    Hybrid {
        /// Geometric branching factor at the root.
        b0: f64,
        /// Depth horizon of the geometric part.
        gen_mx: u32,
        /// Shape of the geometric part.
        shape: GeoShape,
        /// Fraction of `gen_mx` at which to switch to binomial.
        shift_depth: f64,
        /// Binomial branching factor below the shift.
        m: u32,
        /// Binomial success probability below the shift.
        q: f64,
    },
}

impl TreeSpec {
    /// Build the root node for `seed`.
    pub fn root(&self, seed: i32) -> Node {
        Node {
            state: RngState::from_seed(seed),
            height: 0,
        }
    }

    /// Number of children of `node` under this specification.
    ///
    /// Deterministic: derived entirely from the node's state and depth.
    pub fn num_children(&self, node: &Node) -> u32 {
        match *self {
            TreeSpec::Binomial { b0, m, q } => {
                if node.height == 0 {
                    b0
                } else {
                    binomial_children(node, m, q)
                }
            }
            TreeSpec::Geometric { b0, gen_mx, shape } => {
                geometric_children(node, b0, gen_mx, shape)
            }
            TreeSpec::Hybrid {
                b0,
                gen_mx,
                shape,
                shift_depth,
                m,
                q,
            } => {
                let shift = (shift_depth * gen_mx as f64) as u32;
                if node.height < shift {
                    geometric_children(node, b0, gen_mx, shape)
                } else {
                    binomial_children(node, m, q)
                }
            }
        }
    }

    /// Generate the children of `node` into `out` (cleared first),
    /// doing `gen_rounds` SHA evaluations per child (the granularity
    /// knob of Figure 16). Returns the number of children.
    pub fn children_into(&self, node: &Node, gen_rounds: u32, out: &mut Vec<Node>) -> u32 {
        out.clear();
        let n = self.num_children(node);
        out.reserve(n as usize);
        for i in 0..n {
            out.push(Node {
                state: node.state.spawn(i, gen_rounds),
                height: node.height + 1,
            });
        }
        n
    }

    /// Validate parameters (probabilities in range, non-divergence is
    /// *not* required — UTS trees may be supercritical, but we reject
    /// plainly meaningless inputs).
    pub fn check(&self) -> Result<(), String> {
        match *self {
            TreeSpec::Binomial { b0, m, q } => {
                if !(0.0..=1.0).contains(&q) {
                    return Err(format!("binomial q={q} outside [0,1]"));
                }
                if b0 == 0 {
                    return Err("binomial b0 must be positive".into());
                }
                if m == 0 && q > 0.0 {
                    return Err("binomial m=0 with q>0 is degenerate".into());
                }
                Ok(())
            }
            TreeSpec::Geometric { b0, gen_mx, .. } => {
                if b0 <= 0.0 {
                    return Err(format!("geometric b0={b0} must be positive"));
                }
                if gen_mx == 0 {
                    return Err("geometric gen_mx must be positive".into());
                }
                Ok(())
            }
            TreeSpec::Hybrid {
                b0,
                gen_mx,
                shift_depth,
                q,
                ..
            } => {
                if b0 <= 0.0 || gen_mx == 0 {
                    return Err("hybrid geometric part invalid".into());
                }
                if !(0.0..=1.0).contains(&shift_depth) {
                    return Err(format!("hybrid shift_depth={shift_depth} outside [0,1]"));
                }
                if !(0.0..=1.0).contains(&q) {
                    return Err(format!("hybrid q={q} outside [0,1]"));
                }
                Ok(())
            }
        }
    }

    /// Expected subtree size per root child for binomial trees
    /// (`1/(1−m·q)`), `None` for supercritical or non-binomial specs.
    /// Used to size experiments.
    pub fn expected_binomial_subtree(&self) -> Option<f64> {
        match *self {
            TreeSpec::Binomial { m, q, .. } => {
                let mq = m as f64 * q;
                (mq < 1.0).then(|| 1.0 / (1.0 - mq))
            }
            _ => None,
        }
    }
}

/// Binomial child count: `m` with probability `q`, else 0 (UTS
/// `uts_numChildren_bin`): draw the node's 31-bit value and compare
/// against `q` scaled to that range.
fn binomial_children(node: &Node, m: u32, q: f64) -> u32 {
    let v = node.state.rand() as f64;
    if v < q * RAND_RANGE {
        m
    } else {
        0
    }
}

/// Geometric child count with depth-dependent mean (UTS
/// `uts_numChildren_geo`).
fn geometric_children(node: &Node, b0: f64, gen_mx: u32, shape: GeoShape) -> u32 {
    let depth = node.height;
    if depth >= gen_mx {
        return 0;
    }
    let d = depth as f64;
    let h = gen_mx as f64;
    let b_i = match shape {
        GeoShape::Fixed => b0,
        GeoShape::Linear => b0 * (1.0 - d / h),
        GeoShape::ExpDec => b0 * (d / h).exp2().recip(), // b0 * 2^(-d/h)
        GeoShape::Cyclic => {
            if d > 5.0 * h {
                0.0
            } else {
                b0 * (2.0f64).powf((std::f64::consts::TAU * d / h).sin())
            }
        }
    };
    if b_i <= 0.0 {
        return 0;
    }
    // Geometric distribution with mean b_i: p = 1/(1+b_i);
    // X = floor(ln(1-u) / ln(1-p)).
    let p = 1.0 / (1.0 + b_i);
    let u = node.state.to_prob();
    ((1.0 - u).ln() / (1.0 - p).ln()).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(q: f64) -> TreeSpec {
        TreeSpec::Binomial { b0: 4, m: 2, q }
    }

    #[test]
    fn binomial_root_has_b0_children() {
        let spec = bin(0.2);
        let root = spec.root(1);
        assert_eq!(spec.num_children(&root), 4);
    }

    #[test]
    fn binomial_children_are_m_or_zero() {
        let spec = bin(0.4);
        let root = spec.root(19);
        let mut kids = Vec::new();
        spec.children_into(&root, 1, &mut kids);
        let mut seen_m = false;
        let mut seen_zero = false;
        // Walk a few levels to observe both outcomes.
        let mut frontier = kids.clone();
        for _ in 0..8 {
            let mut next = Vec::new();
            for n in &frontier {
                let c = spec.num_children(n);
                assert!(c == 0 || c == 2, "unexpected child count {c}");
                if c == 2 {
                    seen_m = true;
                } else {
                    seen_zero = true;
                }
                let mut buf = Vec::new();
                spec.children_into(n, 1, &mut buf);
                next.extend(buf);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        assert!(seen_m && seen_zero, "q=0.4 should show both outcomes");
    }

    #[test]
    fn binomial_extremes() {
        let always = bin(1.0);
        let never = bin(0.0);
        let root = always.root(3);
        let mut kids = Vec::new();
        always.children_into(&root, 1, &mut kids);
        for k in &kids {
            assert_eq!(always.num_children(k), 2, "q=1 must always branch");
            assert_eq!(never.num_children(k), 0, "q=0 must never branch");
        }
    }

    #[test]
    fn children_are_depth_incremented_and_distinct() {
        let spec = bin(0.5);
        let root = spec.root(42);
        let mut kids = Vec::new();
        spec.children_into(&root, 1, &mut kids);
        assert_eq!(kids.len(), 4);
        for k in &kids {
            assert_eq!(k.height, 1);
        }
        let mut states: Vec<_> = kids.iter().map(|k| *k.state.bytes()).collect();
        states.sort();
        states.dedup();
        assert_eq!(states.len(), 4, "sibling states must differ");
    }

    #[test]
    fn geometric_respects_depth_cutoff() {
        let spec = TreeSpec::Geometric {
            b0: 4.0,
            gen_mx: 3,
            shape: GeoShape::Fixed,
        };
        let deep = Node {
            state: RngState::from_seed(1),
            height: 3,
        };
        assert_eq!(spec.num_children(&deep), 0);
    }

    #[test]
    fn geometric_linear_thins_with_depth() {
        let spec_at = |h: u32| {
            // Average over many sibling states at the given height.
            let root = RngState::from_seed(99);
            let mut total = 0u64;
            let n = 500;
            for i in 0..n {
                let node = Node {
                    state: root.spawn(i, 1),
                    height: h,
                };
                total += TreeSpec::Geometric {
                    b0: 8.0,
                    gen_mx: 10,
                    shape: GeoShape::Linear,
                }
                .num_children(&node) as u64;
            }
            total as f64 / n as f64
        };
        let shallow = spec_at(1);
        let deep = spec_at(8);
        assert!(
            shallow > deep + 1.0,
            "linear shape should thin: depth1 {shallow} vs depth8 {deep}"
        );
    }

    #[test]
    fn hybrid_switches_regimes() {
        let spec = TreeSpec::Hybrid {
            b0: 4.0,
            gen_mx: 10,
            shape: GeoShape::Fixed,
            shift_depth: 0.5,
            m: 7,
            q: 1.0,
        };
        let below = Node {
            state: RngState::from_seed(5),
            height: 6,
        };
        // Below the shift with q=1: always exactly m children.
        assert_eq!(spec.num_children(&below), 7);
    }

    #[test]
    fn expected_subtree_math() {
        let spec = TreeSpec::Binomial {
            b0: 2000,
            m: 2,
            q: 0.499995,
        };
        let e = spec.expected_binomial_subtree().expect("subcritical");
        assert!(
            (e - 100_000.0).abs() < 1.0,
            "T3XXL subtree mean ~1e5, got {e}"
        );
        let sup = TreeSpec::Binomial {
            b0: 1,
            m: 2,
            q: 0.6,
        };
        assert!(sup.expected_binomial_subtree().is_none());
    }

    #[test]
    fn check_rejects_bad_parameters() {
        assert!(bin(1.5).check().is_err());
        assert!(TreeSpec::Binomial {
            b0: 0,
            m: 2,
            q: 0.5
        }
        .check()
        .is_err());
        assert!(TreeSpec::Geometric {
            b0: -1.0,
            gen_mx: 5,
            shape: GeoShape::Fixed
        }
        .check()
        .is_err());
        assert!(bin(0.5).check().is_ok());
    }

    #[test]
    fn gen_rounds_alter_subtree_identity() {
        let spec = bin(0.5);
        let root = spec.root(7);
        let mut r1 = Vec::new();
        let mut r4 = Vec::new();
        spec.children_into(&root, 1, &mut r1);
        spec.children_into(&root, 4, &mut r4);
        assert_eq!(r1.len(), r4.len());
        assert_ne!(r1[0].state, r4[0].state, "rounds are part of tree identity");
    }
}
