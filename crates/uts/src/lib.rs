//! # dws-uts
//!
//! A from-scratch implementation of the Unbalanced Tree Search (UTS)
//! benchmark — the workload of Perarnau & Sato (IPDPS 2014).
//!
//! UTS counts the nodes of an implicit random tree. Each node carries a
//! 20-byte SHA-1 state from which its children are derived, so any
//! process holding a node can generate its entire subtree: work can be
//! moved between processes freely, with no shared data. Trees are
//! heavily unbalanced by construction (binomial trees in the `q → 1/m`
//! regime), which forces continuous dynamic load balancing — the
//! property the paper's work-stealing study depends on.
//!
//! - [`sha1`] — SHA-1 (RFC 3174) verified against standard vectors;
//! - [`rng`] — the splittable per-node random state;
//! - [`tree`] — node type and shape specifications;
//! - [`presets`] — Table I trees plus scaled `T3SIM_*` analogues;
//! - [`mod@search`] — sequential ground-truth traversal.
//!
//! ## Example
//!
//! ```
//! use dws_uts::{presets, search};
//!
//! let workload = presets::t3sim_xs();
//! let stats = search::search(&workload);
//! assert!(stats.nodes > 1_000);
//! // Same parameters, same tree — always.
//! assert_eq!(stats, search::search(&workload));
//! ```

#![warn(missing_docs)]

pub mod presets;
pub mod rng;
pub mod search;
pub mod sha1;
pub mod stats;
pub mod tree;

pub use presets::{Workload, K_NODE_NS};
pub use rng::RngState;
pub use search::{search, SearchStats};
pub use stats::{measure as measure_shape, TreeShape};
pub use tree::{GeoShape, Node, TreeSpec, NODE_WIRE_BYTES};
