//! The UTS splittable random stream.
//!
//! Each tree node carries a 20-byte state. The root state is the SHA-1
//! digest of the tree seed; the state of child `i` is the SHA-1 digest
//! of the parent state concatenated with `i` (big-endian). This is the
//! construction of the reference UTS `brg_sha1` generator: it makes
//! child generation *location independent* — any process holding a node
//! can generate exactly that node's subtree, which is what allows work
//! items to be stolen freely with no data dependencies.
//!
//! The paper's granularity experiment (Figure 16) varies "the number of
//! SHA rounds to execute when creating a node"; [`RngState::spawn`]
//! takes that count and chains extra digest rounds accordingly.

use crate::sha1::{Digest, Sha1, DIGEST_LEN};

/// Mask selecting the non-negative 31-bit value UTS draws from a state.
pub const POS_MASK: u32 = 0x7FFF_FFFF;
/// The exclusive upper bound of [`RngState::rand`] draws, as a float.
pub const RAND_RANGE: f64 = (POS_MASK as f64) + 1.0;

/// A node's random state: a SHA-1 digest.
///
/// `Default` is the all-zero state — never produced by hashing; it
/// exists so buffer-based containers (e.g. the Chase–Lev deque) can
/// pre-initialize slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RngState {
    bytes: Digest,
}

impl RngState {
    /// Root state for a tree seed, matching UTS `rng_init`: the digest
    /// of the 4-byte big-endian seed.
    pub fn from_seed(seed: i32) -> Self {
        Self {
            bytes: Sha1::digest(&seed.to_be_bytes()),
        }
    }

    /// Construct from raw bytes (used when receiving stolen nodes).
    pub fn from_bytes(bytes: Digest) -> Self {
        Self { bytes }
    }

    /// The raw 20-byte state.
    #[inline]
    pub fn bytes(&self) -> &Digest {
        &self.bytes
    }

    /// Spawn the state of child `index`, performing `rounds` SHA-1
    /// evaluations (the work-granularity knob; the default is 1).
    ///
    /// Round 1 hashes `parent_state ‖ index`; each further round hashes
    /// the previous digest. All rounds are real SHA-1 evaluations, so
    /// the simulated *and actual* cost of node creation scales with
    /// `rounds`, as in the paper's §V-B experiment.
    ///
    /// # Panics
    /// Panics if `rounds == 0` — a node must be hashed at least once.
    pub fn spawn(&self, index: u32, rounds: u32) -> Self {
        assert!(rounds > 0, "node creation requires at least one SHA round");
        let mut hasher = Sha1::new();
        hasher.update(&self.bytes);
        hasher.update(&index.to_be_bytes());
        let mut digest = hasher.finalize();
        for _ in 1..rounds {
            digest = Sha1::digest(&digest);
        }
        Self { bytes: digest }
    }

    /// The node's 31-bit non-negative random value, as UTS `rng_rand`:
    /// the first four state bytes, big-endian, masked positive.
    #[inline]
    pub fn rand(&self) -> u32 {
        let word = u32::from_be_bytes(
            self.bytes[..4]
                .try_into()
                .expect("digest has at least 4 bytes"),
        );
        word & POS_MASK
    }

    /// The node's random value as a probability in `[0, 1)`, as UTS
    /// `rng_toProb`.
    #[inline]
    pub fn to_prob(&self) -> f64 {
        self.rand() as f64 / RAND_RANGE
    }
}

/// Serialized size of an [`RngState`] on the wire.
pub const STATE_WIRE_BYTES: usize = DIGEST_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_produce_distinct_roots() {
        let a = RngState::from_seed(316);
        let b = RngState::from_seed(559);
        assert_ne!(a, b);
        // Same seed, same root: cross-run determinism.
        assert_eq!(a, RngState::from_seed(316));
    }

    #[test]
    fn spawn_is_deterministic_and_index_sensitive() {
        let root = RngState::from_seed(42);
        let c0 = root.spawn(0, 1);
        let c1 = root.spawn(1, 1);
        assert_ne!(c0, c1, "distinct children must have distinct states");
        assert_eq!(c0, root.spawn(0, 1));
    }

    #[test]
    fn spawn_rounds_change_state_and_chain() {
        let root = RngState::from_seed(7);
        let one = root.spawn(3, 1);
        let two = root.spawn(3, 2);
        assert_ne!(one, two);
        // Chaining definition: rounds=2 is the digest of rounds=1.
        assert_eq!(
            two.bytes(),
            &crate::sha1::Sha1::digest(one.bytes()),
            "extra rounds must re-hash the previous digest"
        );
    }

    #[test]
    fn rand_is_non_negative_31_bit() {
        let mut state = RngState::from_seed(1);
        for i in 0..100 {
            state = state.spawn(i % 3, 1);
            assert!(state.rand() <= POS_MASK);
        }
    }

    #[test]
    fn to_prob_in_unit_interval_and_spread() {
        let root = RngState::from_seed(12345);
        let n = 2_000;
        let mut sum = 0.0;
        for i in 0..n {
            let p = root.spawn(i, 1).to_prob();
            assert!((0.0..1.0).contains(&p));
            sum += p;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
    }

    #[test]
    fn roundtrip_bytes() {
        let s = RngState::from_seed(-5);
        let restored = RngState::from_bytes(*s.bytes());
        assert_eq!(s, restored);
        assert_eq!(s.rand(), restored.rand());
    }

    #[test]
    #[should_panic(expected = "at least one SHA round")]
    fn zero_rounds_rejected() {
        RngState::from_seed(0).spawn(0, 0);
    }
}
