//! SHA-1 (RFC 3174), implemented from scratch.
//!
//! UTS builds its splittable random stream on SHA-1: the 20-byte digest
//! of a parent's state and a child index *is* the child's state. The
//! benchmark does not need SHA-1 to be cryptographically current — it
//! needs a fixed, high-quality, platform-independent mixing function so
//! that "for a set of parameters, the same tree will always be
//! generated no matter the underlying hardware or language" (paper
//! §II). This implementation is verified against the FIPS 180-1 / RFC
//! 3174 test vectors.

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length trailer).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Start a new hash.
    pub fn new() -> Self {
        Self {
            h: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len * 8;
        // Append 0x80 then zero padding to 56 mod 64, then the length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` counts the padding into `len`; the trailer must hold
        // the original message length, captured in `bit_len`.
        let mut trailer = [0u8; 8];
        trailer.copy_from_slice(&bit_len.to_be_bytes());
        // Write the trailer directly as a block completion.
        self.buf[56..64].copy_from_slice(&trailer);
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> Digest {
        let mut s = Sha1::new();
        s.update(data);
        s.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// Render a digest as lowercase hex (for tests and debugging).
pub fn to_hex(d: &Digest) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for b in d {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3174_test_vectors() {
        // FIPS 180-1 appendix / RFC 3174 section 7.3 vectors.
        assert_eq!(
            to_hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            to_hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            to_hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut s = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            s.update(&chunk);
        }
        assert_eq!(
            to_hex(&s.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 128, 200, 255] {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise the padding logic at every interesting length.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let mut s = Sha1::new();
            for byte in &data {
                s.update(std::slice::from_ref(byte));
            }
            assert_eq!(
                s.finalize(),
                Sha1::digest(&data),
                "byte-at-a-time mismatch at len {len}"
            );
        }
    }

    #[test]
    fn digests_differ_on_single_bit_flip() {
        let a = Sha1::digest(b"unbalanced tree search");
        let b = Sha1::digest(b"unbalanced tree searcI"); // last byte flipped
        assert_ne!(a, b);
        // Avalanche sanity: digests should differ in many bits.
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 40, "only {differing} differing bits");
    }
}
