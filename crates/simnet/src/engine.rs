//! The discrete-event simulation engine.
//!
//! A [`Simulation`] hosts one [`Actor`] per rank and a single global
//! event queue. Two event kinds exist: message deliveries and timers.
//! Actors react to events through a [`Ctx`] handle that lets them send
//! messages (delayed by the pluggable latency function), arm timers,
//! query the clock, and draw deterministic random numbers.
//!
//! Design decisions that matter for fidelity:
//!
//! - **Determinism.** Events are ordered by `(time, sequence number)`;
//!   ties break in creation order. All randomness flows from one seed.
//!   Two runs of the same configuration produce identical results.
//! - **MPI-like non-overtaking.** Deliveries between a given (source,
//!   destination) pair never reorder, even when a small message follows
//!   a large one — matching MPI's pairwise ordering guarantee that the
//!   UTS implementation relies on.
//! - **Arrival is not handling.** `on_message` fires when the message
//!   *arrives*. A faithful MPI process polls: the work-stealing actor in
//!   `dws-core` buffers arrivals and services them at its polling
//!   points, exactly like the reference `mpi_workstealing.c`.
//! - **Clock skew.** Each rank can be given a deterministic clock
//!   offset; traces recorded with [`Ctx::local_now`] then need the same
//!   skew correction the paper applied to its traces.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use std::sync::Arc;

use crate::fault::{FaultPlan, FaultStats};
use crate::observer::{EventKind as ObsKind, EventLog, EventRecord, NetTrace};
use crate::profiler::{prof_record, prof_start, PerfProbe, Phase};
use crate::rng::DetRng;
use crate::time::SimTime;

/// Multiplicative hasher for the (source, destination) FIFO map: the
/// keys are already well-mixed rank pairs, and this map sits on the
/// per-message hot path, where SipHash overhead is measurable.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PairHasher only hashes u64 keys");
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci hashing: one multiply, strong high bits.
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
}

type PairMap<V> = HashMap<u64, V, BuildHasherDefault<PairHasher>>;

/// Rank index of an actor (re-exported convention shared with
/// `dws-topology`).
pub type Rank = u32;

/// Latency oracle: one-way delay in nanoseconds for a message.
///
/// `now_ns` is the send time: stateful models (e.g. per-node NIC
/// serialization) need it to compute queueing waits. Pure models ignore
/// it. Implementations may keep interior state (the simulation is
/// single-threaded and calls in send order), which is how contention is
/// modelled without per-link events.
pub trait LatencyFn {
    /// Delay for a `bytes`-sized message from `from` to `to` sent at
    /// `now_ns`.
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, now_ns: u64) -> u64;
}

/// Flat latency: every message takes the same time. Useful in tests and
/// in the flat-network ablation.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub u64);

impl LatencyFn for ConstantLatency {
    fn latency_ns(&self, _from: Rank, _to: Rank, _bytes: usize, _now_ns: u64) -> u64 {
        self.0
    }
}

impl LatencyFn for dws_topology::Job {
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, _now_ns: u64) -> u64 {
        dws_topology::Job::latency_ns(self, from, to, bytes)
    }
}

impl<F> LatencyFn for F
where
    F: Fn(Rank, Rank, usize) -> u64,
{
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, _now_ns: u64) -> u64 {
        self(from, to, bytes)
    }
}

/// A simulated process.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once at time zero, before any event.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message from `from` arrives at this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: Rank, msg: Self::Msg);

    /// Called when a timer armed with [`Ctx::set_timer`] fires; `token`
    /// is the value passed when arming.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64);
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; all per-rank and network randomness derives from it.
    pub seed: u64,
    /// Multiplicative latency jitter: each delivery is stretched by a
    /// uniform factor in `[1, 1 + jitter)`. Zero disables jitter.
    pub latency_jitter: f64,
    /// Maximum per-rank clock offset in nanoseconds (uniform in
    /// `[0, max)`), zero for perfectly synchronized clocks.
    pub clock_skew_max_ns: u64,
    /// Fault-injection schedule. The default plan injects nothing and
    /// leaves the event schedule byte-identical to a fault-free build.
    pub fault: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0xD157_1A11,
            latency_jitter: 0.0,
            clock_skew_max_ns: 0,
            fault: FaultPlan::default(),
        }
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Total events processed (deliveries + timers).
    pub events: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Timers fired.
    pub timers: u64,
    /// True if an actor called [`Ctx::halt`] or a limit was hit.
    pub halted: bool,
}

enum EventKind<M> {
    Deliver { from: Rank, to: Rank, msg: M },
    Timer { rank: Rank, token: u64 },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Engine internals shared with actor handlers through [`Ctx`].
struct Kernel<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<M>>>,
    /// Last scheduled delivery per (from, to) pair, to enforce MPI
    /// non-overtaking.
    fifo: PairMap<SimTime>,
    latency: Box<dyn Fn(Rank, Rank, usize, u64) -> u64>,
    jitter: f64,
    net_rng: DetRng,
    halted: bool,
    messages_sent: u64,
    n_ranks: u32,
    /// Optional event log for debugging/analysis.
    log: Option<EventLog>,
    /// Optional network trace: delivery-latency histogram plus a
    /// per-pair traffic matrix. `None` costs one branch per send.
    net_trace: Option<NetTrace>,
    /// Fault schedule; `fault_active` caches `fault.is_active()` so the
    /// fault-free path pays a single branch and zero RNG draws.
    fault: FaultPlan,
    fault_active: bool,
    fault_rng: DetRng,
    fault_stats: FaultStats,
    /// Scheduled crash time per rank (`None` = immortal).
    crash_at: Vec<Option<u64>>,
    /// Optional self-profiling probe; only ever reads the host clock,
    /// never simulated state. `None` costs one branch per site.
    profiler: Option<Arc<PerfProbe>>,
}

impl<M> Kernel<M> {
    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    /// True if `rank` has crashed at or before `at`.
    fn crashed(&self, rank: Rank, at: SimTime) -> bool {
        self.crash_at[rank as usize].is_some_and(|t| at.ns() >= t)
    }

    /// Record a fault-injection outcome in the event log, if attached.
    fn log_fault(&mut self, kind: ObsKind) {
        let at = self.now;
        self.log_event(at, kind);
    }

    /// Record an engine event in the event log, if attached; the
    /// append is accounted to the trace-record profile phase.
    fn log_event(&mut self, at: SimTime, kind: ObsKind) {
        if self.log.is_none() {
            return;
        }
        let t0 = prof_start(&self.profiler);
        if let Some(log) = &mut self.log {
            log.record(EventRecord { at, kind });
        }
        prof_record(&self.profiler, Phase::TraceRecord, t0);
    }
}

impl<M: Clone> Kernel<M> {
    fn send(&mut self, from: Rank, to: Rank, bytes: usize, extra_delay_ns: u64, msg: M) {
        let depart_ns = self.now.ns() + extra_delay_ns;
        let mut spike_ns = 0u64;
        let mut duplicate = false;
        if self.fault_active {
            let t0 = prof_start(&self.profiler);
            // Fixed draw order — drop, spike, dup — one draw each per
            // send, so the fault schedule is a pure function of the
            // seed and the send sequence, independent of outcomes.
            let u_drop = self.fault_rng.next_f64();
            let u_spike = self.fault_rng.next_f64();
            let u_dup = self.fault_rng.next_f64();
            if self.fault.in_brownout(from, depart_ns) || self.fault.in_brownout(to, depart_ns) {
                self.fault_stats.brownout_drops += 1;
                self.messages_sent += 1;
                prof_record(&self.profiler, Phase::FaultEval, t0);
                self.log_fault(ObsKind::Dropped {
                    from,
                    to,
                    brownout: true,
                });
                return;
            }
            if u_drop < self.fault.drop_prob {
                self.fault_stats.dropped += 1;
                self.messages_sent += 1;
                prof_record(&self.profiler, Phase::FaultEval, t0);
                self.log_fault(ObsKind::Dropped {
                    from,
                    to,
                    brownout: false,
                });
                return;
            }
            if u_spike < self.fault.spike_prob {
                spike_ns = self.fault.spike_ns(self.fault_rng.next_f64());
                self.fault_stats.spiked += 1;
            }
            duplicate = u_dup < self.fault.dup_prob;
            prof_record(&self.profiler, Phase::FaultEval, t0);
            if spike_ns > 0 {
                self.log_fault(ObsKind::Delayed { from, to, spike_ns });
            }
        }
        let mut delay = (self.latency)(from, to, bytes, depart_ns);
        if self.jitter > 0.0 {
            let stretch = 1.0 + self.jitter * self.net_rng.next_f64();
            delay = (delay as f64 * stretch) as u64;
        }
        delay += spike_ns;
        let key = ((from as u64) << 32) | to as u64;
        let natural = self.now + extra_delay_ns + delay;
        let at = match self.fifo.get(&key) {
            Some(&last) if last >= natural => last + 1,
            _ => natural,
        };
        self.fifo.insert(key, at);
        self.messages_sent += 1;
        let t_rec = if self.log.is_some() || self.net_trace.is_some() {
            prof_start(&self.profiler)
        } else {
            None
        };
        if let Some(log) = &mut self.log {
            log.record(EventRecord {
                at: self.now,
                kind: ObsKind::Sent {
                    from,
                    to,
                    bytes: bytes as u32,
                    deliver_at: at,
                },
            });
        }
        if let Some(nt) = &mut self.net_trace {
            // Network latency as experienced by the message: scheduled
            // arrival minus departure, so FIFO pushback and spikes are
            // included.
            nt.record(from, to, bytes as u64, at.ns() - depart_ns);
        }
        prof_record(&self.profiler, Phase::TraceRecord, t_rec);
        if duplicate {
            // The duplicate rides one tick behind the original and is
            // exempt from FIFO ordering: it is a fault, not a message.
            self.fault_stats.duplicated += 1;
            self.log_fault(ObsKind::Duplicated { from, to });
            self.push(
                at + 1,
                EventKind::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
        self.push(at, EventKind::Deliver { from, to, msg });
    }
}

/// Handle passed to actor callbacks.
pub struct Ctx<'a, M> {
    kernel: &'a mut Kernel<M>,
    me: Rank,
    rng: &'a mut DetRng,
    skew_ns: u64,
}

impl<M> Ctx<'_, M> {
    /// This actor's rank.
    #[inline]
    pub fn me(&self) -> Rank {
        self.me
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.kernel.n_ranks
    }

    /// The global simulated clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This rank's *local* clock: global time plus the rank's skew.
    /// Use this when recording traces that should need skew correction.
    #[inline]
    pub fn local_now(&self) -> SimTime {
        self.kernel.now + self.skew_ns
    }

    /// This rank's clock offset in nanoseconds.
    #[inline]
    pub fn skew_ns(&self) -> u64 {
        self.skew_ns
    }

    /// Arm a timer to fire after `delay_ns`; `token` is returned to
    /// [`Actor::on_timer`]. If this rank sits inside a fault-plan
    /// slowdown window, the delay stretches by the window's factor —
    /// the rank's local processing runs slow.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        let delay_ns = if self.kernel.fault_active {
            let f = self
                .kernel
                .fault
                .slowdown_factor(self.me, self.kernel.now.ns());
            if f != 1.0 {
                (delay_ns as f64 * f) as u64
            } else {
                delay_ns
            }
        } else {
            delay_ns
        };
        let at = self.kernel.now + delay_ns;
        self.kernel.push(
            at,
            EventKind::Timer {
                rank: self.me,
                token,
            },
        );
    }

    /// Perfect failure detector: true if `rank` has crashed by now.
    ///
    /// Real systems approximate this with heartbeats and suspicion
    /// timeouts; the simulation exposes the oracle so recovery logic
    /// can be studied separately from detection accuracy.
    pub fn is_crashed(&self, rank: Rank) -> bool {
        self.kernel.crashed(rank, self.kernel.now)
    }

    /// This rank's deterministic random stream.
    #[inline]
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Stop the whole simulation after the current event.
    pub fn halt(&mut self) {
        self.kernel.halted = true;
    }
}

impl<M: Clone> Ctx<'_, M> {
    /// Send `msg` (`bytes` long on the wire) to rank `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or is the sender itself: the UTS
    /// protocol never self-sends, so a self-send is a scheduler bug.
    pub fn send(&mut self, to: Rank, bytes: usize, msg: M) {
        self.send_delayed(to, bytes, 0, msg);
    }

    /// Like [`send`](Self::send), but the message leaves the sender
    /// `extra_delay_ns` from now — modelling local processing that must
    /// complete before the message hits the wire (e.g. a victim working
    /// through a queue of steal requests one at a time).
    pub fn send_delayed(&mut self, to: Rank, bytes: usize, extra_delay_ns: u64, msg: M) {
        assert!(to < self.kernel.n_ranks, "send to unknown rank {to}");
        assert!(to != self.me, "rank {to} attempted to send to itself");
        self.kernel.send(self.me, to, bytes, extra_delay_ns, msg);
    }
}

/// A discrete-event simulation over `n` actors.
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    kernel: Kernel<A::Msg>,
    rank_rngs: Vec<DetRng>,
    skews: Vec<u64>,
    timers_fired: u64,
    messages_delivered: u64,
    started: bool,
}

impl<A: Actor> Simulation<A> {
    /// Build a simulation from per-rank actors, a latency oracle and a
    /// configuration.
    ///
    /// # Panics
    /// Panics if `actors` is empty or the fault plan fails validation.
    pub fn new<L>(actors: Vec<A>, latency: L, config: SimConfig) -> Self
    where
        L: LatencyFn + 'static,
    {
        assert!(!actors.is_empty(), "simulation needs at least one actor");
        let n = actors.len() as u32;
        if let Err(e) = config.fault.validate(n) {
            panic!("invalid fault plan: {e}");
        }
        let mut seed_rng = DetRng::new(config.seed);
        let skews: Vec<u64> = (0..n)
            .map(|_| {
                if config.clock_skew_max_ns == 0 {
                    0
                } else {
                    seed_rng.next_below(config.clock_skew_max_ns)
                }
            })
            .collect();
        let rank_rngs = (0..n).map(|r| DetRng::for_rank(config.seed, r)).collect();
        let crash_at = (0..n).map(|r| config.fault.crash_time(r)).collect();
        let fault_active = config.fault.is_active();
        Self {
            actors,
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                fifo: PairMap::default(),
                latency: Box::new(move |f, t, b, now| latency.latency_ns(f, t, b, now)),
                jitter: config.latency_jitter,
                net_rng: DetRng::for_rank(config.seed, u32::MAX),
                halted: false,
                messages_sent: 0,
                n_ranks: n,
                log: None,
                net_trace: None,
                fault: config.fault,
                fault_active,
                // One stream below net_rng: never collides with a rank
                // stream, and stays untouched when the plan is inactive.
                fault_rng: DetRng::for_rank(config.seed, u32::MAX - 1),
                fault_stats: FaultStats::default(),
                crash_at,
                profiler: None,
            },
            rank_rngs,
            skews,
            timers_fired: 0,
            messages_delivered: 0,
            started: false,
        }
    }

    /// Run until the event queue drains, an actor halts, or a limit is
    /// reached.
    pub fn run(&mut self) -> RunReport {
        self.run_with_limits(None, None)
    }

    /// [`run`](Self::run) with optional wall limits on simulated time
    /// and event count.
    pub fn run_with_limits(
        &mut self,
        max_time: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                // A rank crashed at time zero never runs at all.
                if self.kernel.fault_active && self.kernel.crashed(i as Rank, SimTime::ZERO) {
                    continue;
                }
                self.dispatch_start(i as Rank);
            }
        }
        let mut events = self.timers_fired + self.messages_delivered;
        let mut limit_hit = false;
        while let Some(Reverse(ev)) = self.kernel.queue.pop() {
            if let Some(mt) = max_time {
                if ev.time > mt {
                    limit_hit = true;
                    // Event not processed; put it back for a later resume.
                    self.kernel.queue.push(Reverse(ev));
                    break;
                }
            }
            self.kernel.now = ev.time;
            match ev.kind {
                EventKind::Deliver { from, to, msg } => {
                    if self.kernel.fault_active && self.kernel.crashed(to, ev.time) {
                        // The destination died before this arrived; the
                        // bytes hit a dead NIC.
                        self.kernel.fault_stats.crash_lost_deliveries += 1;
                        self.kernel.log_fault(ObsKind::CrashLost {
                            rank: to,
                            timer: false,
                        });
                    } else {
                        self.messages_delivered += 1;
                        self.kernel
                            .log_event(ev.time, ObsKind::Delivered { from, to });
                        self.dispatch_message(to, from, msg);
                    }
                }
                EventKind::Timer { rank, token } => {
                    if self.kernel.fault_active && self.kernel.crashed(rank, ev.time) {
                        self.kernel.fault_stats.crash_lost_timers += 1;
                        self.kernel
                            .log_fault(ObsKind::CrashLost { rank, timer: true });
                    } else {
                        self.timers_fired += 1;
                        self.kernel
                            .log_event(ev.time, ObsKind::Timer { rank, token });
                        self.dispatch_timer(rank, token);
                    }
                }
            }
            events += 1;
            if self.kernel.halted {
                break;
            }
            if let Some(me) = max_events {
                if events >= me {
                    limit_hit = true;
                    break;
                }
            }
        }
        RunReport {
            end_time: self.kernel.now,
            events,
            messages: self.messages_delivered,
            timers: self.timers_fired,
            halted: self.kernel.halted || limit_hit,
        }
    }

    /// Access an actor after (or during) a run — e.g. to harvest per-rank
    /// statistics.
    pub fn actor(&self, rank: Rank) -> &A {
        &self.actors[rank as usize]
    }

    /// All actors, in rank order.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Per-rank clock skew applied in this simulation (for trace
    /// correction).
    pub fn skews_ns(&self) -> &[u64] {
        &self.skews
    }

    /// Number of messages handed to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.kernel.messages_sent
    }

    /// Counters for every fault injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.kernel.fault_stats
    }

    /// Ranks whose scheduled crash time has passed.
    pub fn crashed_ranks(&self) -> Vec<Rank> {
        (0..self.kernel.n_ranks)
            .filter(|&r| self.kernel.crashed(r, self.kernel.now))
            .collect()
    }

    /// Attach a bounded event log keeping the `cap` most recent engine
    /// events (sends, deliveries, timers). Call before `run`.
    pub fn attach_log(&mut self, cap: usize) {
        self.kernel.log = Some(EventLog::new(cap));
    }

    /// The attached event log, if any.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.kernel.log.as_ref()
    }

    /// Attach a network trace (delivery-latency histogram + per-pair
    /// traffic matrix). Call before `run`; unattached, the engine pays
    /// one branch per send and records nothing.
    pub fn attach_net_trace(&mut self) {
        self.kernel.net_trace = Some(NetTrace::default());
    }

    /// The attached network trace, if any.
    pub fn net_trace(&self) -> Option<&NetTrace> {
        self.kernel.net_trace.as_ref()
    }

    /// Attach a self-profiling probe (shared with the schedulers via
    /// `Arc`). Call before `run`; unattached, every instrumentation
    /// site costs one branch and the schedule is unaffected either
    /// way — the probe only reads the host clock.
    pub fn attach_profiler(&mut self, probe: Arc<PerfProbe>) {
        self.kernel.profiler = Some(probe);
    }

    fn dispatch_start(&mut self, rank: Rank) {
        let i = rank as usize;
        let t0 = prof_start(&self.kernel.profiler);
        let mut ctx = Ctx {
            kernel: &mut self.kernel,
            me: rank,
            rng: &mut self.rank_rngs[i],
            skew_ns: self.skews[i],
        };
        self.actors[i].on_start(&mut ctx);
        prof_record(&self.kernel.profiler, Phase::Dispatch, t0);
    }

    fn dispatch_message(&mut self, rank: Rank, from: Rank, msg: A::Msg) {
        let i = rank as usize;
        let t0 = prof_start(&self.kernel.profiler);
        let mut ctx = Ctx {
            kernel: &mut self.kernel,
            me: rank,
            rng: &mut self.rank_rngs[i],
            skew_ns: self.skews[i],
        };
        self.actors[i].on_message(&mut ctx, from, msg);
        prof_record(&self.kernel.profiler, Phase::Dispatch, t0);
    }

    fn dispatch_timer(&mut self, rank: Rank, token: u64) {
        let i = rank as usize;
        let t0 = prof_start(&self.kernel.profiler);
        let mut ctx = Ctx {
            kernel: &mut self.kernel,
            me: rank,
            rng: &mut self.rank_rngs[i],
            skew_ns: self.skews[i],
        };
        self.actors[i].on_timer(&mut ctx, token);
        prof_record(&self.kernel.profiler, Phase::Dispatch, t0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor: rank 0 sends `hops` pings; rank 1 echoes.
    struct PingPong {
        hops_left: u32,
        received: Vec<(Rank, u32, SimTime)>,
    }

    impl Actor for PingPong {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 && self.hops_left > 0 {
                ctx.send(1, 8, self.hops_left);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: Rank, msg: u32) {
            self.received.push((from, msg, ctx.now()));
            if msg > 1 {
                ctx.send(from, 8, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
    }

    fn ping_pong(hops: u32, latency: u64) -> RunReport {
        let actors = vec![
            PingPong {
                hops_left: hops,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(latency), SimConfig::default());
        sim.run()
    }

    #[test]
    fn ping_pong_takes_hops_times_latency() {
        let report = ping_pong(4, 1_000);
        assert_eq!(report.messages, 4);
        assert_eq!(report.end_time, SimTime(4_000));
        assert!(!report.halted);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ping_pong(10, 777);
        let b = ping_pong(10, 777);
        assert_eq!(a, b);
    }

    /// Sender emits a large then a small message; FIFO must hold.
    struct FifoProbe {
        got: Vec<u32>,
    }
    impl Actor for FifoProbe {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, 1 << 20, 1); // slow: 1 MiB
                ctx.send(1, 1, 2); // fast: 1 B
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: Rank, msg: u32) {
            self.got.push(msg);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _t: u64) {}
    }

    #[test]
    fn pairwise_fifo_prevents_overtaking() {
        // Size-dependent latency would reorder without the FIFO guard.
        let lat = |_f: Rank, _t: Rank, bytes: usize| 100 + bytes as u64;
        let actors = vec![FifoProbe { got: vec![] }, FifoProbe { got: vec![] }];
        let mut sim = Simulation::new(actors, lat, SimConfig::default());
        sim.run();
        assert_eq!(sim.actor(1).got, vec![1, 2], "messages must not overtake");
    }

    /// Timer test actor: schedules three timers out of order.
    struct TimerProbe {
        fired: Vec<(u64, SimTime)>,
    }
    impl Actor for TimerProbe {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(300, 3);
            ctx.set_timer(100, 1);
            ctx.set_timer(200, 2);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((token, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut sim = Simulation::new(
            vec![TimerProbe { fired: vec![] }],
            ConstantLatency(1),
            SimConfig::default(),
        );
        let report = sim.run();
        assert_eq!(report.timers, 3);
        assert_eq!(
            sim.actor(0).fired,
            vec![(1, SimTime(100)), (2, SimTime(200)), (3, SimTime(300))]
        );
    }

    struct Halter;
    impl Actor for Halter {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(10, 0);
            ctx.set_timer(20, 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            if token == 0 {
                ctx.halt();
            } else {
                panic!("second timer must never fire after halt");
            }
        }
    }

    #[test]
    fn halt_stops_processing() {
        let mut sim = Simulation::new(vec![Halter], ConstantLatency(1), SimConfig::default());
        let report = sim.run();
        assert!(report.halted);
        assert_eq!(report.timers, 1);
    }

    #[test]
    fn max_time_limit_pauses_and_resumes() {
        let mut sim = Simulation::new(
            vec![TimerProbe { fired: vec![] }],
            ConstantLatency(1),
            SimConfig::default(),
        );
        let r1 = sim.run_with_limits(Some(SimTime(150)), None);
        assert!(r1.halted);
        assert_eq!(sim.actor(0).fired.len(), 1);
        let r2 = sim.run_with_limits(None, None);
        assert!(!r2.halted);
        assert_eq!(sim.actor(0).fired.len(), 3);
    }

    #[test]
    fn clock_skew_is_bounded_and_deterministic() {
        let cfg = SimConfig {
            clock_skew_max_ns: 5_000,
            ..SimConfig::default()
        };
        let mk = || {
            Simulation::new(
                vec![Halter, Halter, Halter, Halter],
                ConstantLatency(1),
                cfg.clone(),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.skews_ns(), b.skews_ns());
        assert!(a.skews_ns().iter().all(|&s| s < 5_000));
        assert!(
            a.skews_ns().iter().any(|&s| s > 0),
            "with max 5000 some rank should be skewed: {:?}",
            a.skews_ns()
        );
    }

    #[test]
    fn event_log_observes_sends_deliveries_and_timers() {
        use crate::observer::EventKind as Obs;
        let actors = vec![
            PingPong {
                hops_left: 3,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(100), SimConfig::default());
        sim.attach_log(64);
        sim.run();
        let log = sim.event_log().expect("attached");
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, Obs::Sent { .. })),
            3
        );
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, Obs::Delivered { .. })),
            3
        );
        // Delivery times match the schedule recorded at send time.
        for rec in log.window() {
            if let Obs::Sent { deliver_at, .. } = rec.kind {
                assert_eq!(deliver_at.ns(), rec.at.ns() + 100);
            }
        }
    }

    #[test]
    fn net_trace_measures_scheduled_latency() {
        let actors = vec![
            PingPong {
                hops_left: 3,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(250), SimConfig::default());
        sim.attach_net_trace();
        sim.run();
        let nt = sim.net_trace().expect("attached");
        assert_eq!(nt.messages(), 3);
        // Constant latency, no contention: every delivery takes 250ns.
        assert_eq!(nt.delivery_histogram().min(), 250);
        assert_eq!(nt.delivery_histogram().max(), 250);
        let total: u64 = nt.pair_tallies().map(|(_, t)| t.messages).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn net_trace_absence_changes_nothing() {
        let run = |trace: bool| {
            let actors = vec![
                PingPong {
                    hops_left: 5,
                    received: vec![],
                },
                PingPong {
                    hops_left: 0,
                    received: vec![],
                },
            ];
            let mut sim = Simulation::new(actors, ConstantLatency(99), SimConfig::default());
            if trace {
                sim.attach_net_trace();
            }
            sim.run()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn jitter_changes_latency_but_keeps_determinism() {
        let cfg = SimConfig {
            latency_jitter: 0.5,
            ..SimConfig::default()
        };
        let run = |cfg: SimConfig| {
            let actors = vec![
                PingPong {
                    hops_left: 4,
                    received: vec![],
                },
                PingPong {
                    hops_left: 0,
                    received: vec![],
                },
            ];
            let mut sim = Simulation::new(actors, ConstantLatency(1_000), cfg);
            sim.run()
        };
        let jittered = run(cfg.clone());
        let jittered2 = run(cfg);
        let clean = run(SimConfig::default());
        assert_eq!(jittered, jittered2, "jitter must stay deterministic");
        assert!(jittered.end_time >= clean.end_time);
    }

    /// Sender emits three delayed messages in one handler; they must
    /// arrive spaced by their extra delays, in order.
    struct DelayedSender {
        got: Vec<(u32, SimTime)>,
    }
    impl Actor for DelayedSender {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send_delayed(1, 8, 0, 1);
                ctx.send_delayed(1, 8, 500, 2);
                ctx.send_delayed(1, 8, 1_500, 3);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _f: Rank, msg: u32) {
            self.got.push((msg, ctx.now()));
        }
        fn on_timer(&mut self, _c: &mut Ctx<'_, u32>, _t: u64) {}
    }

    #[test]
    fn delayed_sends_arrive_spaced_and_ordered() {
        let actors = vec![DelayedSender { got: vec![] }, DelayedSender { got: vec![] }];
        let mut sim = Simulation::new(actors, ConstantLatency(1_000), SimConfig::default());
        sim.run();
        assert_eq!(
            sim.actor(1).got,
            vec![
                (1, SimTime(1_000)),
                (2, SimTime(1_500)),
                (3, SimTime(2_500)),
            ]
        );
    }

    #[test]
    fn stateful_latency_fn_sees_departure_time() {
        // A latency oracle that records the now_ns it is given.
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Probe(Rc<RefCell<Vec<u64>>>);
        impl LatencyFn for Probe {
            fn latency_ns(&self, _f: Rank, _t: Rank, _b: usize, now_ns: u64) -> u64 {
                self.0.borrow_mut().push(now_ns);
                100
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let actors = vec![DelayedSender { got: vec![] }, DelayedSender { got: vec![] }];
        let mut sim = Simulation::new(actors, Probe(Rc::clone(&seen)), SimConfig::default());
        sim.run();
        // Departure times include the extra delays.
        assert_eq!(*seen.borrow(), vec![0, 500, 1_500]);
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn self_send_is_rejected() {
        struct SelfSender;
        impl Actor for SelfSender {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(0, 1, ());
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
            fn on_timer(&mut self, _c: &mut Ctx<'_, ()>, _t: u64) {}
        }
        let mut sim = Simulation::new(vec![SelfSender], ConstantLatency(1), SimConfig::default());
        sim.run();
    }
}
